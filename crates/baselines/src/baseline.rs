//! Vanilla exact execution ("Baseline" in the paper's figures).

use std::sync::Arc;

use taster_engine::physical::execute;
use taster_engine::{parse_query, EngineError, ExecutionContext};
use taster_storage::{Catalog, IoModel};

use crate::RunReport;

/// Exact query execution over the shared engine: no synopses, no
/// approximation, every query scans the base data it needs.
pub struct BaselineEngine {
    catalog: Arc<Catalog>,
    io_model: IoModel,
}

impl BaselineEngine {
    /// Create a baseline engine over a catalog.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self {
            catalog,
            io_model: IoModel::default(),
        }
    }

    /// Replace the I/O model used for simulated-time reporting.
    pub fn with_io_model(mut self, io_model: IoModel) -> Self {
        self.io_model = io_model;
        self
    }

    /// Execute one query exactly.
    pub fn execute_sql(&self, sql: &str) -> Result<RunReport, EngineError> {
        let query = parse_query(sql)?;
        let plan = query.to_exact_plan(&self.catalog)?;
        let ctx = ExecutionContext::new(self.catalog.clone()).with_io_model(self.io_model);
        let result = execute(&plan, &ctx)?;
        let simulated_secs = result.metrics.simulated_secs(&self.io_model);
        Ok(RunReport {
            approximate: result.approximate,
            simulated_secs,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_workloads::tpch;

    #[test]
    fn baseline_is_exact_and_scans_everything() {
        let cat = tpch::generate(tpch::TpchScale {
            lineitem_rows: 5_000,
            partitions: 4,
            seed: 1,
        });
        let eng = BaselineEngine::new(cat.clone());
        let report = eng
            .execute_sql(
                "SELECT l_returnflag, SUM(l_extendedprice) FROM lineitem GROUP BY l_returnflag",
            )
            .unwrap();
        assert!(!report.approximate);
        assert_eq!(report.result.metrics.base_rows_scanned, 5_000);
        assert!(report.simulated_secs > 0.0);
        assert_eq!(report.result.num_groups(), 3);
        for g in &report.result.groups {
            assert_eq!(g.aggregates[0].std_error, 0.0);
        }
    }
}
