//! BlinkDB-style offline AQP (the paper's reference 4).
//!
//! BlinkDB assumes the query workload is known a priori (the paper grants it
//! an oracle that reveals all queries at initialization time) and solves an
//! optimization problem to pick the best set of stratified samples under a
//! storage budget. The reproduction mirrors that structure:
//!
//! 1. **Offline phase** — every workload query contributes the column set it
//!    would stratify on; column sets are ranked by how many queries they
//!    serve, and stratified samples are built greedily until the storage
//!    budget is exhausted. The time spent building is reported separately
//!    (the "Offline sampling" bars of Fig. 3 / Fig. 7).
//! 2. **Online phase** — each query is answered from the best matching
//!    pre-built sample (using the same subsumption test as Taster), falling
//!    back to exact execution when no sample covers it.

use std::collections::HashMap;
use std::sync::Arc;

use taster_core::hints::{build_offline_sample, OfflineStrategy};
use taster_core::matching::{find_sample_match, SampleRequirement};
use taster_core::{MetadataStore, Planner, SynopsisStore, TasterConfig};
use taster_engine::physical::execute;
use taster_engine::sql::ErrorSpec;
use taster_engine::{parse_query, EngineError, ExecutionContext, LogicalPlan, SelectQuery};
use taster_storage::{Catalog, IoModel};

use crate::RunReport;

/// Report of the offline preparation phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflinePhaseReport {
    /// Number of stratified samples built.
    pub samples_built: usize,
    /// Total bytes of samples stored.
    pub bytes_used: usize,
    /// Simulated time spent building (seconds).
    pub simulated_secs: f64,
}

/// Offline AQP with oracle workload knowledge.
pub struct BlinkDbEngine {
    catalog: Arc<Catalog>,
    io_model: IoModel,
    planner: Planner,
    metadata: MetadataStore,
    store: Arc<SynopsisStore>,
    offline: OfflinePhaseReport,
    /// Per-group row cap used for the stratified samples.
    rows_per_group: usize,
}

impl BlinkDbEngine {
    /// Create an engine and run the offline phase over the oracle workload,
    /// subject to `budget_bytes` of sample storage.
    pub fn prepare(
        catalog: Arc<Catalog>,
        workload: &[String],
        budget_bytes: usize,
        rows_per_group: usize,
    ) -> Result<Self, EngineError> {
        let config = TasterConfig::default();
        let io_model = IoModel::default();
        let mut engine = Self {
            planner: Planner::new(config, io_model),
            metadata: MetadataStore::new(),
            store: Arc::new(SynopsisStore::new(budget_bytes, budget_bytes)),
            offline: OfflinePhaseReport::default(),
            rows_per_group: rows_per_group.max(10),
            catalog,
            io_model,
        };
        engine.offline_phase(workload, budget_bytes)?;
        Ok(engine)
    }

    /// The offline phase report (for the "Offline sampling" figure segments).
    pub fn offline_report(&self) -> OfflinePhaseReport {
        self.offline
    }

    fn offline_phase(&mut self, workload: &[String], budget_bytes: usize) -> Result<(), EngineError> {
        // Rank (fact table, stratification column set) pairs by popularity.
        let mut popularity: HashMap<(String, Vec<String>), usize> = HashMap::new();
        for sql in workload {
            let Ok(query) = parse_query(sql) else { continue };
            if !query.is_approximable() {
                continue;
            }
            let Ok(strat) = self.stratification_for(&query) else {
                continue;
            };
            *popularity.entry((query.from.clone(), strat)).or_insert(0) += 1;
        }
        let mut ranked: Vec<((String, Vec<String>), usize)> = popularity.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let mut used = 0usize;
        for ((table, strat), _) in ranked {
            if strat.is_empty() {
                continue;
            }
            let build = build_offline_sample(
                &self.catalog,
                &table,
                &OfflineStrategy::Stratified {
                    stratification: strat.clone(),
                    rows_per_group: self.rows_per_group,
                },
                ErrorSpec::default(),
                0xb11_9db,
            )?;
            let bytes = build.payload.size_bytes();
            if used + bytes > budget_bytes {
                continue;
            }
            used += bytes;
            let id = self.metadata.allocate_id();
            let mut descriptor = build.descriptor.clone();
            descriptor.id = id;
            let id = self.metadata.register(descriptor);
            self.metadata.set_actual_size(id, bytes);
            self.store.insert_into_warehouse(id, &build.payload, true);

            let table_bytes = self.catalog.table(&table)?.size_bytes();
            self.offline.samples_built += 1;
            self.offline.bytes_used = used;
            self.offline.simulated_secs += (self.io_model.scan_cost(table_bytes)
                + self.io_model.materialize_cost(bytes))
                / 1e9;
        }
        Ok(())
    }

    /// The stratification column set a query needs on its FROM table:
    /// grouping attributes, join keys and filter attributes that live there.
    fn stratification_for(&self, query: &SelectQuery) -> Result<Vec<String>, EngineError> {
        let fact = self.catalog.table(&query.from)?;
        let stats = fact.stats();
        // Near-unique columns (dates, foreign keys to large dimensions) are
        // excluded: a per-group cap over them would retain the whole table,
        // which no budget can afford — the same pruning BlinkDB's column-set
        // selection performs.
        let cardinality_cap = (fact.num_rows() / 100).max(64);
        let mut strat: Vec<String> = Vec::new();
        let mut push = |col: &String| {
            if stats.distinct_count(col) <= cardinality_cap {
                strat.push(col.clone());
            }
        };
        for g in &query.group_by {
            if fact.schema().contains(g) {
                push(g);
            }
        }
        for join in &query.joins {
            for (a, b) in &join.conditions {
                if fact.schema().contains(a) {
                    push(a);
                } else if fact.schema().contains(b) {
                    push(b);
                }
            }
        }
        for pred in &query.predicates {
            for col in pred.referenced_columns() {
                if fact.schema().contains(&col) {
                    push(&col);
                }
            }
        }
        strat.sort();
        strat.dedup();
        Ok(strat)
    }

    /// Execute one query, answering from a pre-built sample when possible.
    pub fn execute_sql(&self, sql: &str) -> Result<RunReport, EngineError> {
        let query = parse_query(sql)?;
        let plan: LogicalPlan = if query.is_approximable() {
            let strat = self.stratification_for(&query)?;
            let requirement = SampleRequirement {
                table: query.from.clone(),
                stratification: strat,
                accuracy: query.accuracy(),
                min_probability: 0.0,
                // BlinkDB's offline samples are built once over a static
                // snapshot; the baseline does not model ingestion, so any
                // staleness is tolerated.
                table_rows: 0,
                max_staleness: f64::INFINITY,
            };
            match find_sample_match(&self.metadata, &self.store, &requirement) {
                Some(lease) => {
                    // BlinkDB's offline store never evicts, so the lease is
                    // only needed for its id.
                    let id = lease.id();
                    let fact_predicates = self.planner.fact_predicates(&query, &self.catalog)?;
                    self.planner.build_plan_with_fact_input(
                        &query,
                        &self.catalog,
                        LogicalPlan::SynopsisScan { id, filter: None },
                        fact_predicates,
                    )?
                }
                None => query.to_exact_plan(&self.catalog)?,
            }
        } else {
            query.to_exact_plan(&self.catalog)?
        };

        let ctx = ExecutionContext::new(self.catalog.clone())
            .with_io_model(self.io_model)
            .with_provider(self.store.clone());
        let result = execute(&plan, &ctx)?;
        let simulated_secs = result.metrics.simulated_secs(&self.io_model);
        Ok(RunReport {
            approximate: result.approximate,
            simulated_secs,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaselineEngine;
    use taster_workloads::driver::random_sequence;
    use taster_workloads::tpch;

    fn catalog() -> Arc<Catalog> {
        tpch::generate(tpch::TpchScale {
            lineitem_rows: 20_000,
            partitions: 4,
            seed: 9,
        })
    }

    fn oracle_workload(n: usize) -> Vec<String> {
        random_sequence(&tpch::workload(), n, 17)
            .into_iter()
            .map(|q| q.sql)
            .collect()
    }

    #[test]
    fn offline_phase_builds_samples_within_budget() {
        let cat = catalog();
        let budget = cat.total_size_bytes();
        let eng = BlinkDbEngine::prepare(cat, &oracle_workload(30), budget, 50).unwrap();
        let report = eng.offline_report();
        assert!(report.samples_built > 0);
        assert!(report.bytes_used <= budget);
        assert!(report.simulated_secs > 0.0);
    }

    #[test]
    fn covered_queries_avoid_base_scans_and_stay_accurate() {
        let cat = catalog();
        let workload = oracle_workload(40);
        let budget = cat.total_size_bytes();
        let eng = BlinkDbEngine::prepare(cat.clone(), &workload, budget, 300).unwrap();
        let baseline = BaselineEngine::new(cat);

        let mut covered = 0;
        for sql in workload.iter().take(10) {
            let approx = eng.execute_sql(sql).unwrap();
            if approx.approximate {
                covered += 1;
                // Dimension tables may still be scanned, but the 20k-row fact
                // table must be answered from the pre-built sample.
                assert!(
                    approx.result.metrics.base_rows_scanned < 10_000,
                    "fact table was scanned: {} rows",
                    approx.result.metrics.base_rows_scanned
                );
                let exact = baseline.execute_sql(sql).unwrap();
                let (err, missed) = approx.result.error_vs(&exact.result);
                assert_eq!(missed, 0, "groups missed on {sql}");
                // Offline per-column-set stratified samples degrade on deep
                // multi-join groupings (the weakness Taster's intermediate
                // -result synopses address); only hold single-join queries to
                // the tight bound here.
                let joins = sql.matches(" JOIN ").count();
                let bound = if joins <= 1 { 0.35 } else { 1.0 };
                assert!(err < bound, "error {err} too large on {sql}");
            }
        }
        assert!(covered > 0, "the oracle workload should cover some queries");
    }

    #[test]
    fn smaller_budget_covers_fewer_queries() {
        let cat = catalog();
        let workload = oracle_workload(30);
        let full = BlinkDbEngine::prepare(cat.clone(), &workload, cat.total_size_bytes(), 50)
            .unwrap();
        let tiny = BlinkDbEngine::prepare(cat, &workload, 20_000, 50).unwrap();
        assert!(tiny.offline_report().samples_built <= full.offline_report().samples_built);
        assert!(tiny.offline_report().bytes_used <= 20_000);
    }
}
