//! Comparator systems used in the paper's evaluation (Section VI):
//!
//! * [`baseline::BaselineEngine`] — vanilla exact execution (the paper's
//!   "Baseline", i.e. plain SparkSQL),
//! * [`quickr::QuickrEngine`] — online AQP in the style of Quickr (paper reference 25):
//!   samplers are injected into every query's plan, but samples are never
//!   materialized or reused, so every query still reads the full input,
//! * [`blinkdb::BlinkDbEngine`] — offline AQP in the style of BlinkDB (paper reference 4):
//!   given the full workload up front (the oracle assumption the paper also
//!   grants it), it selects and pre-builds stratified samples under a storage
//!   budget and answers queries from them,
//! * VerdictDB-style variational subsampling is exercised through Taster's
//!   user-hint path (`taster_core::hints`), matching how the paper uses it in
//!   the Fig. 7 experiment.
//!
//! All comparators run on the same engine, catalog and cost model as Taster,
//! so end-to-end comparisons only differ in the AQP strategy.

pub mod baseline;
pub mod blinkdb;
pub mod quickr;

pub use baseline::BaselineEngine;
pub use blinkdb::BlinkDbEngine;
pub use quickr::QuickrEngine;

use taster_engine::QueryResult;

/// A uniform per-query report all comparators produce, so the benchmark
/// harness can tabulate them side by side.
#[derive(Debug)]
pub struct RunReport {
    /// The engine result.
    pub result: QueryResult,
    /// Simulated execution time in seconds under the shared I/O model.
    pub simulated_secs: f64,
    /// `true` if the query was answered approximately.
    pub approximate: bool,
}
