//! Quickr-style online AQP (the paper's reference 25).
//!
//! Quickr injects samplers into every query's plan at runtime, which reduces
//! the work of the operators above the samplers, but it never materializes or
//! reuses samples: every query still reads the full input. This comparator
//! reuses Taster's planner to perform the same sampler injection and
//! configuration, executes the injected plan, and deliberately throws the
//! byproduct samples away.

use std::sync::Arc;

use taster_core::{MetadataStore, Planner, SynopsisStore, TasterConfig};
use taster_engine::physical::execute;
use taster_engine::{parse_query, EngineError, ExecutionContext, LogicalPlan};
use taster_storage::{Catalog, IoModel};

use crate::RunReport;

/// Online, per-query sampler injection without materialization or reuse.
pub struct QuickrEngine {
    catalog: Arc<Catalog>,
    io_model: IoModel,
    planner: Planner,
    seed: u64,
    queries: u64,
}

impl QuickrEngine {
    /// Create a Quickr-style engine over a catalog.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        let config = TasterConfig::default();
        let io_model = IoModel::default();
        Self {
            catalog,
            io_model,
            planner: Planner::new(config, io_model),
            seed: config.seed,
            queries: 0,
        }
    }

    /// Execute one query with online sampler injection.
    pub fn execute_sql(&mut self, sql: &str) -> Result<RunReport, EngineError> {
        let query = parse_query(sql)?;
        // A throwaway metadata store / synopsis store: Quickr keeps no state
        // across queries.
        let mut metadata = MetadataStore::new();
        let store = SynopsisStore::new(0, 0);
        let output = self
            .planner
            .plan(&query, &self.catalog, &mut metadata, &store)?;

        // Pick the cheapest sampler-injection plan; ignore reuse candidates
        // (there is nothing to reuse) and fall back to exact when the planner
        // decided sampling cannot satisfy the accuracy requirement.
        let plan: &LogicalPlan = output
            .candidates
            .iter()
            .filter(|c| !c.creates.is_empty())
            .filter(|c| matches!(c.plan, LogicalPlan::Aggregate { .. }))
            .min_by(|a, b| a.cost_ns.total_cmp(&b.cost_ns))
            .map(|c| &c.plan)
            .unwrap_or(&output.exact_plan);

        let ctx = ExecutionContext::new(self.catalog.clone())
            .with_io_model(self.io_model)
            .with_seed(self.seed ^ self.queries);
        let mut result = execute(plan, &ctx)?;
        // Quickr does not persist anything.
        result.byproducts.clear();
        self.queries += 1;
        let simulated_secs = result.metrics.simulated_secs(&self.io_model);
        Ok(RunReport {
            approximate: result.approximate,
            simulated_secs,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaselineEngine;
    use taster_workloads::tpch;

    fn catalog() -> Arc<Catalog> {
        tpch::generate(tpch::TpchScale {
            lineitem_rows: 20_000,
            partitions: 4,
            seed: 5,
        })
    }

    const Q: &str = "SELECT l_returnflag, SUM(l_extendedprice) FROM lineitem \
                     GROUP BY l_returnflag ERROR WITHIN 10% AT CONFIDENCE 95%";

    #[test]
    fn quickr_samples_but_still_scans_the_base_table() {
        let cat = catalog();
        let mut eng = QuickrEngine::new(cat.clone());
        let report = eng.execute_sql(Q).unwrap();
        assert!(report.approximate, "sampler must have been injected");
        assert_eq!(
            report.result.metrics.base_rows_scanned, 20_000,
            "online sampling still reads the full input"
        );
        assert!(report.result.byproducts.is_empty());
    }

    #[test]
    fn quickr_accuracy_is_within_bounds() {
        let cat = catalog();
        let mut eng = QuickrEngine::new(cat.clone());
        let approx = eng.execute_sql(Q).unwrap();
        let exact = BaselineEngine::new(cat).execute_sql(Q).unwrap();
        let (err, missed) = approx.result.error_vs(&exact.result);
        assert_eq!(missed, 0);
        assert!(err < 0.2, "error too large: {err}");
    }

    #[test]
    fn repeated_queries_do_not_accumulate_state() {
        let cat = catalog();
        let mut eng = QuickrEngine::new(cat);
        let a = eng.execute_sql(Q).unwrap();
        let b = eng.execute_sql(Q).unwrap();
        // Same amount of base I/O every time: nothing was reused.
        assert_eq!(
            a.result.metrics.base_rows_scanned,
            b.result.metrics.base_rows_scanned
        );
    }
}
