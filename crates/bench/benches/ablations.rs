//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * synopsis reuse across queries (Taster) vs per-query sampling (Quickr),
//! * sketch-join vs sample-based join approximation,
//! * greedy submodular tuner selection cost at growing window sizes.
//!
//! These are Criterion benches over small workloads so `cargo bench` stays
//! quick; the figure-level comparisons live in the `fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use taster_bench::{run_quickr, run_taster};
use taster_core::metadata::{MetadataStore, PlanAlternative};
use taster_core::synopsis::{SynopsisDescriptor, SynopsisKind};
use taster_core::tuner::select_synopses;
use taster_core::SynopsisStore;
use taster_engine::physical::execute;
use taster_engine::{parse_query, ExecutionContext};
use taster_workloads::{instacart, random_sequence, tpch};

fn bench_reuse_vs_per_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reuse");
    group.sample_size(10);
    let catalog = tpch::generate(tpch::TpchScale {
        lineitem_rows: 10_000,
        partitions: 4,
        seed: 1,
    });
    let queries = random_sequence(&tpch::workload(), 10, 5);
    group.bench_function("taster_reuse_10q", |b| {
        b.iter(|| black_box(run_taster(catalog.clone(), &queries, 1.0).0.query_secs()))
    });
    group.bench_function("quickr_per_query_10q", |b| {
        b.iter(|| black_box(run_quickr(catalog.clone(), &queries).query_secs()))
    });
    group.finish();
}

fn bench_sketch_vs_sample_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sketchjoin");
    group.sample_size(10);
    let catalog = instacart::generate(instacart::InstacartScale {
        orderproducts_rows: 20_000,
        partitions: 4,
        seed: 2,
    });
    let sql = "SELECT p_dept_id, COUNT(*) FROM orderproducts \
               JOIN products ON op_product_id = p_product_id \
               GROUP BY p_dept_id ERROR WITHIN 10% AT CONFIDENCE 95%";
    let query = parse_query(sql).unwrap();
    let exact_plan = query.to_exact_plan(&catalog).unwrap();
    let ctx = ExecutionContext::new(catalog.clone());
    group.bench_function("exact_join", |b| {
        b.iter(|| black_box(execute(&exact_plan, &ctx).unwrap().num_groups()))
    });
    // Sketch-join path goes through the Taster engine (it will pick the
    // sketch candidate for this query shape).
    group.bench_function("taster_sketch_join", |b| {
        let queries = vec![taster_workloads::QueryInstance {
            template_id: "sketch-3".into(),
            sql: sql.to_string(),
        }];
        b.iter(|| black_box(run_taster(catalog.clone(), &queries, 1.0).0.query_secs()))
    });
    group.finish();
}

fn bench_tuner_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tuner");
    for window in [10usize, 50, 200] {
        let mut metadata = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 10 << 20);
        let ids: Vec<u64> = (0..40)
            .map(|i| {
                let id = metadata.allocate_id();
                metadata.register(SynopsisDescriptor {
                    id,
                    fingerprint: format!("fp{i}"),
                    base_tables: vec!["t".into()],
                    kind: SynopsisKind::Sample {
                        method: taster_engine::SampleMethod::Uniform { probability: 0.1 },
                    },
                    accuracy: taster_engine::sql::ErrorSpec::default(),
                    estimated_bytes: 100_000 + i * 1_000,
                    estimated_rows: 1_000,
                    pinned: false,
                })
            })
            .collect();
        for q in 0..window {
            let alts = (0..4)
                .map(|j| PlanAlternative {
                    synopses: vec![ids[(q * 4 + j) % ids.len()]],
                    cost_ns: 1_000.0 + j as f64,
                })
                .collect();
            metadata.record_query(10_000.0, alts);
        }
        group.bench_function(format!("greedy_window_{window}"), |b| {
            b.iter(|| {
                let recent = metadata.recent_queries(window);
                black_box(select_synopses(&recent, &metadata, &store, 5 << 20))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reuse_vs_per_query,
    bench_sketch_vs_sample_join,
    bench_tuner_selection
);
criterion_main!(benches);
