//! Micro-benchmarks of the cost-based access-path machinery:
//!
//! * `point/*`, `range/*`, `and/*` — the same predicate executed through the
//!   index access path vs the zone-pruned scan vs the plan the cost model
//!   actually picks when fed synopsis-backed cardinalities (`planned`). The
//!   keys are LCG-shuffled, so every partition's zone covers the whole domain
//!   and zone pruning alone skips nothing — any win is the index's.
//!
//! Before the measurements a verification pass asserts the PR's acceptance
//! criteria: on every leg the cost model's pick matches the measured winner,
//! and the point probe (≤0.1% selectivity) beats the scan by ≥5× in both
//! simulated and measured time.
//!
//! Run `TASTER_CRITERION_JSON=crates/bench/baselines/access_path.json cargo
//! bench -p taster-bench --bench access_path` to refresh the baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use taster_core::{CardinalityCache, SynopsisCardinality};
use taster_engine::physical::execute;
use taster_engine::{
    index_access_path, AccessPath, BinaryOp, CostEstimator, ExecutionContext, Expr, LogicalPlan,
};
use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, IoModel, Table};

const ROWS: usize = 2_000_000;
const PARTITIONS: usize = 32;

fn catalog() -> Arc<Catalog> {
    let mut key: Vec<i64> = (0..ROWS as i64).collect();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in (1..key.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 11) % (i as u64 + 1)) as usize;
        key.swap(i, j);
    }
    let flag: Vec<i64> = (0..ROWS as i64).map(|i| i % 7).collect();
    let price: Vec<f64> = (0..ROWS).map(|i| (i % 997) as f64).collect();
    let batch = BatchBuilder::new()
        .column("k", key)
        .column("flag", flag)
        .column("price", price)
        .build()
        .unwrap();
    let cat = Catalog::new();
    cat.register(Table::from_batch("t", batch, PARTITIONS).unwrap());
    let t = cat.table("t").unwrap();
    t.create_index("k").unwrap();
    t.create_index("flag").unwrap();
    Arc::new(cat)
}

/// The three predicate shapes under test, with their names.
fn shapes() -> Vec<(&'static str, Expr)> {
    vec![
        // One row out of 2M: 5e-7 selectivity, far below the 0.1% criterion.
        (
            "point",
            Expr::binary(Expr::col("k"), BinaryOp::Eq, Expr::lit(1_234i64)),
        ),
        // 1% of the key domain.
        (
            "range",
            Expr::binary(Expr::col("k"), BinaryOp::Lt, Expr::lit(20_000i64)),
        ),
        // ~0.14% after intersecting the range with one of seven flags.
        (
            "and",
            Expr::binary(Expr::col("k"), BinaryOp::Lt, Expr::lit(20_000i64)).and(Expr::binary(
                Expr::col("flag"),
                BinaryOp::Eq,
                Expr::lit(3i64),
            )),
        ),
    ]
}

fn scan(filter: &Expr, access: Option<AccessPath>) -> LogicalPlan {
    LogicalPlan::Scan {
        table: "t".into(),
        filter: Some(filter.clone()),
        projection: None,
        access,
    }
}

/// Wall-clock and simulated seconds of one execution.
fn run(plan: &LogicalPlan, cat: &Arc<Catalog>) -> (f64, f64) {
    let ctx = ExecutionContext::new(cat.clone());
    let start = Instant::now();
    let res = execute(plan, &ctx).unwrap();
    let wall = start.elapsed().as_secs_f64();
    (wall, res.metrics.simulated_secs(&IoModel::default()))
}

/// Assert the acceptance criteria before measuring: the cost model's pick
/// matches the measured winner on every shape, and the point probe clears 5×.
fn verify(cat: &Arc<Catalog>) {
    let cache = CardinalityCache::new();
    let cards = SynopsisCardinality::new(cat, &cache, 0.2);
    let estimator = CostEstimator::new(cat, IoModel::default()).with_cardinality(&cards);
    let indexed = cat.table("t").unwrap().indexed_columns();

    for (name, pred) in shapes() {
        let path = index_access_path(&pred, &indexed).expect("shape must be indexable");
        let plain = scan(&pred, None);
        let via_index = scan(&pred, Some(path));
        let cost_scan = estimator.cost(&plain).unwrap();
        let cost_index = estimator.cost(&via_index).unwrap();

        // Median-of-three to keep the comparison stable under noise.
        let wall = |p: &LogicalPlan| {
            let mut t: Vec<f64> = (0..3).map(|_| run(p, cat).0).collect();
            t.sort_by(f64::total_cmp);
            t[1]
        };
        let wall_scan = wall(&plain);
        let wall_index = wall(&via_index);
        assert_eq!(
            cost_index < cost_scan,
            wall_index < wall_scan,
            "{name}: cost model pick (index={cost_index:.0}ns scan={cost_scan:.0}ns) \
             disagrees with measurement (index={wall_index:.6}s scan={wall_scan:.6}s)"
        );

        if name == "point" {
            let (_, sim_scan) = run(&plain, cat);
            let (_, sim_index) = run(&via_index, cat);
            assert!(
                sim_scan >= 5.0 * sim_index,
                "point: simulated speedup {:.1}x < 5x",
                sim_scan / sim_index
            );
            assert!(
                wall_scan >= 5.0 * wall_index,
                "point: measured speedup {:.1}x < 5x",
                wall_scan / wall_index
            );
        }
        eprintln!(
            "[access_path] {name}: cost index/scan = {:.3}, wall index/scan = {:.3}",
            cost_index / cost_scan,
            wall_index / wall_scan
        );
    }
}

fn bench_access_paths(c: &mut Criterion) {
    let cat = catalog();
    verify(&cat);

    let cache = CardinalityCache::new();
    let indexed = cat.table("t").unwrap().indexed_columns();

    for (name, pred) in shapes() {
        let mut group = c.benchmark_group(name);
        group.sample_size(10);

        let plain = scan(&pred, None);
        group.bench_function("scan", |b| {
            b.iter(|| black_box(run(&plain, &cat)))
        });

        let path = index_access_path(&pred, &indexed).unwrap();
        let via_index = scan(&pred, Some(path));
        group.bench_function("index", |b| {
            b.iter(|| black_box(run(&via_index, &cat)))
        });

        // What the planner would actually do: derive, gate and pick by cost
        // with synopsis-fed cardinalities, then execute the winner.
        group.bench_function("planned", |b| {
            b.iter(|| {
                let cards = SynopsisCardinality::new(&cat, &cache, 0.2);
                let estimator =
                    CostEstimator::new(&cat, IoModel::default()).with_cardinality(&cards);
                let plan = match index_access_path(&pred, &indexed)
                    .and_then(|p| estimator.gate_access_path("t", p, 0.25))
                {
                    Some(p) => {
                        let annotated = scan(&pred, Some(p));
                        if estimator.cost(&annotated).unwrap() < estimator.cost(&plain).unwrap() {
                            annotated
                        } else {
                            plain.clone()
                        }
                    }
                    None => plain.clone(),
                };
                black_box(run(&plan, &cat))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_access_paths);
criterion_main!(benches);
