//! Micro-benchmarks of the tombstone / compaction path:
//!
//! * `scan/filtered_*` — a selective filtered scan (`v < 10.0`, ~1%
//!   selectivity) over a table whose sealed partitions are 75% dead, before
//!   vs after compaction. Predicate kernels evaluate over *physical* rows
//!   before the tombstone mask ANDs in, so the tombstoned leg pays 4× the
//!   kernel work for the same answer — this is the scan cost compaction
//!   actually removes.
//! * `scan/full_*` — the same comparison for an unfiltered materializing
//!   scan; both legs copy out the identical 250k live rows, so the gap
//!   here is only the mask-filter materialization, not 4×.
//! * `agg/*` — the same comparison through a GROUP BY SUM, where kernel
//!   work dominates and the win is the smaller physical row count.
//! * `compact/sweep_75pct_dead` — the cost of `Table::compact` itself:
//!   re-materializing live rows, re-encoding the dictionary column,
//!   rebuilding zones.
//!
//! Before any measurement a verification pass asserts the PR's acceptance
//! criteria: compaction changes no exact answer (bit-identical GROUP BY
//! results before/after), and the compacted filtered scan is ≥2× faster
//! than the tombstoned one — the numbers are only recorded if the contract
//! holds.
//!
//! Run `TASTER_CRITERION_JSON=crates/bench/baselines/compaction.json cargo
//! bench -p taster-bench --bench compaction` to refresh the baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use taster_engine::physical::execute;
use taster_engine::{parse_query, BinaryOp, ExecutionContext, Expr, LogicalPlan};
use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, RecordBatch, Table};

const ROWS: usize = 1_000_000;
const PARTITIONS: usize = 16;
const AGG_SQL: &str = "SELECT grp, SUM(v) FROM t GROUP BY grp";

fn base_batch() -> RecordBatch {
    BatchBuilder::new()
        .column("grp", (0..ROWS as i64).map(|i| i % 8).collect::<Vec<_>>())
        .column("v", (0..ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>())
        .column(
            "cat",
            (0..ROWS)
                .map(|i| ["alpha", "beta", "gamma", "delta"][i % 4])
                .collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

/// Every partition 75% dead: positions `i % 4 != 0` are tombstoned
/// round-robin, so dead rows spread evenly and every sealed partition
/// crosses any reasonable compaction threshold.
fn tombstoned_table() -> Table {
    let table = Table::from_batch("t", base_batch(), PARTITIONS).unwrap();
    let dead: Vec<usize> = (0..ROWS).filter(|i| i % 4 != 0).collect();
    table.delete_rows(&dead).unwrap();
    table
}

fn catalog_of(table: Table) -> Arc<Catalog> {
    let cat = Catalog::new();
    cat.register(table);
    Arc::new(cat)
}

fn scan_plan(filter: Option<Expr>) -> LogicalPlan {
    LogicalPlan::Scan {
        table: "t".into(),
        filter,
        projection: None,
        access: None,
    }
}

/// ~1% selectivity; every partition's `v` zone spans the whole domain, so
/// neither leg can prune it away — the kernels must run.
fn selective_filter() -> Expr {
    Expr::binary(Expr::col("v"), BinaryOp::Lt, Expr::lit(10.0f64))
}

fn exact_groups(cat: &Arc<Catalog>) -> Vec<(i64, f64)> {
    let plan = parse_query(AGG_SQL).unwrap().to_exact_plan(cat).unwrap();
    let result = execute(&plan, &ExecutionContext::new(cat.clone())).unwrap();
    let mut groups: Vec<(i64, f64)> = result
        .groups
        .iter()
        .map(|g| (g.key[0].as_i64().unwrap(), g.aggregates[0].value))
        .collect();
    groups.sort_by_key(|&(k, _)| k);
    groups
}

/// Best-of-5 wall time of the selective filtered scan.
fn scan_secs(cat: &Arc<Catalog>) -> f64 {
    let plan = scan_plan(Some(selective_filter()));
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        black_box(execute(&plan, &ExecutionContext::new(cat.clone())).unwrap());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The acceptance criteria, checked before anything is recorded.
fn verify(tombstoned: &Arc<Catalog>, compacted: &Arc<Catalog>) {
    let before = exact_groups(tombstoned);
    let after = exact_groups(compacted);
    assert_eq!(
        before, after,
        "compaction changed an exact GROUP BY answer (bit-level)"
    );

    let tomb = scan_secs(tombstoned);
    let comp = scan_secs(compacted);
    let speedup = tomb / comp;
    assert!(
        speedup >= 2.0,
        "compacted filtered-scan speedup {speedup:.2}x < 2x \
         (tombstoned {tomb:.4}s, compacted {comp:.4}s)"
    );
    eprintln!("verified: answers identical, compacted filtered scan {speedup:.1}x faster");
}

fn bench_compaction(c: &mut Criterion) {
    let tombstoned = catalog_of(tombstoned_table());
    let compacted = {
        let table = tombstoned_table();
        table.compact(0.5).unwrap();
        catalog_of(table)
    };
    verify(&tombstoned, &compacted);

    let mut group = c.benchmark_group("scan");
    group.sample_size(20);
    group.bench_function("filtered_tombstoned_75pct_dead", |b| {
        let plan = scan_plan(Some(selective_filter()));
        b.iter(|| black_box(execute(&plan, &ExecutionContext::new(tombstoned.clone())).unwrap()))
    });
    group.bench_function("filtered_compacted", |b| {
        let plan = scan_plan(Some(selective_filter()));
        b.iter(|| black_box(execute(&plan, &ExecutionContext::new(compacted.clone())).unwrap()))
    });
    group.bench_function("full_tombstoned_75pct_dead", |b| {
        let plan = scan_plan(None);
        b.iter(|| black_box(execute(&plan, &ExecutionContext::new(tombstoned.clone())).unwrap()))
    });
    group.bench_function("full_compacted", |b| {
        let plan = scan_plan(None);
        b.iter(|| black_box(execute(&plan, &ExecutionContext::new(compacted.clone())).unwrap()))
    });
    group.finish();

    let mut group = c.benchmark_group("agg");
    group.sample_size(20);
    group.bench_function("tombstoned_75pct_dead", |b| {
        let plan = parse_query(AGG_SQL).unwrap().to_exact_plan(&tombstoned).unwrap();
        b.iter(|| black_box(execute(&plan, &ExecutionContext::new(tombstoned.clone())).unwrap()))
    });
    group.bench_function("compacted", |b| {
        let plan = parse_query(AGG_SQL).unwrap().to_exact_plan(&compacted).unwrap();
        b.iter(|| black_box(execute(&plan, &ExecutionContext::new(compacted.clone())).unwrap()))
    });
    group.finish();

    let mut group = c.benchmark_group("compact");
    group.sample_size(10);
    group.bench_function("sweep_75pct_dead", |b| {
        b.iter_batched(
            tombstoned_table,
            |table| {
                black_box(table.compact(0.5).unwrap());
                table
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
