//! Throughput of the shared, `&self` [`TasterEngine`] under concurrent
//! sessions.
//!
//! Each benchmark runs the same 16-query steady-state workload (a mix of
//! synopsis-reuse and exact-path queries, warmed so the reusable sample is
//! already materialized) against ONE engine, split across 1 / 2 / 4 session
//! threads. With `execute_sql(&mut self)` this workload could not be
//! expressed at all; the multi-session legs measure how much of the loop
//! (planning under the metadata lock, tuning under the tuner lock, execution
//! lock-free) actually overlaps.
//!
//! On a multi-core host the sessions sweep shows session-level scaling; on a
//! single-core host (like the recorded baseline's) all legs should be
//! near-flat — the delta between `sessions_1` and `sessions_4` is then pure
//! lock-contention overhead, which is exactly what the baseline guards.
//!
//! Run `TASTER_CRITERION_JSON=$PWD/crates/bench/baselines/concurrent_engine.json
//! cargo bench -p taster-bench --bench concurrent_engine` from the workspace
//! root to refresh the checked-in baseline (the path must be absolute: bench
//! binaries run with CWD = `crates/bench`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use taster_core::{TasterConfig, TasterEngine};
use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, Table};

const ROWS: usize = 50_000;
const QUERIES: usize = 16;

const APPROX_Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";
/// Non-approximable: always the exact plan, a full scan of `orders` — the
/// execution-heavy leg of the mix, which runs outside every engine lock.
const EXACT_Q: &str = "SELECT o_id, o_price FROM orders WHERE o_price > 990";

fn catalog() -> Arc<Catalog> {
    let cat = Catalog::new();
    let orders = BatchBuilder::new()
        .column("o_id", (0..ROWS as i64).collect::<Vec<_>>())
        .column("o_cust", (0..ROWS as i64).map(|i| i % 100).collect::<Vec<_>>())
        .column("o_flag", (0..ROWS as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column("o_price", (0..ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>())
        .build()
        .unwrap();
    cat.register(Table::from_batch("orders", orders, 8).unwrap());
    let cust = BatchBuilder::new()
        .column("c_id", (0..100i64).collect::<Vec<_>>())
        .column("c_region", (0..100i64).map(|i| i % 4).collect::<Vec<_>>())
        .build()
        .unwrap();
    cat.register(Table::from_batch("customer", cust, 1).unwrap());
    Arc::new(cat)
}

/// A fresh engine with the reusable sample already materialized, so the
/// timed section measures steady-state serving, not the first build.
fn warmed_engine(cat: &Arc<Catalog>) -> TasterEngine {
    let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
    let engine = TasterEngine::new(cat.clone(), config);
    engine.execute_sql(APPROX_Q).expect("warm-up query");
    engine
}

/// Run the steady-state workload across `sessions` threads sharing `engine`.
fn drive(engine: &TasterEngine, sessions: usize) {
    let per_session = QUERIES / sessions;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                scope.spawn(move || {
                    for i in 0..per_session {
                        let sql = if i % 2 == 0 { APPROX_Q } else { EXACT_Q };
                        black_box(engine.execute_sql(sql).expect("query runs"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

fn bench_concurrent_engine(c: &mut Criterion) {
    // Pin intra-query (morsel) parallelism to one thread so the sessions
    // sweep isolates session-level scaling: without this the exact scan
    // already saturates every core from a single session.
    std::env::set_var("TASTER_THREADS", "1");
    let cat = catalog();
    let mut group = c.benchmark_group("concurrent_engine");
    for sessions in [1usize, 2, 4] {
        group.bench_function(format!("sessions_{sessions}_x{QUERIES}"), |b| {
            b.iter_batched(
                || warmed_engine(&cat),
                |engine| drive(&engine, sessions),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_engine);
criterion_main!(benches);
