//! Micro-benchmarks of the online-ingestion path:
//!
//! * `append/*` — `Table::append` throughput for chunked appends, with and
//!   without zone maps resident (the zones-resident leg pays the incremental
//!   widening, the cold leg defers zone work to the first pruning scan).
//! * `refresh/*` — incrementally absorbing an appended delta into an
//!   existing synopsis vs rebuilding it from scratch over the concatenated
//!   table: the sketch-join and the uniform sample, at a 10% delta. The
//!   incremental legs should cost ~the delta fraction of the rebuild legs.
//!
//! Run `TASTER_CRITERION_JSON=crates/bench/baselines/ingest.json cargo bench
//! -p taster-bench --bench ingest` to refresh the checked-in baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use taster_storage::batch::BatchBuilder;
use taster_storage::{RecordBatch, Table};
use taster_synopses::{SketchJoin, UniformSampler};

const BASE_ROWS: usize = 1_000_000;
const DELTA_ROWS: usize = 100_000;
const CHUNK_ROWS: usize = 10_000;

fn rows(lo: usize, hi: usize) -> RecordBatch {
    BatchBuilder::new()
        .column("k", (lo as i64..hi as i64).map(|i| i % 1_000).collect::<Vec<_>>())
        .column("v", (lo..hi).map(|i| (i % 997) as f64).collect::<Vec<_>>())
        .build()
        .unwrap()
}

fn bench_append(c: &mut Criterion) {
    let delta_chunks: Vec<RecordBatch> = (0..DELTA_ROWS / CHUNK_ROWS)
        .map(|i| rows(BASE_ROWS + i * CHUNK_ROWS, BASE_ROWS + (i + 1) * CHUNK_ROWS))
        .collect();

    let mut group = c.benchmark_group("append");
    group.bench_function("chunked_100k_zones_cold", |b| {
        b.iter_batched(
            || Table::from_batch("t", rows(0, BASE_ROWS), 16).unwrap(),
            |table| {
                for chunk in &delta_chunks {
                    black_box(table.append(chunk).unwrap());
                }
                table
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("chunked_100k_zones_resident", |b| {
        b.iter_batched(
            || {
                let table = Table::from_batch("t", rows(0, BASE_ROWS), 16).unwrap();
                let _ = table.snapshot().zones(); // force residency
                table
            },
            |table| {
                for chunk in &delta_chunks {
                    black_box(table.append(chunk).unwrap());
                }
                table
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let base = rows(0, BASE_ROWS);
    let delta = rows(BASE_ROWS, BASE_ROWS + DELTA_ROWS);
    let whole = {
        let mut w = base.clone();
        w.append(&delta).unwrap();
        w
    };

    let mut group = c.benchmark_group("refresh");

    let built = SketchJoin::build(
        std::slice::from_ref(&base),
        vec!["k".into()],
        Some("v".into()),
        0.001,
        0.01,
    )
    .unwrap();
    group.bench_function("sketch_incremental_10pct", |b| {
        b.iter_batched(
            || built.clone(),
            |mut sk| {
                sk.add_batch(&delta).unwrap();
                sk
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("sketch_rebuild", |b| {
        b.iter(|| {
            black_box(
                SketchJoin::build(
                    std::slice::from_ref(&whole),
                    vec!["k".into()],
                    Some("v".into()),
                    0.001,
                    0.01,
                )
                .unwrap(),
            )
        })
    });

    let sample = UniformSampler::new(0.1, 7).sample_batch(&base);
    group.bench_function("uniform_incremental_10pct", |b| {
        b.iter_batched(
            || (UniformSampler::new(0.1, 9), sample.clone()),
            |(mut sampler, mut sample)| {
                sampler.update(&mut sample, &delta).unwrap();
                sample
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("uniform_rebuild", |b| {
        b.iter(|| black_box(UniformSampler::new(0.1, 7).sample_batch(&whole)))
    });

    group.finish();
}

criterion_group!(benches, bench_append, bench_refresh);
criterion_main!(benches);
