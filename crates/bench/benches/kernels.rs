//! Micro-benchmarks of the vectorized execution kernels against the seed's
//! row-at-a-time strategy (reimplemented here as the baseline):
//!
//! * `filter/*` — selection-mask predicate evaluation vs. per-row
//!   `evaluate_row` + `Vec<bool>`,
//! * `group_by/*` — row-key dense aggregation vs. per-row `Vec<Value>` keys
//!   into a keyed hash map (1M rows, 8 groups),
//! * `scan/*` — zone-map-pruned vs. unpruned scans under a selective range
//!   predicate (64 partitions, ~2 match the range),
//! * `str_filter/*`, `str_group_by/*` — string-heavy legs (2M rows, 64
//!   categories) comparing the dictionary code kernels against raw-`Utf8`
//!   string comparison; the harness asserts the encoded legs are ≥2× faster
//!   (and bit-identical) before recording anything.
//!
//! Run `TASTER_CRITERION_JSON=crates/bench/baselines/kernels.json cargo bench
//! -p taster-bench --bench kernels` to refresh the checked-in baseline.

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use taster_engine::logical::{AggExpr, AggFunc, LogicalPlan};
use taster_engine::physical::execute;
use taster_engine::{BinaryOp, ExecutionContext, Expr};
use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, RecordBatch, Table, Value};
use taster_synopses::estimator::{AggregateKind, GroupedEstimator};

const ROWS: usize = 1_000_000;
const GROUPS: i64 = 8;

fn fact_batch() -> RecordBatch {
    BatchBuilder::new()
        .column("g", (0..ROWS as i64).map(|i| i % GROUPS).collect::<Vec<_>>())
        .column("v", (0..ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>())
        .build()
        .unwrap()
}

fn bench_filter(c: &mut Criterion) {
    let batch = fact_batch();
    let pred = Expr::binary(Expr::col("v"), BinaryOp::Lt, Expr::lit(300.0));
    let mut group = c.benchmark_group("filter");

    group.bench_function("vectorized_mask_1m", |b| {
        b.iter(|| {
            let mask = pred.evaluate_predicate(&batch).unwrap();
            black_box(batch.filter_mask(&mask).num_rows())
        })
    });
    group.bench_function("row_at_a_time_1m", |b| {
        b.iter(|| {
            // The seed strategy: widen every row to Value, evaluate the
            // expression tree per row, collect a Vec<bool>.
            let bools: Vec<bool> = (0..batch.num_rows())
                .map(|row| {
                    pred.evaluate_row(&batch, row)
                        .unwrap()
                        .as_bool()
                        .unwrap_or(false)
                })
                .collect();
            black_box(batch.filter(&bools).num_rows())
        })
    });
    group.finish();
}

fn bench_group_by(c: &mut Criterion) {
    let batch = fact_batch();
    let cat = Catalog::new();
    cat.register(Table::from_batch("facts", batch.clone(), 8).unwrap());
    let ctx = ExecutionContext::new(Arc::new(cat));
    let plan = LogicalPlan::Aggregate {
        group_by: vec!["g".into()],
        aggregates: vec![
            AggExpr::new(AggFunc::Count, None),
            AggExpr::new(AggFunc::Sum, Some("v".into())),
        ],
        input: Box::new(LogicalPlan::Scan {
            table: "facts".into(),
            filter: None,
            projection: None,
            access: None,
        }),
    };

    let mut group = c.benchmark_group("group_by");
    group.bench_function("vectorized_rowkeys_1m_8g", |b| {
        b.iter(|| black_box(execute(&plan, &ctx).unwrap().num_groups()))
    });
    group.bench_function("row_at_a_time_1m_8g", |b| {
        b.iter(|| {
            // The seed inner loop: one Vec<Value> allocation per row per
            // batch, cloned once more per aggregate, into keyed hash maps.
            let gcol = batch.column_by_name("g").unwrap();
            let vcol = batch.column_by_name("v").unwrap();
            let mut count = GroupedEstimator::new(AggregateKind::Count);
            let mut sum = GroupedEstimator::new(AggregateKind::Sum);
            for row in 0..batch.num_rows() {
                let key: Vec<Value> = vec![gcol.value(row)];
                count.add(key.clone(), 1.0, 1.0);
                sum.add(key, vcol.value_f64(row).unwrap_or(0.0), 1.0);
            }
            let out: HashMap<_, _> = sum.finish();
            black_box(out.len())
        })
    });
    group.finish();
}

fn bench_scan_pruning(c: &mut Criterion) {
    // Sorted ids: contiguous partitions have disjoint zones, so a selective
    // range predicate prunes ~62 of 64 partitions. The shuffled copy has
    // full-range zones everywhere, so the same predicate prunes nothing.
    let n = ROWS;
    let sorted: Vec<i64> = (0..n as i64).collect();
    let shuffled: Vec<i64> = (0..n as i64).map(|i| (i * 48_271) % n as i64).collect();
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let cat = Catalog::new();
    let mk = |ids: Vec<i64>| {
        BatchBuilder::new()
            .column("id", ids)
            .column("v", vals.clone())
            .build()
            .unwrap()
    };
    cat.register(Table::from_batch("sorted", mk(sorted), 64).unwrap());
    cat.register(Table::from_batch("shuffled", mk(shuffled), 64).unwrap());
    let ctx = ExecutionContext::new(Arc::new(cat));
    let scan = |table: &str| LogicalPlan::Scan {
        table: table.into(),
        filter: Some(
            Expr::binary(Expr::col("id"), BinaryOp::GtEq, Expr::lit(500_000i64)).and(
                Expr::binary(Expr::col("id"), BinaryOp::Lt, Expr::lit(510_000i64)),
            ),
        ),
        projection: None,
        access: None,
    };

    // Warm the lazily-computed zone maps so the bench measures scans.
    for t in ["sorted", "shuffled"] {
        execute(&scan(t), &ctx).unwrap();
    }
    let pruned = execute(&scan("sorted"), &ctx).unwrap();
    assert!(
        pruned.metrics.partitions_pruned * 10 >= 64 * 9,
        "pruning regressed: only {}/64 partitions skipped",
        pruned.metrics.partitions_pruned
    );

    let mut group = c.benchmark_group("scan");
    group.bench_function("pruned_range_1m_64p", |b| {
        b.iter(|| black_box(execute(&scan("sorted"), &ctx).unwrap().rows.num_rows()))
    });
    group.bench_function("unpruned_range_1m_64p", |b| {
        b.iter(|| black_box(execute(&scan("shuffled"), &ctx).unwrap().rows.num_rows()))
    });
    group.finish();
}

const STR_ROWS: usize = 2_000_000;
const CATEGORIES: usize = 64;

/// 2M rows over 64 categorical strings with a long shared prefix (the shape
/// where per-row string comparison hurts most), plus a value column.
fn string_batch() -> RecordBatch {
    BatchBuilder::new()
        .column(
            "cat",
            (0..STR_ROWS)
                .map(|i| format!("category_{:02}", (i * 7) % CATEGORIES))
                .collect::<Vec<_>>(),
        )
        .column("v", (0..STR_ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>())
        .build()
        .unwrap()
}

/// Median-of-3 wall time of `f`, used by the ≥2× self-verification below.
fn time_it(mut f: impl FnMut() -> usize) -> std::time::Duration {
    let mut samples: Vec<std::time::Duration> = (0..3)
        .map(|_| {
            let t0 = std::time::Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[1]
}

fn bench_string_filter(c: &mut Criterion) {
    let raw = string_batch();
    let enc = raw.dict_encode_strings();
    assert!(enc.has_dict_columns());
    let eq = Expr::binary(Expr::col("cat"), BinaryOp::Eq, Expr::lit("category_31"));
    let range = Expr::binary(Expr::col("cat"), BinaryOp::GtEq, Expr::lit("category_16"))
        .and(Expr::binary(Expr::col("cat"), BinaryOp::Lt, Expr::lit("category_48")));

    // Self-verify before recording: same selected rows, ≥2× faster encoded.
    for (name, pred) in [("eq", &eq), ("range", &range)] {
        let count = |b: &RecordBatch| pred.evaluate_predicate(b).unwrap().count_selected();
        assert_eq!(count(&raw), count(&enc), "str_filter/{name} diverges");
        assert!(count(&raw) > 0, "str_filter/{name} selects nothing — weak leg");
        let (r, d) = (time_it(|| count(&raw)), time_it(|| count(&enc)));
        assert!(
            d * 2 <= r,
            "str_filter/{name}: dict kernels must be ≥2× faster (raw {r:?}, dict {d:?})"
        );
    }

    let mut group = c.benchmark_group("str_filter");
    group.bench_function("eq_dict_2m", |b| {
        b.iter(|| black_box(eq.evaluate_predicate(&enc).unwrap().count_selected()))
    });
    group.bench_function("eq_raw_2m", |b| {
        b.iter(|| black_box(eq.evaluate_predicate(&raw).unwrap().count_selected()))
    });
    group.bench_function("range_dict_2m", |b| {
        b.iter(|| black_box(range.evaluate_predicate(&enc).unwrap().count_selected()))
    });
    group.bench_function("range_raw_2m", |b| {
        b.iter(|| black_box(range.evaluate_predicate(&raw).unwrap().count_selected()))
    });
    group.finish();
}

fn bench_string_group_by(c: &mut Criterion) {
    // Single-partition tables so the scan's concat keeps the encoded
    // partition's representation: sealed → dict, under-seal → raw Utf8.
    let batch = string_batch();
    let cat = Catalog::new();
    cat.register(Table::from_batch("s_dict", batch.clone(), 1).unwrap());
    cat.register(
        Table::from_partitions_with_seal("s_raw", vec![batch], STR_ROWS + 1).unwrap(),
    );
    assert_eq!(cat.table("s_dict").unwrap().snapshot().encoding_counts(), (1, 0));
    assert_eq!(cat.table("s_raw").unwrap().snapshot().encoding_counts(), (0, 1));
    let ctx = ExecutionContext::new(Arc::new(cat));
    let plan = |table: &str| LogicalPlan::Aggregate {
        group_by: vec!["cat".into()],
        aggregates: vec![
            AggExpr::new(AggFunc::Count, None),
            AggExpr::new(AggFunc::Sum, Some("v".into())),
        ],
        input: Box::new(LogicalPlan::Scan {
            table: table.into(),
            filter: None,
            projection: None,
            access: None,
        }),
    };
    let groups = |table: &str| execute(&plan(table), &ctx).unwrap().num_groups();

    // Self-verify: same groups, ≥2× faster over codes.
    assert_eq!(groups("s_dict"), CATEGORIES);
    assert_eq!(groups("s_raw"), CATEGORIES);
    let (r, d) = (time_it(|| groups("s_raw")), time_it(|| groups("s_dict")));
    assert!(
        d * 2 <= r,
        "str_group_by: dict grouping must be ≥2× faster (raw {r:?}, dict {d:?})"
    );

    let mut group = c.benchmark_group("str_group_by");
    group.bench_function("categorical_dict_2m_64g", |b| {
        b.iter(|| black_box(groups("s_dict")))
    });
    group.bench_function("categorical_raw_2m_64g", |b| {
        b.iter(|| black_box(groups("s_raw")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_filter,
    bench_group_by,
    bench_scan_pruning,
    bench_string_filter,
    bench_string_group_by
);
criterion_main!(benches);
