//! Many-session service throughput: a sweep of 64 → 4096 simulated clients
//! multiplexed onto one [`SessionService`] (8 workers, bounded queue).
//!
//! Each simulated client issues one query — alternating the reusable
//! `ERROR WITHIN` template and a non-approximable exact scan — through the
//! full admission pipeline, retrying with backoff on typed `Overloaded`
//! rejections. A bounded pool of driver threads plays the clients, so the
//! 4096-client leg measures service multiplexing, not OS thread-spawn cost.
//!
//! What the sweep is for: with shared scans batching the concurrent exact
//! scans into one morsel pass per snapshot and the warmed synopsis serving
//! every approximate query, per-query cost must degrade **sub-linearly** as
//! the client count grows 64×. The `verify` pass (run once, untimed, before
//! the criterion legs) asserts exactly that, plus a bounded p99 and that the
//! contended leg performed fewer scan passes than it served scan-bearing
//! queries — if sharing breaks, the bench fails loudly instead of recording
//! a quietly-linear baseline.
//!
//! Run `TASTER_CRITERION_JSON=$PWD/crates/bench/baselines/many_sessions.json
//! cargo bench -p taster-bench --bench many_sessions` from the workspace
//! root to refresh the checked-in baseline (the path must be absolute: bench
//! binaries run with CWD = `crates/bench`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use taster_core::{TasterConfig, TasterEngine};
use taster_server::{Response, ServiceConfig, SessionService, TenantBudgets};
use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, Table};

const ROWS: usize = 50_000;
/// Real OS threads playing the simulated clients.
const DRIVERS: usize = 16;
const WORKERS: usize = 8;
const QUEUE: usize = 32;
const SWEEP: [usize; 4] = [64, 256, 1024, 4096];

const APPROX_Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";
/// Non-approximable: always the exact plan, a full scan of `orders` — the
/// leg shared scans must batch across concurrent sessions.
const EXACT_Q: &str = "SELECT o_id, o_price FROM orders WHERE o_price > 990";

fn catalog() -> Arc<Catalog> {
    let cat = Catalog::new();
    let orders = BatchBuilder::new()
        .column("o_id", (0..ROWS as i64).collect::<Vec<_>>())
        .column("o_cust", (0..ROWS as i64).map(|i| i % 100).collect::<Vec<_>>())
        .column("o_flag", (0..ROWS as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column("o_price", (0..ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>())
        .build()
        .unwrap();
    cat.register(Table::from_batch("orders", orders, 8).unwrap());
    Arc::new(cat)
}

/// A service over a warmed engine: the reusable sample is already
/// materialized, so the timed sweep measures steady-state serving.
fn warmed_service(cat: &Arc<Catalog>) -> (Arc<TasterEngine>, Arc<SessionService>) {
    let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
    let engine = Arc::new(TasterEngine::new(cat.clone(), config));
    engine.execute_sql(APPROX_Q).expect("warm-up query");
    let service = SessionService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: WORKERS,
            max_queue: QUEUE,
            default_budgets: TenantBudgets::default(),
        },
    );
    (engine, service)
}

/// Play `clients` simulated clients over the bounded driver pool; returns
/// per-client latencies (including any admission backoff) in seconds.
fn drive(service: &Arc<SessionService>, clients: usize) -> Vec<f64> {
    let next = AtomicUsize::new(0);
    let latencies = Mutex::new(Vec::with_capacity(clients));
    std::thread::scope(|scope| {
        for _ in 0..DRIVERS {
            let session = service.session("bench");
            let next = &next;
            let latencies = &latencies;
            scope.spawn(move || loop {
                let client = next.fetch_add(1, Ordering::Relaxed);
                if client >= clients {
                    break;
                }
                let sql = if client.is_multiple_of(2) { APPROX_Q } else { EXACT_Q };
                let start = Instant::now();
                loop {
                    match session.query(sql) {
                        Response::Reply(reply) => {
                            black_box(reply);
                            break;
                        }
                        Response::Reject { kind, message } => {
                            assert!(
                                kind.to_string() == "overloaded",
                                "only admission may reject the sweep: {message}"
                            );
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                }
                latencies
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(start.elapsed().as_secs_f64());
            });
        }
    });
    latencies.into_inner().unwrap_or_else(|e| e.into_inner())
}

fn p99(latencies: &mut [f64]) -> f64 {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    latencies[(latencies.len() * 99).div_ceil(100).saturating_sub(1)]
}

/// The untimed self-verification pass: the numbers the baseline records are
/// only meaningful if sharing actually happened and degradation really is
/// sub-linear, so assert both before recording anything.
fn verify(cat: &Arc<Catalog>) {
    let small = SWEEP[0];
    let large = SWEEP[SWEEP.len() - 1];

    let (_, service) = warmed_service(cat);
    let start = Instant::now();
    let lat_small = drive(&service, small);
    let per_query_small = start.elapsed().as_secs_f64() / small as f64;
    assert_eq!(lat_small.len(), small, "every simulated client served");
    service.shutdown();

    let (engine, service) = warmed_service(cat);
    let start = Instant::now();
    let mut lat_large = drive(&service, large);
    let per_query_large = start.elapsed().as_secs_f64() / large as f64;
    assert_eq!(lat_large.len(), large, "every simulated client served");

    // Shared scans must batch the contended leg: strictly fewer morsel
    // passes than scan-bearing queries, with real attachments.
    let scans = engine.shared_scan_stats();
    let scan_queries = large / 2;
    assert!(
        (scans.passes as usize) < scan_queries,
        "contended leg must share passes: {scans:?} over {scan_queries} scan queries"
    );
    assert!(scans.attached >= 1, "no session ever attached: {scans:?}");

    // Sub-linear degradation: 64× the clients must not cost 64× per query —
    // shared passes and the warmed synopsis keep per-query cost near-flat
    // (allow 8× for queueing under a 5× oversubscribed driver pool).
    assert!(
        per_query_large < per_query_small * 8.0,
        "per-query cost degraded super-linearly: {per_query_small:.6}s → {per_query_large:.6}s"
    );

    // Bounded tail latency even at 4096 clients.
    let p99 = p99(&mut lat_large);
    assert!(p99 < 0.5, "p99 unbounded under load: {p99:.3}s");

    let stats = service.admission_stats();
    eprintln!(
        "verify: per-query {:.1}us -> {:.1}us (x{:.2}), p99 {:.1}ms, {scans:?}, {stats:?}",
        per_query_small * 1e6,
        per_query_large * 1e6,
        per_query_large / per_query_small,
        p99 * 1e3,
    );
    service.shutdown();
}

fn bench_many_sessions(c: &mut Criterion) {
    // Pin intra-query (morsel) parallelism to one thread so the sweep
    // isolates session multiplexing: without this the exact scan already
    // saturates every core from a single session.
    std::env::set_var("TASTER_THREADS", "1");
    let cat = catalog();
    verify(&cat);
    let mut group = c.benchmark_group("many_sessions");
    for clients in SWEEP {
        group.bench_function(format!("clients_{clients}"), |b| {
            b.iter_batched(
                || warmed_service(&cat).1,
                |service| {
                    black_box(drive(&service, clients));
                    service.shutdown();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_many_sessions);
criterion_main!(benches);
