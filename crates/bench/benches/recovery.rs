//! Durability micro-benchmarks:
//!
//! * `wal/*` — `Table::append` throughput with and without the write-ahead
//!   log armed, on the same chunked-append shape as the ingest baseline
//!   (`append/chunked_100k_zones_cold`), so the WAL's per-append overhead
//!   (serialize + frame + fsync group commit) reads directly against the
//!   ~14 ns/row in-memory ingest cost.
//! * `restart/*` — time-to-first-answer after a restart: recovering a
//!   durable directory and answering from the recovered synopsis (warm)
//!   vs starting a fresh in-memory engine whose first query must scan the
//!   base table and build its synopsis from scratch (cold).
//!
//! Run `TASTER_CRITERION_JSON=crates/bench/baselines/recovery.json cargo
//! bench -p taster-bench --bench recovery` to refresh the checked-in
//! baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use taster_core::persist::Durability;
use taster_core::{TasterConfig, TasterEngine};
use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, RecordBatch, StdVfs, Table};

const BASE_ROWS: usize = 1_000_000;
const DELTA_ROWS: usize = 100_000;
const CHUNK_ROWS: usize = 10_000;

const ENGINE_ROWS: usize = 100_000;
const Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";

fn scratch_root() -> PathBuf {
    std::env::temp_dir().join(format!("taster-bench-recovery-{}", std::process::id()))
}

fn scratch_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = scratch_root().join(N.fetch_add(1, Ordering::Relaxed).to_string());
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rows(lo: usize, hi: usize) -> RecordBatch {
    BatchBuilder::new()
        .column("k", (lo as i64..hi as i64).map(|i| i % 1_000).collect::<Vec<_>>())
        .column("v", (lo..hi).map(|i| (i % 997) as f64).collect::<Vec<_>>())
        .build()
        .unwrap()
}

fn orders(lo: usize, hi: usize) -> RecordBatch {
    BatchBuilder::new()
        .column("o_id", (lo as i64..hi as i64).collect::<Vec<_>>())
        .column("o_flag", (lo as i64..hi as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (lo..hi).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

fn bench_wal_append(c: &mut Criterion) {
    let delta_chunks: Vec<RecordBatch> = (0..DELTA_ROWS / CHUNK_ROWS)
        .map(|i| rows(BASE_ROWS + i * CHUNK_ROWS, BASE_ROWS + (i + 1) * CHUNK_ROWS))
        .collect();

    let mut group = c.benchmark_group("wal");
    group.bench_function("append_chunked_100k_off", |b| {
        b.iter_batched(
            || Table::from_batch("t", rows(0, BASE_ROWS), 16).unwrap(),
            |table| {
                for chunk in &delta_chunks {
                    black_box(table.append(chunk).unwrap());
                }
                table
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("append_chunked_100k_on", |b| {
        b.iter_batched(
            || {
                let dir = scratch_dir();
                let (durability, _) = Durability::open(&StdVfs, &dir).unwrap();
                let table = Table::from_batch("t", rows(0, BASE_ROWS), 16).unwrap();
                table.set_append_sink(Some(Arc::new(durability)));
                table
            },
            |table| {
                for chunk in &delta_chunks {
                    black_box(table.append(chunk).unwrap());
                }
                table
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
    std::fs::remove_dir_all(scratch_root()).ok();
}

fn engine_config(cat: &Catalog) -> TasterConfig {
    TasterConfig {
        initial_window: 64,
        adaptive_window: false,
        ..TasterConfig::with_budget_fraction(cat.total_size_bytes() * 2, 1.0)
    }
}

fn bench_restart(c: &mut Criterion) {
    let cat = Catalog::new();
    cat.register(Table::from_batch("orders", orders(0, ENGINE_ROWS), 8).unwrap());
    let cat = Arc::new(cat);
    let cfg = engine_config(&cat);

    // Pristine durable state: an engine that built, promoted and persisted
    // its synopsis, then shut down. Each warm iteration recovers a copy.
    let pristine = scratch_dir();
    {
        let eng = TasterEngine::open_durable(cat.clone(), cfg, &pristine).unwrap();
        let _ = eng.execute_sql(Q).unwrap();
        let reuse = eng.execute_sql(Q).unwrap();
        assert!(!reuse.reused_synopses.is_empty(), "bench setup must promote");
    }

    let mut group = c.benchmark_group("restart");
    group.bench_function("warm_recover_first_answer", |b| {
        b.iter_batched(
            || {
                let dir = scratch_dir();
                for f in ["wal.log", "pages.dat"] {
                    std::fs::copy(pristine.join(f), dir.join(f)).unwrap();
                }
                dir
            },
            |dir| {
                let (eng, report) = TasterEngine::recover(cfg, &dir).unwrap();
                let res = eng.execute_sql_seeded(Q, 7).unwrap();
                assert!(report.synopses_recovered >= 1);
                assert_eq!(res.result.metrics.base_rows_scanned, 0);
                black_box(res)
            },
            BatchSize::LargeInput,
        )
    });
    // A restart without durability reloads the base data from source and
    // pays the first query's base scan + synopsis build; both are inside the
    // timed routine. (The sources here are in-memory generators, so this
    // undercounts a real cold restart — the simulated I/O model, not this
    // wall clock, is what the experiments report.)
    group.bench_function("cold_start_first_answer", |b| {
        b.iter(|| {
            let cat = Catalog::new();
            cat.register(Table::from_batch("orders", orders(0, ENGINE_ROWS), 8).unwrap());
            let cat = Arc::new(cat);
            let eng = TasterEngine::new(cat, cfg);
            let res = eng.execute_sql_seeded(Q, 7).unwrap();
            assert!(res.result.metrics.base_rows_scanned >= ENGINE_ROWS);
            black_box(res)
        })
    });
    group.finish();
    std::fs::remove_dir_all(scratch_root()).ok();
}

criterion_group!(benches, bench_wal_append, bench_restart);
criterion_main!(benches);
