//! Micro-benchmarks of the sampler/join hot-path surgery:
//!
//! * `sampler/*` — the byte-keyed distinct sampler (stratification columns
//!   row-encoded once per batch, SpaceSaving sketch keyed by borrowed byte
//!   slices) against the seed's per-row strategy, reimplemented here as the
//!   baseline: widen every row to `Vec<Value>`, build a composite `String`
//!   key, insert a `Value::Str` into a `Value`-keyed sketch.
//! * `spacesaving/*` — the capacity sweep for the Stream-Summary eviction
//!   path: 128k all-distinct keys (so `#groups ≫ capacity` and every
//!   post-fill insert evicts) through the O(1) Stream-Summary sketch and
//!   through the PR 2 min-scan reference, at capacity ∈ {256, 4k, 64k}.
//!   Stream-Summary ns/iter should be ~flat in capacity; min-scan grows
//!   linearly. The min-scan legs take minutes and only re-measure frozen
//!   reference code, so they run only with `TASTER_SWEEP_MINSCAN=1`.
//! * `hash_join/*` — the morsel-parallel probe against the serial probe
//!   (`threads = 1`), same build table, 1M probe rows against a 10k build
//!   side.
//!
//! Run `TASTER_CRITERION_JSON=crates/bench/baselines/sampler_join.json cargo
//! bench -p taster-bench --bench sampler_join` to refresh the checked-in
//! baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use taster_engine::physical::hash_join_with_threads;
use taster_storage::batch::BatchBuilder;
use taster_storage::{RecordBatch, Value};
use taster_synopses::distinct::{composite_key, DistinctSampler, DistinctSamplerConfig};
use taster_synopses::{MinScanSpaceSaving, SpaceSaving};

const SAMPLER_ROWS: usize = 100_000;

fn sampler_batch() -> RecordBatch {
    // Two stratification columns (int + string) so the sampler takes the
    // generic multi-column encode path, not just the i64 fast path.
    BatchBuilder::new()
        .column(
            "k",
            (0..SAMPLER_ROWS as i64).map(|i| i % 500).collect::<Vec<_>>(),
        )
        .column(
            "s",
            (0..SAMPLER_ROWS)
                .map(|i| format!("g{}", i % 7))
                .collect::<Vec<_>>(),
        )
        .column(
            "v",
            (0..SAMPLER_ROWS).map(|i| (i % 97) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

fn bench_sampler(c: &mut Criterion) {
    let data = sampler_batch();
    let mut group = c.benchmark_group("sampler");

    group.bench_function("distinct_bytekey_100k", |b| {
        b.iter_batched(
            || {
                DistinctSampler::new(
                    DistinctSamplerConfig::new(vec!["k".into(), "s".into()], 10, 0.01),
                    7,
                )
            },
            |mut s| black_box(s.sample_batch(&data).unwrap()),
            BatchSize::SmallInput,
        )
    });

    // The seed's inner loop, kept as the recorded baseline: one Vec<Value>
    // and one composite String allocation per row, Value-keyed sketch.
    let kcol = data.column_by_name("k").unwrap();
    let scol = data.column_by_name("s").unwrap();
    group.bench_function("distinct_composite_string_100k", |b| {
        b.iter_batched(
            || {
                (
                    SpaceSaving::<Value>::new(65_536),
                    SmallRng::seed_from_u64(7),
                )
            },
            |(mut counts, mut rng)| {
                let mut idx: Vec<usize> = Vec::new();
                let mut weights: Vec<f64> = Vec::new();
                for row in 0..data.num_rows() {
                    let key: Vec<Value> = vec![kcol.value(row), scol.value(row)];
                    let key = Value::Str(composite_key(&key));
                    let seen = counts.insert(&key);
                    if seen <= 10 {
                        idx.push(row);
                        weights.push(1.0);
                    } else if rng.random::<f64>() < 0.01 {
                        idx.push(row);
                        weights.push(100.0);
                    }
                }
                black_box((data.take(&idx), weights))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Inserts per capacity-sweep iteration; fixed across capacities so ns/iter
/// is directly comparable (flat ns/iter = insert cost independent of
/// capacity). Keys are all distinct (`#groups = 128k ≫ capacity`), so every
/// insert past the fill phase evicts — the worst case for the min-scan
/// baseline and exactly the regime the δ coverage guarantee targets.
const SWEEP_INSERTS: u64 = 131_072;
const SWEEP_CAPACITIES: [usize; 3] = [256, 4_096, 65_536];

fn bench_spacesaving_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("spacesaving");
    for &cap in &SWEEP_CAPACITIES {
        group.bench_function(format!("streamsummary_insert_128k_cap{cap}"), |b| {
            b.iter_batched(
                || SpaceSaving::<Vec<u8>>::new(cap),
                |mut ss| {
                    for i in 0..SWEEP_INSERTS {
                        ss.insert(i.to_le_bytes().as_slice());
                    }
                    black_box(ss.total())
                },
                BatchSize::SmallInput,
            )
        });
    }
    // The PR 2 min-scan implementation, kept in-tree as the recorded
    // baseline: O(capacity) per eviction, so ns/iter grows linearly with
    // capacity on the same stream. Re-measuring the frozen reference costs
    // ~2 minutes at capacity 64k (~51 s/iter plus calibration), so it is
    // opt-in — the checked-in baseline entries were recorded with
    // `TASTER_SWEEP_MINSCAN=1`.
    if std::env::var_os("TASTER_SWEEP_MINSCAN").is_none() {
        group.finish();
        return;
    }
    for &cap in &SWEEP_CAPACITIES {
        group.bench_function(format!("minscan_insert_128k_cap{cap}"), |b| {
            b.iter_batched(
                || MinScanSpaceSaving::<Vec<u8>>::new(cap),
                |mut ss| {
                    for i in 0..SWEEP_INSERTS {
                        ss.insert(i.to_le_bytes().as_slice());
                    }
                    black_box(ss.total())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

const PROBE_ROWS: usize = 1_000_000;
const BUILD_ROWS: usize = 10_000;

fn bench_join(c: &mut Criterion) {
    let probe = BatchBuilder::new()
        .column(
            "p_k",
            (0..PROBE_ROWS as i64)
                .map(|i| i % BUILD_ROWS as i64)
                .collect::<Vec<_>>(),
        )
        .column(
            "p_v",
            (0..PROBE_ROWS).map(|i| i as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    let build = BatchBuilder::new()
        .column("b_k", (0..BUILD_ROWS as i64).collect::<Vec<_>>())
        .column(
            "b_v",
            (0..BUILD_ROWS).map(|i| i as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    let lk = ["p_k".to_string()];
    let rk = ["b_k".to_string()];

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("hash_join");
    group.bench_function("probe_serial_1m", |b| {
        b.iter(|| {
            black_box(
                hash_join_with_threads(&probe, &build, &lk, &rk, 1)
                    .unwrap()
                    .num_rows(),
            )
        })
    });
    group.bench_function("probe_parallel_1m", |b| {
        b.iter(|| {
            black_box(
                hash_join_with_threads(&probe, &build, &lk, &rk, threads)
                    .unwrap()
                    .num_rows(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sampler, bench_spacesaving_sweep, bench_join);
criterion_main!(benches);
