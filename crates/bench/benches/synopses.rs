//! Criterion micro-benchmarks of the synopsis data structures: the building
//! blocks whose per-tuple cost determines whether online approximation can
//! ever pay off (Section II's pipelineability requirement).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use taster_storage::batch::BatchBuilder;
use taster_storage::Value;
use taster_synopses::distinct::{DistinctSampler, DistinctSamplerConfig};
use taster_synopses::{CountMinSketch, SketchJoin, SpaceSaving, UniformSampler};

fn batch(n: usize) -> taster_storage::RecordBatch {
    BatchBuilder::new()
        .column("k", (0..n as i64).map(|i| i % 1000).collect::<Vec<_>>())
        .column("v", (0..n).map(|i| (i % 97) as f64).collect::<Vec<_>>())
        .build()
        .unwrap()
}

fn bench_countmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("countmin");
    group.bench_function("insert_100k", |b| {
        b.iter_batched(
            || CountMinSketch::with_error(0.001, 0.01),
            |mut cm| {
                for i in 0..100_000i64 {
                    cm.insert(&Value::Int(i % 5_000));
                }
                black_box(cm)
            },
            BatchSize::SmallInput,
        )
    });
    let mut cm = CountMinSketch::with_error(0.001, 0.01);
    for i in 0..100_000i64 {
        cm.insert(&Value::Int(i % 5_000));
    }
    group.bench_function("estimate", |b| {
        b.iter(|| black_box(cm.estimate(&Value::Int(black_box(1234)))))
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    let data = batch(100_000);
    group.bench_function("uniform_p01_100k", |b| {
        b.iter_batched(
            || UniformSampler::new(0.01, 7),
            |mut s| black_box(s.sample_batch(&data)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("distinct_100k", |b| {
        b.iter_batched(
            || {
                DistinctSampler::new(
                    DistinctSamplerConfig::new(vec!["k".into()], 10, 0.01),
                    7,
                )
            },
            |mut s| black_box(s.sample_batch(&data).unwrap()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_sketch_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_join");
    let data = batch(100_000);
    group.bench_function("build_100k", |b| {
        b.iter(|| {
            black_box(
                SketchJoin::build(
                    std::slice::from_ref(&data),
                    vec!["k".into()],
                    Some("v".into()),
                    0.001,
                    0.01,
                )
                .unwrap(),
            )
        })
    });
    let sj = SketchJoin::build(
        std::slice::from_ref(&data),
        vec!["k".into()],
        Some("v".into()),
        0.001,
        0.01,
    )
    .unwrap();
    group.bench_function("probe", |b| {
        b.iter(|| black_box(sj.probe(&[Value::Int(black_box(123))])))
    });
    group.finish();
}

fn bench_heavy_hitters(c: &mut Criterion) {
    c.bench_function("spacesaving_insert_100k", |b| {
        b.iter_batched(
            || SpaceSaving::new(4_096),
            |mut ss| {
                for i in 0..100_000i64 {
                    ss.insert(&Value::Int(i % 10_000));
                }
                black_box(ss)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_countmin,
    bench_samplers,
    bench_sketch_join,
    bench_heavy_hitters
);
criterion_main!(benches);
