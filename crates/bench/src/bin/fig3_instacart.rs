//! Figure 3c — end-to-end execution time on the instacart micro-benchmark
//! (Table I templates, 200 queries, 50% storage budget).

use taster_bench::{print_end_to_end, run_baseline, run_blinkdb, run_quickr, run_taster};
use taster_workloads::{instacart, random_sequence};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let num_queries = env_usize("TASTER_BENCH_QUERIES", 200);
    let rows = env_usize("TASTER_BENCH_ROWS", 40_000);
    let catalog = instacart::generate(instacart::InstacartScale {
        orderproducts_rows: rows,
        partitions: 8,
        seed: 11,
    });
    let queries = random_sequence(&instacart::workload(), num_queries, 909);
    println!(
        "instacart workload (Table I templates): {} queries over {} orderproducts rows",
        queries.len(),
        rows
    );

    let baseline = run_baseline(catalog.clone(), &queries);
    let quickr = run_quickr(catalog.clone(), &queries);
    let blinkdb50 = run_blinkdb(catalog.clone(), &queries, 0.5);
    let (taster50, engine) = run_taster(catalog, &queries, 0.5);

    print_end_to_end(
        "Fig. 3c — instacart end-to-end execution time (simulated seconds)",
        &[&baseline, &quickr, &blinkdb50, &taster50],
    );
    println!(
        "\nTaster materialized {} synopses ({} in warehouse) — the sketch-heavy templates \
         are what the paper credits for the instacart speed-up.",
        engine.metadata().num_synopses(),
        engine.store().usage().warehouse_count
    );
}
