//! Figure 3b — end-to-end execution time on the TPC-DS-like workload
//! (200 queries, 50% storage budget, as in the paper).

use taster_bench::{print_end_to_end, run_baseline, run_blinkdb, run_quickr, run_taster};
use taster_workloads::{random_sequence, tpcds};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let num_queries = env_usize("TASTER_BENCH_QUERIES", 200);
    let rows = env_usize("TASTER_BENCH_ROWS", 50_000);
    let catalog = tpcds::generate(tpcds::TpcdsScale {
        store_sales_rows: rows,
        partitions: 8,
        seed: 7,
    });
    let queries = random_sequence(&tpcds::workload(), num_queries, 777);
    println!(
        "TPC-DS-like workload: {} queries over {} store_sales rows",
        queries.len(),
        rows
    );

    let baseline = run_baseline(catalog.clone(), &queries);
    let quickr = run_quickr(catalog.clone(), &queries);
    let blinkdb50 = run_blinkdb(catalog.clone(), &queries, 0.5);
    let (taster50, _) = run_taster(catalog, &queries, 0.5);

    print_end_to_end(
        "Fig. 3b — TPC-DS end-to-end execution time (simulated seconds)",
        &[&baseline, &quickr, &blinkdb50, &taster50],
    );
}
