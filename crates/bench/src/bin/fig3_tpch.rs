//! Figure 3a — end-to-end execution time on the TPC-H-like workload.
//!
//! 200 queries instantiated from the 18 templates in random order, executed
//! by Baseline, Quickr, BlinkDB (50% / 100% budget) and Taster (50% / 100%
//! budget). BlinkDB's offline sampling time is reported separately, exactly
//! as in the paper's stacked bars.
//!
//! Environment variables: `TASTER_BENCH_QUERIES` (default 200) and
//! `TASTER_BENCH_ROWS` (default 60000) shrink the experiment for quick runs.

use taster_bench::{print_end_to_end, run_baseline, run_blinkdb, run_quickr, run_taster};
use taster_workloads::{random_sequence, tpch};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let num_queries = env_usize("TASTER_BENCH_QUERIES", 200);
    let rows = env_usize("TASTER_BENCH_ROWS", 60_000);
    let catalog = tpch::generate(tpch::TpchScale {
        lineitem_rows: rows,
        partitions: 8,
        seed: 42,
    });
    let queries = random_sequence(&tpch::workload(), num_queries, 2024);
    println!(
        "TPC-H-like workload: {} queries over {} lineitem rows ({} MB total)",
        queries.len(),
        rows,
        catalog.total_size_bytes() / (1 << 20)
    );

    let baseline = run_baseline(catalog.clone(), &queries);
    let quickr = run_quickr(catalog.clone(), &queries);
    let blinkdb50 = run_blinkdb(catalog.clone(), &queries, 0.5);
    let blinkdb100 = run_blinkdb(catalog.clone(), &queries, 1.0);
    let (taster50, _) = run_taster(catalog.clone(), &queries, 0.5);
    let (taster100, _) = run_taster(catalog, &queries, 1.0);

    print_end_to_end(
        "Fig. 3a — TPC-H end-to-end execution time (simulated seconds)",
        &[&baseline, &quickr, &blinkdb50, &taster50, &blinkdb100, &taster100],
    );

    let t50 = taster50.total_secs();
    let t100 = taster100.total_secs();
    println!(
        "\nTaster 50% vs 100% budget difference: {:.1}% (paper: <10%)",
        (t50 - t100).abs() / t100.max(1e-9) * 100.0
    );
}
