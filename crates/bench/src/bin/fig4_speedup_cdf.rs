//! Figure 4 — CDF of per-query speed-up of Taster over Baseline (TPC-H).

use taster_bench::{cdf, print_cdf, run_baseline, run_taster, speedups};
use taster_workloads::{random_sequence, tpch};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let num_queries = env_usize("TASTER_BENCH_QUERIES", 200);
    let rows = env_usize("TASTER_BENCH_ROWS", 60_000);
    let catalog = tpch::generate(tpch::TpchScale {
        lineitem_rows: rows,
        partitions: 8,
        seed: 42,
    });
    let queries = random_sequence(&tpch::workload(), num_queries, 2024);

    let baseline = run_baseline(catalog.clone(), &queries);
    let (taster, _) = run_taster(catalog, &queries, 0.5);
    let ups = speedups(&baseline, &taster);

    print_cdf("Fig. 4 — CDF of per-query speed-up over Baseline", &cdf(&ups), 25);

    let slowed = ups.iter().filter(|&&s| s < 1.0).count() as f64 / ups.len() as f64;
    let over6 = ups.iter().filter(|&&s| s > 6.0).count() as f64 / ups.len() as f64;
    let max = ups.iter().cloned().fold(0.0f64, f64::max);
    println!("\nqueries slowed down: {:.1}% (paper: <10%)", slowed * 100.0);
    println!("queries sped up >6x: {:.1}% (paper: >50%)", over6 * 100.0);
    println!("maximum speed-up:    {max:.1}x (paper: ~13x, via sketches)");
}
