//! Figure 5 — CDF of the observed aggregation error of Taster on TPC-H.
//!
//! All queries request "ERROR WITHIN 10% AT CONFIDENCE 95%" and no missing
//! groups; the paper reports ≥93% of queries within 10% error, everything
//! within 12%, and zero missed groups.

use taster_bench::{cdf, errors_vs_exact, print_cdf, run_baseline, run_taster};
use taster_workloads::{random_sequence, tpch};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let num_queries = env_usize("TASTER_BENCH_QUERIES", 200);
    let rows = env_usize("TASTER_BENCH_ROWS", 60_000);
    let catalog = tpch::generate(tpch::TpchScale {
        lineitem_rows: rows,
        partitions: 8,
        seed: 42,
    });
    let queries = random_sequence(&tpch::workload(), num_queries, 2024);

    let baseline = run_baseline(catalog.clone(), &queries);
    let (taster, _) = run_taster(catalog, &queries, 0.5);
    let (errors, queries_with_missing) = errors_vs_exact(&baseline, &taster);

    print_cdf(
        "Fig. 5 — CDF of observed per-query max relative error",
        &cdf(&errors),
        25,
    );

    let within10 = errors.iter().filter(|&&e| e <= 0.10).count() as f64 / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0f64, f64::max);
    println!("\nqueries with error <= 10%: {:.1}% (paper: >93%)", within10 * 100.0);
    println!("maximum observed error:    {:.1}% (paper: <12%)", max * 100.0);
    println!("queries missing groups:    {queries_with_missing} (paper: 0)");
}
