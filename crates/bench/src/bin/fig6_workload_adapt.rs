//! Figure 6 — Taster adapting to a shifting workload.
//!
//! 80 TPC-H queries split into 4 epochs of 20 (the template groups of
//! Section VI-B). For every query the harness reports the simulated
//! execution time and the synopsis warehouse occupancy, showing synopses
//! being dropped and rebuilt as the workload shifts.

use taster_bench::run_taster;
use taster_workloads::{epoch_sequence, tpch};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let rows = env_usize("TASTER_BENCH_ROWS", 60_000);
    let per_epoch = env_usize("TASTER_BENCH_PER_EPOCH", 20);
    let catalog = tpch::generate(tpch::TpchScale {
        lineitem_rows: rows,
        partitions: 8,
        seed: 42,
    });
    let workload = tpch::workload();
    let epochs = tpch::fig6_epochs();
    let queries = epoch_sequence(&workload, &epochs, per_epoch, 606);

    println!(
        "Fig. 6 — {} queries in {} epochs (templates per epoch: {:?})",
        queries.len(),
        epochs.len(),
        epochs
    );
    println!(
        "{:<6} {:<10} {:<10} {:>16} {:>20}",
        "query", "epoch", "template", "exec time (s)", "warehouse (MB)"
    );

    // Execute query-by-query so warehouse occupancy can be sampled after each
    // one; run_taster would hide the trajectory.
    let config = taster_core::TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 0.5);
    let engine = taster_core::TasterEngine::new(catalog, config);
    for (i, q) in queries.iter().enumerate() {
        let report = engine.execute_sql(&q.sql).expect("query failed");
        let usage = engine.store().usage();
        println!(
            "{:<6} {:<10} {:<10} {:>16.3} {:>20.2}",
            i + 1,
            i / per_epoch + 1,
            q.template_id,
            report.simulated_secs,
            (usage.warehouse_bytes + usage.buffer_bytes) as f64 / (1 << 20) as f64
        );
    }

    // A compact epoch summary mirrors the figure's visual take-away.
    let (run, engine) = {
        let catalog = tpch::generate(tpch::TpchScale {
            lineitem_rows: rows,
            partitions: 8,
            seed: 42,
        });
        run_taster(catalog, &queries, 0.5)
    };
    println!("\nper-epoch mean execution time (s):");
    for e in 0..epochs.len() {
        let slice = &run.queries[e * per_epoch..(e + 1) * per_epoch];
        let first_half: f64 = slice[..per_epoch / 2]
            .iter()
            .map(|q| q.simulated_secs)
            .sum::<f64>()
            / (per_epoch / 2) as f64;
        let second_half: f64 = slice[per_epoch / 2..]
            .iter()
            .map(|q| q.simulated_secs)
            .sum::<f64>()
            / (per_epoch - per_epoch / 2) as f64;
        println!(
            "  epoch {}: first half {:.3}s, second half {:.3}s (adaptation => second half should be faster)",
            e + 1,
            first_half,
            second_half
        );
    }
    println!(
        "synopses registered over the run: {}, currently materialized: {}",
        engine.metadata().num_synopses(),
        engine.store().materialized_ids().len()
    );
}
