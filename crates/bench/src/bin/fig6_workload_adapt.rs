//! Figure 6 — Taster adapting to a shifting workload, now with the data
//! shifting underneath it too.
//!
//! 80 TPC-H queries split into 4 epochs of 20 (the template groups of
//! Section VI-B). For every query the harness reports the simulated
//! execution time and the synopsis warehouse occupancy, showing synopses
//! being dropped and rebuilt as the workload shifts.
//!
//! **Data-growth phase:** at every epoch boundary the `lineitem` table grows
//! by `TASTER_BENCH_GROWTH` (default 25%) of its current rows via
//! `Table::append` — the online-ingestion scenario of the paper. Materialized
//! synopses go stale, the staleness-bounded matcher stops reusing them, and
//! the tuner's refresh action absorbs the appended rows incrementally; the
//! trace shows table size, staleness-driven refreshes and warehouse occupancy
//! evolving together.

use taster_bench::run_taster;
use taster_workloads::{epoch_sequence, tpch};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let rows = env_usize("TASTER_BENCH_ROWS", 60_000);
    let per_epoch = env_usize("TASTER_BENCH_PER_EPOCH", 20);
    let growth = env_f64("TASTER_BENCH_GROWTH", 0.25);
    let scale = tpch::TpchScale {
        lineitem_rows: rows,
        partitions: 8,
        seed: 42,
    };
    let catalog = tpch::generate(scale);
    let workload = tpch::workload();
    let epochs = tpch::fig6_epochs();
    let queries = epoch_sequence(&workload, &epochs, per_epoch, 606);

    println!(
        "Fig. 6 — {} queries in {} epochs (templates per epoch: {:?}); lineitem grows {:.0}% per epoch boundary",
        queries.len(),
        epochs.len(),
        epochs,
        growth * 100.0
    );
    println!(
        "{:<6} {:<10} {:<10} {:>16} {:>20} {:>14} {:>10}",
        "query", "epoch", "template", "exec time (s)", "warehouse (MB)", "lineitem rows", "refreshes"
    );

    // Execute query-by-query so warehouse occupancy can be sampled after each
    // one; run_taster would hide the trajectory.
    let config = taster_core::TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 0.5);
    let engine = taster_core::TasterEngine::new(catalog.clone(), config);
    for (i, q) in queries.iter().enumerate() {
        // Data-growth phase at every epoch boundary: append fresh lineitem
        // rows (same distributions as the seed data) and let the engine's
        // staleness machinery react on the following queries.
        if i > 0 && i % per_epoch == 0 {
            let lineitem = catalog.table("lineitem").expect("registered");
            // Row counts come from the live table stats — they already
            // include earlier growth phases.
            let current = lineitem.stats().row_count;
            let add = (current as f64 * growth) as usize;
            let delta = tpch::lineitem_growth_batch(&scale, add, i as u64);
            let report = lineitem.append(&delta).expect("append");
            println!(
                "-- growth phase before epoch {}: +{} rows (v{}), lineitem now {} rows",
                i / per_epoch + 1,
                report.rows,
                report.version,
                lineitem.stats().row_count
            );
        }
        let report = engine.execute_sql(&q.sql).expect("query failed");
        let usage = engine.store().usage();
        println!(
            "{:<6} {:<10} {:<10} {:>16.3} {:>20.2} {:>14} {:>10}",
            i + 1,
            i / per_epoch + 1,
            q.template_id,
            report.simulated_secs,
            (usage.warehouse_bytes + usage.buffer_bytes) as f64 / (1 << 20) as f64,
            catalog.table("lineitem").unwrap().stats().row_count,
            engine.synopsis_refreshes()
        );
    }
    println!(
        "ingestion totals: lineitem rows {}, snapshot version {}, synopsis refreshes {}",
        catalog.table("lineitem").unwrap().stats().row_count,
        catalog.table("lineitem").unwrap().version(),
        engine.synopsis_refreshes()
    );

    // A compact epoch summary mirrors the figure's visual take-away (static
    // data here, so adaptation is attributable to the workload shift alone).
    let (run, engine) = {
        let catalog = tpch::generate(tpch::TpchScale {
            lineitem_rows: rows,
            partitions: 8,
            seed: 42,
        });
        run_taster(catalog, &queries, 0.5)
    };
    println!("\nper-epoch mean execution time (s), static-data reference run:");
    for e in 0..epochs.len() {
        let slice = &run.queries[e * per_epoch..(e + 1) * per_epoch];
        let first_half: f64 = slice[..per_epoch / 2]
            .iter()
            .map(|q| q.simulated_secs)
            .sum::<f64>()
            / (per_epoch / 2) as f64;
        let second_half: f64 = slice[per_epoch / 2..]
            .iter()
            .map(|q| q.simulated_secs)
            .sum::<f64>()
            / (per_epoch - per_epoch / 2) as f64;
        println!(
            "  epoch {}: first half {:.3}s, second half {:.3}s (adaptation => second half should be faster)",
            e + 1,
            first_half,
            second_half
        );
    }
    println!(
        "synopses registered over the run: {}, currently materialized: {}",
        engine.metadata().num_synopses(),
        engine.store().materialized_ids().len()
    );
}
