//! Figure 7 — utilizing user hints (offline variational samples).
//!
//! Two TPC-H-like databases are queried with interleaved workloads: for
//! `dboff` the user pins VerdictDB-style variational samples of `lineitem`
//! offline; `dbonl` is handled fully online. The harness reports Baseline,
//! Taster without hints, and Taster + hints, splitting the hinted run into
//! offline sampling / scrambling / query execution as in the paper's stacked
//! bars.

use taster_bench::{run_baseline, run_taster};
use taster_core::hints::OfflineStrategy;
use taster_core::{TasterConfig, TasterEngine};
use taster_workloads::{random_sequence, tpch};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let rows = env_usize("TASTER_BENCH_ROWS", 60_000);
    let per_db = env_usize("TASTER_BENCH_QUERIES", 200) / 2;
    let dboff = tpch::generate(tpch::TpchScale {
        lineitem_rows: rows,
        partitions: 8,
        seed: 42,
    });
    let dbonl = tpch::generate(tpch::TpchScale {
        lineitem_rows: rows,
        partitions: 8,
        seed: 43,
    });
    let workload = tpch::workload();
    let q_off = random_sequence(&workload, per_db, 71);
    let q_onl = random_sequence(&workload, per_db, 72);

    // Baseline over both databases.
    let base_off = run_baseline(dboff.clone(), &q_off);
    let base_onl = run_baseline(dbonl.clone(), &q_onl);
    let baseline_total = base_off.total_secs() + base_onl.total_secs();

    // Taster without hints over both databases.
    let (t_off, _) = run_taster(dboff.clone(), &q_off, 0.5);
    let (t_onl, _) = run_taster(dbonl.clone(), &q_onl, 0.5);
    let taster_total = t_off.total_secs() + t_onl.total_secs();

    // Taster + hints: dboff gets a pinned variational sample of lineitem.
    let config = TasterConfig::with_budget_fraction(dboff.total_size_bytes(), 0.5);
    let hinted = TasterEngine::new(dboff, config);
    let report = hinted
        .add_offline_hint("lineitem", OfflineStrategy::Variational { fraction: 0.02 }, None)
        .expect("offline hint failed");
    let mut hinted_query_secs = 0.0;
    let mut dboff_secs = 0.0;
    for q in &q_off {
        let r = hinted.execute_sql(&q.sql).expect("hinted query failed");
        hinted_query_secs += r.simulated_secs;
        dboff_secs += r.simulated_secs;
    }
    let (t_onl2, _) = run_taster(dbonl, &q_onl, 0.5);
    hinted_query_secs += t_onl2.total_secs();

    println!("Fig. 7 — performance with user hints (simulated seconds)");
    println!("{:<18} {:>12} {:>12} {:>14} {:>10}", "system", "offline", "scramble", "query exec", "total");
    println!(
        "{:<18} {:>12.1} {:>12.1} {:>14.1} {:>10.1}",
        "Baseline", 0.0, 0.0, baseline_total, baseline_total
    );
    println!(
        "{:<18} {:>12.1} {:>12.1} {:>14.1} {:>10.1}",
        "Taster", 0.0, 0.0, taster_total, taster_total
    );
    // The offline report lumps scan+scramble+materialize; split the scramble
    // share out proportionally to the rows it touched.
    let scramble_share = if report.rows_scanned + report.rows_scrambled > 0 {
        report.rows_scrambled as f64 / (report.rows_scanned + report.rows_scrambled) as f64
    } else {
        0.0
    };
    let scramble_secs = report.simulated_secs * scramble_share;
    let offline_secs = report.simulated_secs - scramble_secs;
    println!(
        "{:<18} {:>12.1} {:>12.1} {:>14.1} {:>10.1}",
        "Taster + hints",
        offline_secs,
        scramble_secs,
        hinted_query_secs,
        report.simulated_secs + hinted_query_secs
    );

    let speedup_all = baseline_total / (report.simulated_secs + hinted_query_secs);
    let base_off_total = base_off.total_secs();
    let speedup_dboff = base_off_total / dboff_secs.max(1e-9);
    println!("\naverage speed-up over Baseline (all queries):   {speedup_all:.1}x (paper: 12.6x)");
    println!("speed-up on the hinted database (dboff) only:    {speedup_dboff:.1}x (paper: 20.4x)");
}
