//! Figure 8 — varying the tuner's horizon (sliding window length).
//!
//! The same 200-query TPC-H sequence is executed with three static window
//! configurations (w = 5, 10, 50) and with the adaptive window. The paper
//! observes the adaptive configuration beating every static one, with w
//! fluctuating between 12 and 17.

use taster_bench::run_taster_with_config;
use taster_core::TasterConfig;
use taster_workloads::{random_sequence, tpch};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let num_queries = env_usize("TASTER_BENCH_QUERIES", 200);
    let rows = env_usize("TASTER_BENCH_ROWS", 60_000);
    let queries = random_sequence(&tpch::workload(), num_queries, 888);

    // Report the dataset scale from the live table statistics, not from the
    // requested row count: the generator clamps small scales, and tables can
    // grow after load, so the stats are the only number guaranteed correct.
    {
        let catalog = tpch::generate(tpch::TpchScale {
            lineitem_rows: rows,
            partitions: 8,
            seed: 42,
        });
        let li = catalog.table("lineitem").expect("registered");
        println!(
            "Fig. 8 — cumulative execution time vs tuner window configuration ({} lineitem rows per run, from Table stats)",
            li.stats().row_count
        );
    }
    println!("{:<18} {:>20}", "configuration", "execution time (s)");

    let mut results = Vec::new();
    for w in [5usize, 10, 50] {
        let catalog = tpch::generate(tpch::TpchScale {
            lineitem_rows: rows,
            partitions: 8,
            seed: 42,
        });
        let config = TasterConfig {
            initial_window: w,
            adaptive_window: false,
            ..TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 0.5)
        };
        let (run, _) = run_taster_with_config(catalog, &queries, config, format!("window {w}"));
        println!("{:<18} {:>20.1}", run.label, run.total_secs());
        results.push((run.label.clone(), run.total_secs()));
    }

    let catalog = tpch::generate(tpch::TpchScale {
        lineitem_rows: rows,
        partitions: 8,
        seed: 42,
    });
    let config = TasterConfig {
        initial_window: 5,
        adaptive_window: true,
        ..TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 0.5)
    };
    let (run, engine) =
        run_taster_with_config(catalog, &queries, config, "adaptive window".to_string());
    println!("{:<18} {:>20.1}", run.label, run.total_secs());
    results.push((run.label.clone(), run.total_secs()));

    println!(
        "\nadaptive window trajectory: {:?} (paper: fluctuates between 12 and 17, never converges)",
        engine.window_history()
    );
    let best_static = results[..3]
        .iter()
        .map(|(_, t)| *t)
        .fold(f64::INFINITY, f64::min);
    println!(
        "adaptive vs best static window: {:.2}x (paper: adaptive wins, >1.5x vs a badly fixed w)",
        best_static / results[3].1.max(1e-9)
    );
}
