//! Figure 9 — storage elasticity: average speed-up as the warehouse quota is
//! changed at runtime (20% → 50% → 100% → 50% → 100% of the dataset size)
//! over a 250-query TPC-H sequence.

use taster_bench::run_baseline;
use taster_core::{TasterConfig, TasterEngine};
use taster_workloads::{random_sequence, tpch};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let num_queries = env_usize("TASTER_BENCH_QUERIES", 250);
    let rows = env_usize("TASTER_BENCH_ROWS", 60_000);
    let catalog = tpch::generate(tpch::TpchScale {
        lineitem_rows: rows,
        partitions: 8,
        seed: 42,
    });
    let queries = random_sequence(&tpch::workload(), num_queries, 999);
    let phases = [0.2, 0.5, 1.0, 0.5, 1.0];
    let per_phase = queries.len() / phases.len();

    // Baseline reference for the same queries.
    let baseline = run_baseline(catalog.clone(), &queries);

    let dataset_bytes = catalog.total_size_bytes();
    let config = TasterConfig::with_budget_fraction(dataset_bytes, phases[0]);
    let engine = TasterEngine::new(catalog, config);

    println!("Fig. 9 — average speed-up over Baseline while the storage budget changes");
    println!("{:<16} {:>18} {:>22}", "storage budget", "avg speedup", "warehouse used (MB)");
    for (p, &fraction) in phases.iter().enumerate() {
        engine.set_storage_budget((dataset_bytes as f64 * fraction) as usize);
        let slice = &queries[p * per_phase..(p + 1) * per_phase];
        let base_slice = &baseline.queries[p * per_phase..(p + 1) * per_phase];
        let mut speedups = Vec::with_capacity(slice.len());
        for (q, b) in slice.iter().zip(base_slice) {
            let r = engine.execute_sql(&q.sql).expect("query failed");
            speedups.push(b.simulated_secs / r.simulated_secs.max(1e-12));
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let usage = engine.store().usage();
        println!(
            "{:<16} {:>17.2}x {:>22.2}",
            format!("{:.0}%", fraction * 100.0),
            avg,
            usage.warehouse_bytes as f64 / (1 << 20) as f64
        );
    }
}
