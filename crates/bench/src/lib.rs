//! Shared benchmark harness used by the `fig*` binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (Section VI). The harness runs a query sequence through each
//! system (Baseline, Quickr, BlinkDB, Taster) over the *same* catalog and
//! I/O model and reports simulated execution time — the measured wall-clock
//! of the in-memory reproduction is also tracked, but the simulated time is
//! what preserves the shape of the paper's cluster numbers (see
//! `taster_storage::io_model`).

use std::sync::Arc;
use std::time::Instant;

use taster_baselines::{BaselineEngine, BlinkDbEngine, QuickrEngine};
use taster_core::{TasterConfig, TasterEngine};
use taster_engine::QueryResult;
use taster_storage::Catalog;
use taster_workloads::QueryInstance;

/// Per-query measurement.
#[derive(Debug, Clone)]
pub struct PerQuery {
    /// Template the query came from.
    pub template_id: String,
    /// Simulated execution time (seconds).
    pub simulated_secs: f64,
    /// Wall-clock execution time of the reproduction (seconds).
    pub wall_secs: f64,
    /// Whether the query was answered approximately.
    pub approximate: bool,
    /// The result, kept so accuracy figures can compare against exact runs.
    pub result: QueryResult,
}

/// A full run of one system over a query sequence.
#[derive(Debug)]
pub struct SystemRun {
    /// System label ("Baseline", "Quickr", "Taster (50%)", ...).
    pub label: String,
    /// Simulated time spent in any offline phase (seconds).
    pub offline_secs: f64,
    /// Per-query measurements.
    pub queries: Vec<PerQuery>,
}

impl SystemRun {
    /// Total simulated query-execution time in seconds.
    pub fn query_secs(&self) -> f64 {
        self.queries.iter().map(|q| q.simulated_secs).sum()
    }

    /// Total simulated end-to-end time (offline + queries).
    pub fn total_secs(&self) -> f64 {
        self.offline_secs + self.query_secs()
    }

    /// Total wall-clock time of the reproduction run.
    pub fn wall_secs(&self) -> f64 {
        self.queries.iter().map(|q| q.wall_secs).sum()
    }
}

/// Run the exact baseline over a sequence.
pub fn run_baseline(catalog: Arc<Catalog>, queries: &[QueryInstance]) -> SystemRun {
    let engine = BaselineEngine::new(catalog);
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        let start = Instant::now();
        let report = engine
            .execute_sql(&q.sql)
            .unwrap_or_else(|e| panic!("baseline failed on {}: {e}", q.sql));
        out.push(PerQuery {
            template_id: q.template_id.clone(),
            simulated_secs: report.simulated_secs,
            wall_secs: start.elapsed().as_secs_f64(),
            approximate: report.approximate,
            result: report.result,
        });
    }
    SystemRun {
        label: "Baseline".into(),
        offline_secs: 0.0,
        queries: out,
    }
}

/// Run the Quickr-style online AQP engine over a sequence.
pub fn run_quickr(catalog: Arc<Catalog>, queries: &[QueryInstance]) -> SystemRun {
    let mut engine = QuickrEngine::new(catalog);
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        let start = Instant::now();
        let report = engine
            .execute_sql(&q.sql)
            .unwrap_or_else(|e| panic!("quickr failed on {}: {e}", q.sql));
        out.push(PerQuery {
            template_id: q.template_id.clone(),
            simulated_secs: report.simulated_secs,
            wall_secs: start.elapsed().as_secs_f64(),
            approximate: report.approximate,
            result: report.result,
        });
    }
    SystemRun {
        label: "Quickr".into(),
        offline_secs: 0.0,
        queries: out,
    }
}

/// Run the BlinkDB-style offline AQP engine (oracle workload knowledge) over
/// a sequence, with a storage budget expressed as a fraction of the dataset.
pub fn run_blinkdb(
    catalog: Arc<Catalog>,
    queries: &[QueryInstance],
    budget_fraction: f64,
) -> SystemRun {
    let budget = (catalog.total_size_bytes() as f64 * budget_fraction) as usize;
    let oracle: Vec<String> = queries.iter().map(|q| q.sql.clone()).collect();
    let engine = BlinkDbEngine::prepare(catalog, &oracle, budget, 300)
        .expect("BlinkDB offline phase failed");
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        let start = Instant::now();
        let report = engine
            .execute_sql(&q.sql)
            .unwrap_or_else(|e| panic!("blinkdb failed on {}: {e}", q.sql));
        out.push(PerQuery {
            template_id: q.template_id.clone(),
            simulated_secs: report.simulated_secs,
            wall_secs: start.elapsed().as_secs_f64(),
            approximate: report.approximate,
            result: report.result,
        });
    }
    SystemRun {
        label: format!("BlinkDB ({:.0}%)", budget_fraction * 100.0),
        offline_secs: engine.offline_report().simulated_secs,
        queries: out,
    }
}

/// Run Taster over a sequence with a storage budget expressed as a fraction
/// of the dataset size. Returns both the run and the engine (so callers can
/// inspect warehouse usage, window history, ...).
pub fn run_taster(
    catalog: Arc<Catalog>,
    queries: &[QueryInstance],
    budget_fraction: f64,
) -> (SystemRun, TasterEngine) {
    let config = TasterConfig::with_budget_fraction(catalog.total_size_bytes(), budget_fraction);
    run_taster_with_config(catalog, queries, config, format!(
        "Taster ({:.0}%)",
        budget_fraction * 100.0
    ))
}

/// Run Taster with an explicit configuration.
pub fn run_taster_with_config(
    catalog: Arc<Catalog>,
    queries: &[QueryInstance],
    config: TasterConfig,
    label: String,
) -> (SystemRun, TasterEngine) {
    let engine = TasterEngine::new(catalog, config);
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        let start = Instant::now();
        let report = engine
            .execute_sql(&q.sql)
            .unwrap_or_else(|e| panic!("taster failed on {}: {e}", q.sql));
        out.push(PerQuery {
            template_id: q.template_id.clone(),
            simulated_secs: report.simulated_secs,
            wall_secs: start.elapsed().as_secs_f64(),
            approximate: report.approximate,
            result: report.result,
        });
    }
    (
        SystemRun {
            label,
            offline_secs: 0.0,
            queries: out,
        },
        engine,
    )
}

/// Per-query speed-ups of `system` over `baseline` (aligned by position).
pub fn speedups(baseline: &SystemRun, system: &SystemRun) -> Vec<f64> {
    baseline
        .queries
        .iter()
        .zip(&system.queries)
        .map(|(b, s)| b.simulated_secs / s.simulated_secs.max(1e-12))
        .collect()
}

/// Per-query maximum relative error of `system` against the exact `baseline`,
/// plus the number of queries that missed at least one group.
pub fn errors_vs_exact(baseline: &SystemRun, system: &SystemRun) -> (Vec<f64>, usize) {
    let mut errors = Vec::with_capacity(system.queries.len());
    let mut queries_with_missing = 0;
    for (b, s) in baseline.queries.iter().zip(&system.queries) {
        let (err, missed) = s.result.error_vs(&b.result);
        if missed > 0 {
            queries_with_missing += 1;
        }
        errors.push(err);
    }
    (errors, queries_with_missing)
}

/// Empirical CDF points `(value, fraction ≤ value)` of a set of samples.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len().max(1) as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Print a Fig.3-style table: one row per system with offline and query time.
pub fn print_end_to_end(title: &str, runs: &[&SystemRun]) {
    println!("\n=== {title} ===");
    println!(
        "{:<16} {:>14} {:>16} {:>14} {:>10}",
        "system", "offline (s)", "query exec (s)", "total (s)", "speedup"
    );
    let baseline_total = runs
        .iter()
        .find(|r| r.label == "Baseline")
        .map(|r| r.total_secs())
        .unwrap_or(0.0);
    for run in runs {
        let total = run.total_secs();
        let speedup = if total > 0.0 { baseline_total / total } else { 0.0 };
        println!(
            "{:<16} {:>14.1} {:>16.1} {:>14.1} {:>9.2}x",
            run.label,
            run.offline_secs,
            run.query_secs(),
            total,
            speedup
        );
    }
}

/// Print a CDF as two columns.
pub fn print_cdf(title: &str, points: &[(f64, f64)], samples: usize) {
    println!("\n=== {title} ===");
    println!("{:<14} {:>8}", "value", "CDF");
    // Print a decimated view (at most `samples` rows) to keep output readable.
    let step = (points.len() / samples.max(1)).max(1);
    for (i, (v, p)) in points.iter().enumerate() {
        if i % step == 0 || i + 1 == points.len() {
            println!("{v:<14.4} {p:>8.3}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_workloads::{random_sequence, tpch};

    #[test]
    fn harness_runs_all_systems_on_a_tiny_workload() {
        let cat = tpch::generate(tpch::TpchScale {
            lineitem_rows: 4_000,
            partitions: 2,
            seed: 3,
        });
        let queries = random_sequence(&tpch::workload(), 6, 1);
        let baseline = run_baseline(cat.clone(), &queries);
        let quickr = run_quickr(cat.clone(), &queries);
        let blinkdb = run_blinkdb(cat.clone(), &queries, 0.5);
        let (taster, engine) = run_taster(cat, &queries, 0.5);

        assert_eq!(baseline.queries.len(), 6);
        assert!(baseline.total_secs() > 0.0);
        assert!(quickr.total_secs() > 0.0);
        // On this tiny 6-query oracle the stratified samples may not fit the
        // 50% budget at all, so only require that the offline phase ran and
        // produced a well-formed report.
        assert!(blinkdb.offline_secs >= 0.0);
        assert_eq!(blinkdb.queries.len(), 6);
        assert!(taster.offline_secs == 0.0);
        assert!(engine.queries_executed() == 6);

        let ups = speedups(&baseline, &taster);
        assert_eq!(ups.len(), 6);
        let (errs, _missed) = errors_vs_exact(&baseline, &taster);
        assert_eq!(errs.len(), 6);
        let c = cdf(&ups);
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}
