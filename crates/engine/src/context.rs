//! Execution context: catalog, cost model, synopsis provider and metrics.

use std::sync::Arc;

use taster_storage::{Catalog, IoModel};
use taster_synopses::sketch_join::SketchJoin;
use taster_synopses::WeightedSample;

use crate::shared_scan::SharedScanRegistry;

/// Mix a base seed with a per-query counter into a well-distributed sampler
/// seed (the splitmix64 finalizer). A concurrent engine hands out counter
/// values from an atomic, so each query gets its own decorrelated seed
/// stream regardless of which session thread runs it; a plain
/// `base ^ counter` would leave consecutive queries' seeds differing only in
/// their low bits.
///
/// ```
/// use taster_engine::context::mix_seed;
/// let a = mix_seed(0x7a57e1, 0);
/// let b = mix_seed(0x7a57e1, 1);
/// assert_ne!(a, b);
/// // Deterministic: the same (base, counter) always maps to the same seed.
/// assert_eq!(a, mix_seed(0x7a57e1, 0));
/// ```
pub fn mix_seed(base: u64, counter: u64) -> u64 {
    let mut z = base ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where a materialized synopsis currently lives. The executor charges reads
/// to the matching metric so the harness can convert them to simulated time
/// with the right bandwidth (in-memory buffer vs. persistent warehouse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynopsisLocation {
    /// The in-memory synopsis buffer (cheap to read).
    Buffer,
    /// The persistent synopsis warehouse (cheaper than a base scan, more
    /// expensive than the buffer).
    Warehouse,
}

/// Source of materialized synopses during execution.
///
/// The engine does not own the synopsis store — Taster's buffer/warehouse
/// (or a baseline's offline sample store) implements this trait and is handed
/// to the executor through the [`ExecutionContext`].
pub trait SynopsisProvider: Send + Sync {
    /// Resolve a materialized weighted sample by id.
    fn sample(&self, id: u64) -> Option<(Arc<WeightedSample>, SynopsisLocation)>;

    /// Resolve a materialized sketch-join by id.
    fn sketch(&self, id: u64) -> Option<(Arc<SketchJoin>, SynopsisLocation)>;
}

/// A provider with no materialized synopses (used by the exact baseline and
/// by unit tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptyProvider;

impl SynopsisProvider for EmptyProvider {
    fn sample(&self, _id: u64) -> Option<(Arc<WeightedSample>, SynopsisLocation)> {
        None
    }

    fn sketch(&self, _id: u64) -> Option<(Arc<SketchJoin>, SynopsisLocation)> {
        None
    }
}

/// Everything the executor needs besides the plan itself.
#[derive(Clone)]
pub struct ExecutionContext {
    /// The table catalog.
    pub catalog: Arc<Catalog>,
    /// The simulated I/O / cluster cost model.
    pub io_model: IoModel,
    /// Source of materialized synopses.
    pub provider: Arc<dyn SynopsisProvider>,
    /// Confidence level used when reporting per-group errors (e.g. 0.95).
    pub confidence: f64,
    /// Seed driving all samplers spawned by this execution (kept explicit so
    /// whole experiments are reproducible).
    pub seed: u64,
    /// Optional shared-scan registry: when present, zone-pruned morsel passes
    /// with identical `(table, snapshot version, filter, projection)` keys
    /// coalesce across concurrent executions (see
    /// [`crate::shared_scan`]). `None` runs every scan solo.
    pub shared_scans: Option<Arc<SharedScanRegistry>>,
}

impl ExecutionContext {
    /// A context over a catalog with no materialized synopses and default
    /// cost model.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self {
            catalog,
            io_model: IoModel::default(),
            provider: Arc::new(EmptyProvider),
            confidence: 0.95,
            seed: 0x7a57e5,
            shared_scans: None,
        }
    }

    /// Replace the synopsis provider.
    pub fn with_provider(mut self, provider: Arc<dyn SynopsisProvider>) -> Self {
        self.provider = provider;
        self
    }

    /// Replace the sampler seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the cost model.
    pub fn with_io_model(mut self, io_model: IoModel) -> Self {
        self.io_model = io_model;
        self
    }

    /// Attach a shared-scan registry so concurrent executions through this
    /// context coalesce identical morsel passes.
    pub fn with_shared_scans(mut self, registry: Arc<SharedScanRegistry>) -> Self {
        self.shared_scans = Some(registry);
        self
    }
}

impl std::fmt::Debug for ExecutionContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionContext")
            .field("tables", &self.catalog.table_names())
            .field("confidence", &self.confidence)
            .field("seed", &self.seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_provider_returns_nothing() {
        let p = EmptyProvider;
        assert!(p.sample(1).is_none());
        assert!(p.sketch(1).is_none());
    }

    #[test]
    fn context_builders() {
        let ctx = ExecutionContext::new(Arc::new(Catalog::new()))
            .with_seed(42)
            .with_io_model(IoModel::default());
        assert_eq!(ctx.seed, 42);
        assert_eq!(ctx.confidence, 0.95);
        assert!(format!("{ctx:?}").contains("ExecutionContext"));
    }
}
