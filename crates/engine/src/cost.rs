//! Cost model for logical plans.
//!
//! Both the exact planner and Taster's cost-based planner need to compare
//! candidate plans before executing them. Costs are expressed in nanoseconds
//! of *simulated* time under the [`taster_storage::IoModel`] — the same unit
//! the benchmark harness reports — so "cheapest plan" and "fastest measured
//! plan" agree in shape.
//!
//! Synopsis sizes are not derivable from the catalog (they live in Taster's
//! metadata store), so the estimator accepts a [`SynopsisCostHint`] per
//! synopsis id. Likewise, per-column frequency knowledge lives in synopses
//! (CountMin sketches, distinct samplers) owned by the Taster layer, so the
//! estimator pulls selectivities through the [`CardinalityProvider`] trait
//! instead of hard-coding textbook constants — the constants remain only as
//! the fallback when no synopsis covers a column.

use std::collections::HashMap;
use std::fmt;

use taster_storage::{Catalog, IoModel, Value};

use crate::context::SynopsisLocation;
use crate::error::EngineError;
use crate::expr::{mirror, BinaryOp, Expr};
use crate::logical::{AccessPath, LogicalPlan, SketchRef};

/// Synopsis-backed cardinality estimates consumed by the [`CostEstimator`].
///
/// Implementations answer from whatever summaries they hold — CountMin point
/// frequencies, quantile-style range fractions, distinct sketches — and
/// return `None` whenever a (table, column) pair is not covered, in which
/// case the estimator falls back to its textbook defaults. All fractions are
/// of the table's *current* row count.
pub trait CardinalityProvider: fmt::Debug {
    /// Estimated fraction of rows where `column = value`.
    fn point_selectivity(&self, table: &str, column: &str, value: &Value) -> Option<f64>;
    /// Estimated fraction of rows where `column <op> value` for a
    /// range comparison (`<`, `<=`, `>`, `>=`).
    fn range_selectivity(&self, table: &str, column: &str, op: BinaryOp, value: &Value)
        -> Option<f64>;
    /// Estimated number of distinct values in `column` (equality fanout).
    fn distinct_count(&self, table: &str, column: &str) -> Option<u64>;
}

/// Size/location information about a materialized (or planned) synopsis,
/// supplied by the caller's metadata store.
#[derive(Debug, Clone, Copy)]
pub struct SynopsisCostHint {
    /// Row count of the synopsis.
    pub rows: usize,
    /// Size in bytes.
    pub bytes: usize,
    /// Which storage tier it lives in (buffer/warehouse); `None` means it
    /// does not exist yet and must be built by the plan.
    pub location: Option<SynopsisLocation>,
}

/// Plan cost estimator.
#[derive(Debug, Clone)]
pub struct CostEstimator<'a> {
    catalog: &'a Catalog,
    io: IoModel,
    hints: HashMap<u64, SynopsisCostHint>,
    cards: Option<&'a dyn CardinalityProvider>,
    /// Default selectivity for a filter predicate the estimator knows nothing
    /// about (classic textbook 1/3).
    pub default_selectivity: f64,
}

/// Estimated properties of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cost in simulated nanoseconds.
    pub cost_ns: f64,
}

impl<'a> CostEstimator<'a> {
    /// Create an estimator over a catalog with the default I/O model.
    pub fn new(catalog: &'a Catalog, io: IoModel) -> Self {
        Self {
            catalog,
            io,
            hints: HashMap::new(),
            cards: None,
            default_selectivity: 0.33,
        }
    }

    /// Provide size/location hints for synopsis ids referenced by the plans.
    pub fn with_hints(mut self, hints: HashMap<u64, SynopsisCostHint>) -> Self {
        self.hints = hints;
        self
    }

    /// Feed the estimator synopsis-backed cardinality estimates. Without a
    /// provider every selectivity falls back to the textbook constants.
    pub fn with_cardinality(mut self, provider: &'a dyn CardinalityProvider) -> Self {
        self.cards = Some(provider);
        self
    }

    /// Add one hint.
    pub fn add_hint(&mut self, id: u64, hint: SynopsisCostHint) {
        self.hints.insert(id, hint);
    }

    /// Estimate rows and cost for a plan.
    pub fn estimate(&self, plan: &LogicalPlan) -> Result<PlanEstimate, EngineError> {
        match plan {
            LogicalPlan::Scan {
                table,
                filter,
                access,
                ..
            } => {
                let t = self.catalog.table(table)?;
                let rows = t.num_rows() as f64;
                let bytes = t.size_bytes();
                let selectivity = filter
                    .as_ref()
                    .map_or(1.0, |f| self.selectivity(f, Some(table)));
                let cost_ns = match access {
                    Some(path) if !matches!(path, AccessPath::ZonePrunedScan) => {
                        // Index path: read and evaluate only the probed
                        // fraction, plus a binary-search probe per partition.
                        let frac = self.access_fraction(table, path);
                        let probes = t.num_partitions() as f64 * rows.max(2.0).log2();
                        self.io.scan_cost((bytes as f64 * frac) as usize)
                            + self.io.cpu_cost((rows * frac) as usize)
                            + self.io.cpu_ns_per_row * probes
                    }
                    _ => self.io.scan_cost(bytes) + self.io.cpu_cost(t.num_rows()),
                };
                Ok(PlanEstimate {
                    rows: rows * selectivity,
                    cost_ns,
                })
            }
            LogicalPlan::Filter { predicate, input } => {
                let i = self.estimate(input)?;
                let table = input.base_tables().into_iter().next();
                Ok(PlanEstimate {
                    rows: i.rows * self.selectivity(predicate, table.as_deref()),
                    cost_ns: i.cost_ns + self.io.cpu_cost(i.rows as usize),
                })
            }
            LogicalPlan::Project { input, .. } | LogicalPlan::Limit { input, .. } => {
                let i = self.estimate(input)?;
                Ok(PlanEstimate {
                    rows: i.rows,
                    cost_ns: i.cost_ns + self.io.cpu_cost(i.rows as usize),
                })
            }
            LogicalPlan::Join { left, right, .. } => {
                let l = self.estimate(left)?;
                let r = self.estimate(right)?;
                // Foreign-key style join estimate: output ≈ the larger side.
                let rows = l.rows.max(r.rows);
                Ok(PlanEstimate {
                    rows,
                    cost_ns: l.cost_ns
                        + r.cost_ns
                        + self.io.cpu_cost((l.rows + r.rows + rows) as usize),
                })
            }
            LogicalPlan::Aggregate { input, group_by, .. } => {
                let i = self.estimate(input)?;
                let groups = self.estimate_groups(plan, group_by, i.rows);
                Ok(PlanEstimate {
                    rows: groups,
                    cost_ns: i.cost_ns + self.io.cpu_cost(i.rows as usize),
                })
            }
            LogicalPlan::Sample { method, input, .. } => {
                let i = self.estimate(input)?;
                let rows = (i.rows * method.probability()).max(1.0);
                Ok(PlanEstimate {
                    rows,
                    cost_ns: i.cost_ns + self.io.cpu_cost(i.rows as usize),
                })
            }
            LogicalPlan::SynopsisScan { id, .. } => {
                let hint = self.hints.get(id).copied().unwrap_or(SynopsisCostHint {
                    rows: 10_000,
                    bytes: 1 << 20,
                    location: Some(SynopsisLocation::Warehouse),
                });
                let read = match hint.location {
                    Some(SynopsisLocation::Buffer) => self.io.buffer_read_cost(hint.bytes),
                    _ => self.io.warehouse_read_cost(hint.bytes),
                };
                Ok(PlanEstimate {
                    rows: hint.rows as f64,
                    cost_ns: read + self.io.cpu_cost(hint.rows),
                })
            }
            LogicalPlan::SketchJoinAgg {
                probe,
                sketch,
                group_by,
                ..
            } => {
                let p = self.estimate(probe)?;
                let sketch_cost = match sketch {
                    SketchRef::Build { table, .. } => {
                        let t = self.catalog.table(table)?;
                        self.io.scan_cost(t.size_bytes()) + self.io.cpu_cost(t.num_rows())
                    }
                    SketchRef::Materialized { id } => {
                        let hint = self.hints.get(id).copied().unwrap_or(SynopsisCostHint {
                            rows: 0,
                            bytes: 4 << 20,
                            location: Some(SynopsisLocation::Warehouse),
                        });
                        match hint.location {
                            Some(SynopsisLocation::Buffer) => {
                                self.io.buffer_read_cost(hint.bytes)
                            }
                            _ => self.io.warehouse_read_cost(hint.bytes),
                        }
                    }
                };
                let groups = self.estimate_groups(plan, group_by, p.rows);
                Ok(PlanEstimate {
                    rows: groups,
                    cost_ns: p.cost_ns + sketch_cost + self.io.cpu_cost(p.rows as usize),
                })
            }
        }
    }

    /// Estimate the cost only (convenience).
    pub fn cost(&self, plan: &LogicalPlan) -> Result<f64, EngineError> {
        Ok(self.estimate(plan)?.cost_ns)
    }

    fn estimate_groups(&self, plan: &LogicalPlan, group_by: &[String], input_rows: f64) -> f64 {
        if group_by.is_empty() {
            return 1.0;
        }
        // Use per-table distinct counts when the grouping columns belong to a
        // base table we can find; otherwise fall back to a sublinear guess.
        let mut groups = 1.0f64;
        let mut resolved = false;
        for table_name in plan.base_tables() {
            if let Ok(t) = self.catalog.table(&table_name) {
                let stats = t.stats();
                for col in group_by {
                    let d = stats.distinct_count(col);
                    if d > 0 {
                        groups *= d as f64;
                        resolved = true;
                    }
                }
            }
        }
        if !resolved {
            groups = input_rows.sqrt().max(1.0);
        }
        groups.min(input_rows.max(1.0))
    }

    /// Estimated fraction of rows satisfying `predicate`, optionally scoped
    /// to a base table so synopsis-fed estimates can be consulted.
    ///
    /// Boolean connectives follow the independence model: conjunctions
    /// multiply, disjunctions use inclusion–exclusion
    /// `1 − (1 − s₁)(1 − s₂)`, and a negated comparison (`!=`) is the
    /// complement `1 − s` of the corresponding equality. Comparison atoms ask
    /// the [`CardinalityProvider`] first (point frequency, then `1/distinct`
    /// fanout, then range fraction) and fall back to the textbook constants
    /// (0.1 for equality, `default_selectivity` otherwise) when no synopsis
    /// covers the column.
    pub fn selectivity(&self, predicate: &Expr, table: Option<&str>) -> f64 {
        match predicate {
            Expr::Binary { left, op, right } => match op {
                BinaryOp::And => {
                    (self.selectivity(left, table) * self.selectivity(right, table)).max(1e-4)
                }
                BinaryOp::Or => {
                    let l = self.selectivity(left, table);
                    let r = self.selectivity(right, table);
                    (1.0 - (1.0 - l) * (1.0 - r)).clamp(1e-4, 1.0)
                }
                op if op.is_comparison() => {
                    let (col, op, lit) = match (left.as_ref(), right.as_ref()) {
                        (Expr::Column(c), Expr::Literal(v)) => (c, *op, v),
                        (Expr::Literal(v), Expr::Column(c)) => (c, mirror(*op), v),
                        _ => return self.default_selectivity,
                    };
                    match op {
                        BinaryOp::Eq => self.eq_selectivity(table, col, lit),
                        BinaryOp::NotEq => {
                            (1.0 - self.eq_selectivity(table, col, lit)).clamp(1e-4, 1.0)
                        }
                        BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => table
                            .and_then(|t| {
                                self.cards.and_then(|c| c.range_selectivity(t, col, op, lit))
                            })
                            .map_or(self.default_selectivity, |s| s.clamp(1e-6, 1.0)),
                        _ => self.default_selectivity,
                    }
                }
                _ => self.default_selectivity,
            },
            _ => self.default_selectivity,
        }
    }

    /// Selectivity of `column = value`: synopsis point estimate, then
    /// `1/distinct` fanout, then the textbook 0.1.
    fn eq_selectivity(&self, table: Option<&str>, column: &str, value: &Value) -> f64 {
        if let (Some(t), Some(cards)) = (table, self.cards) {
            if let Some(s) = cards.point_selectivity(t, column, value) {
                return s.clamp(1e-6, 1.0);
            }
            if let Some(d) = cards.distinct_count(t, column) {
                if d > 0 {
                    return (1.0 / d as f64).clamp(1e-6, 1.0);
                }
            }
        }
        0.1
    }

    /// Estimated fraction of the table an access path gathers before the
    /// residual filter runs. This is the quantity the index-path scan cost is
    /// proportional to (the executor charges the probed rows, not the table).
    pub fn access_fraction(&self, table: &str, path: &AccessPath) -> f64 {
        match path {
            AccessPath::ZonePrunedScan => 1.0,
            AccessPath::IndexEq { column, value } => {
                self.eq_selectivity(Some(table), column, value)
            }
            AccessPath::IndexRange { column, op, value } => self
                .cards
                .and_then(|c| c.range_selectivity(table, column, *op, value))
                .map_or(self.default_selectivity, |s| s.clamp(1e-6, 1.0)),
            AccessPath::IndexAnd(parts) => parts
                .iter()
                .map(|p| self.access_fraction(table, p))
                .product::<f64>()
                .max(1e-6),
            AccessPath::IndexOr(parts) => (1.0
                - parts
                    .iter()
                    .map(|p| 1.0 - self.access_fraction(table, p))
                    .product::<f64>())
            .clamp(1e-6, 1.0),
        }
    }

    /// Fanout-gate an access path: drop index atoms whose estimated gathered
    /// fraction exceeds `max_fraction` (a wide index probe gathers-then-
    /// discards most of the table and loses to the vectorized scan).
    ///
    /// Conjunctions keep whichever conjuncts survive (the residual filter
    /// covers the rest; a single survivor is unwrapped), while disjunctions
    /// are all-or-nothing — removing one arm of an `OR` would break the
    /// superset contract. Returns `None` when nothing index-worthy remains.
    pub fn gate_access_path(
        &self,
        table: &str,
        path: AccessPath,
        max_fraction: f64,
    ) -> Option<AccessPath> {
        match path {
            AccessPath::IndexAnd(parts) => {
                let mut kept: Vec<AccessPath> = parts
                    .into_iter()
                    .filter_map(|p| self.gate_access_path(table, p, max_fraction))
                    .collect();
                match kept.len() {
                    0 => None,
                    1 => kept.pop(),
                    _ => Some(AccessPath::IndexAnd(kept)),
                }
            }
            AccessPath::IndexOr(parts) => parts
                .into_iter()
                .map(|p| self.gate_access_path(table, p, max_fraction))
                .collect::<Option<Vec<_>>>()
                .map(AccessPath::IndexOr),
            atom => (self.access_fraction(table, &atom) <= max_fraction).then_some(atom),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::logical::{AggExpr, AggFunc, SampleMethod};
    use taster_storage::batch::BatchBuilder;
    use taster_storage::Table;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let big = BatchBuilder::new()
            .column("k", (0..100_000i64).map(|i| i % 100).collect::<Vec<_>>())
            .column("v", (0..100_000).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("big", big, 8).unwrap());
        let small = BatchBuilder::new()
            .column("k", (0..100i64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("small", small, 1).unwrap());
        cat
    }

    fn scan(table: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            filter: None,
            projection: None,
            access: None,
        }
    }

    #[test]
    fn bigger_tables_cost_more() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let big = est.cost(&scan("big")).unwrap();
        let small = est.cost(&scan("small")).unwrap();
        assert!(big > 100.0 * small);
    }

    #[test]
    fn sampling_reduces_estimated_rows_not_scan_cost() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let sampled = LogicalPlan::Sample {
            method: SampleMethod::Uniform { probability: 0.01 },
            synopsis_id: 1,
            input: Box::new(scan("big")),
        };
        let s = est.estimate(&sampled).unwrap();
        let b = est.estimate(&scan("big")).unwrap();
        assert!(s.rows < b.rows / 50.0);
        assert!(s.cost_ns >= b.cost_ns, "sampling still reads all base data");
    }

    #[test]
    fn synopsis_scan_is_much_cheaper_than_base_scan() {
        let cat = catalog();
        let mut est = CostEstimator::new(&cat, IoModel::default());
        est.add_hint(
            7,
            SynopsisCostHint {
                rows: 1_000,
                bytes: 16_000,
                location: Some(SynopsisLocation::Buffer),
            },
        );
        let syn = est
            .cost(&LogicalPlan::SynopsisScan {
                id: 7,
                filter: None,
            })
            .unwrap();
        let base = est.cost(&scan("big")).unwrap();
        assert!(syn * 10.0 < base);
    }

    #[test]
    fn aggregate_group_estimate_uses_stats() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["k".into()],
            aggregates: vec![AggExpr::new(AggFunc::Count, None)],
            input: Box::new(scan("big")),
        };
        let e = est.estimate(&plan).unwrap();
        assert!((e.rows - 100.0).abs() < 1.0);
    }

    #[test]
    fn filters_reduce_estimated_rows() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let filtered = LogicalPlan::Filter {
            predicate: Expr::binary(Expr::col("k"), BinaryOp::Eq, Expr::lit(3i64)),
            input: Box::new(scan("big")),
        };
        let f = est.estimate(&filtered).unwrap();
        let b = est.estimate(&scan("big")).unwrap();
        assert!(f.rows < b.rows);
    }

    #[test]
    fn or_and_noteq_selectivities_compose() {
        // Regression: `Or` and `!=` used to fall through to the flat default,
        // so `k = 3 OR k = 5` was estimated *less* selective than `k = 3`.
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let eq = Expr::binary(Expr::col("k"), BinaryOp::Eq, Expr::lit(3i64));
        assert!((est.selectivity(&eq, None) - 0.1).abs() < 1e-9);

        let or = Expr::binary(eq.clone(), BinaryOp::Or, eq.clone());
        let expect = 1.0 - (1.0 - 0.1) * (1.0 - 0.1);
        assert!((est.selectivity(&or, None) - expect).abs() < 1e-9);

        let ne = Expr::binary(Expr::col("k"), BinaryOp::NotEq, Expr::lit(3i64));
        assert!((est.selectivity(&ne, None) - 0.9).abs() < 1e-9);

        // Conjunctions still multiply, and the Or estimate stays within (0,1].
        let and = eq.clone().and(ne);
        assert!((est.selectivity(&and, None) - 0.09).abs() < 1e-9);
        assert!(est.selectivity(&or, None) <= 1.0);
    }

    #[derive(Debug)]
    struct FixedCards;
    impl CardinalityProvider for FixedCards {
        fn point_selectivity(&self, _t: &str, _c: &str, _v: &Value) -> Option<f64> {
            Some(0.001)
        }
        fn range_selectivity(
            &self,
            _t: &str,
            _c: &str,
            _op: BinaryOp,
            _v: &Value,
        ) -> Option<f64> {
            Some(0.02)
        }
        fn distinct_count(&self, _t: &str, _c: &str) -> Option<u64> {
            Some(500)
        }
    }

    #[test]
    fn cardinality_provider_overrides_textbook_constants() {
        let cat = catalog();
        let cards = FixedCards;
        let est = CostEstimator::new(&cat, IoModel::default()).with_cardinality(&cards);
        let eq = Expr::binary(Expr::col("k"), BinaryOp::Eq, Expr::lit(3i64));
        // With table context the provider answers; without it, the fallback.
        assert!((est.selectivity(&eq, Some("big")) - 0.001).abs() < 1e-9);
        assert!((est.selectivity(&eq, None) - 0.1).abs() < 1e-9);
        let lt = Expr::binary(Expr::col("k"), BinaryOp::Lt, Expr::lit(3i64));
        assert!((est.selectivity(&lt, Some("big")) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn index_path_costs_less_than_full_scan_when_selective() {
        let cat = catalog();
        let cards = FixedCards;
        let est = CostEstimator::new(&cat, IoModel::default()).with_cardinality(&cards);
        let filter = Expr::binary(Expr::col("k"), BinaryOp::Eq, Expr::lit(3i64));
        let indexed = LogicalPlan::Scan {
            table: "big".into(),
            filter: Some(filter.clone()),
            projection: None,
            access: Some(AccessPath::IndexEq {
                column: "k".into(),
                value: taster_storage::Value::Int(3),
            }),
        };
        let scanned = LogicalPlan::Scan {
            table: "big".into(),
            filter: Some(filter),
            projection: None,
            access: None,
        };
        let i = est.estimate(&indexed).unwrap();
        let s = est.estimate(&scanned).unwrap();
        assert!(i.cost_ns * 5.0 < s.cost_ns, "index {} vs scan {}", i.cost_ns, s.cost_ns);
        // The access path changes cost, not the row estimate.
        assert!((i.rows - s.rows).abs() < 1e-9);
    }

    #[test]
    fn fanout_gate_prunes_wide_probes() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        // Default constants: Eq → 0.1 (survives a 0.25 gate), range → 0.33
        // (gated out).
        let eq = AccessPath::IndexEq {
            column: "k".into(),
            value: taster_storage::Value::Int(3),
        };
        let range = AccessPath::IndexRange {
            column: "v".into(),
            op: BinaryOp::Lt,
            value: taster_storage::Value::Int(10),
        };
        let and = AccessPath::IndexAnd(vec![eq.clone(), range.clone()]);
        // The surviving single conjunct is unwrapped.
        assert_eq!(est.gate_access_path("big", and, 0.25), Some(eq.clone()));
        // An Or with a too-wide arm is dropped entirely.
        let or = AccessPath::IndexOr(vec![eq.clone(), range.clone()]);
        assert_eq!(est.gate_access_path("big", or, 0.25), None);
        assert_eq!(est.gate_access_path("big", range, 0.25), None);
        let tight_or = AccessPath::IndexOr(vec![eq.clone(), eq.clone()]);
        assert!(matches!(
            est.gate_access_path("big", tight_or, 0.25),
            Some(AccessPath::IndexOr(_))
        ));
    }

    #[test]
    fn join_cost_includes_both_sides() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let join = LogicalPlan::Join {
            left: Box::new(scan("big")),
            right: Box::new(scan("small")),
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
        };
        let j = est.estimate(&join).unwrap();
        let b = est.estimate(&scan("big")).unwrap();
        assert!(j.cost_ns > b.cost_ns);
    }
}
