//! Cost model for logical plans.
//!
//! Both the exact planner and Taster's cost-based planner need to compare
//! candidate plans before executing them. Costs are expressed in nanoseconds
//! of *simulated* time under the [`taster_storage::IoModel`] — the same unit
//! the benchmark harness reports — so "cheapest plan" and "fastest measured
//! plan" agree in shape.
//!
//! Synopsis sizes are not derivable from the catalog (they live in Taster's
//! metadata store), so the estimator accepts a [`SynopsisCostHint`] per
//! synopsis id.

use std::collections::HashMap;

use taster_storage::{Catalog, IoModel};

use crate::context::SynopsisLocation;
use crate::error::EngineError;
use crate::expr::Expr;
use crate::logical::{LogicalPlan, SketchRef};

/// Size/location information about a materialized (or planned) synopsis,
/// supplied by the caller's metadata store.
#[derive(Debug, Clone, Copy)]
pub struct SynopsisCostHint {
    /// Row count of the synopsis.
    pub rows: usize,
    /// Size in bytes.
    pub bytes: usize,
    /// Which storage tier it lives in (buffer/warehouse); `None` means it
    /// does not exist yet and must be built by the plan.
    pub location: Option<SynopsisLocation>,
}

/// Plan cost estimator.
#[derive(Debug, Clone)]
pub struct CostEstimator<'a> {
    catalog: &'a Catalog,
    io: IoModel,
    hints: HashMap<u64, SynopsisCostHint>,
    /// Default selectivity for a filter predicate the estimator knows nothing
    /// about (classic textbook 1/3).
    pub default_selectivity: f64,
}

/// Estimated properties of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cost in simulated nanoseconds.
    pub cost_ns: f64,
}

impl<'a> CostEstimator<'a> {
    /// Create an estimator over a catalog with the default I/O model.
    pub fn new(catalog: &'a Catalog, io: IoModel) -> Self {
        Self {
            catalog,
            io,
            hints: HashMap::new(),
            default_selectivity: 0.33,
        }
    }

    /// Provide size/location hints for synopsis ids referenced by the plans.
    pub fn with_hints(mut self, hints: HashMap<u64, SynopsisCostHint>) -> Self {
        self.hints = hints;
        self
    }

    /// Add one hint.
    pub fn add_hint(&mut self, id: u64, hint: SynopsisCostHint) {
        self.hints.insert(id, hint);
    }

    /// Estimate rows and cost for a plan.
    pub fn estimate(&self, plan: &LogicalPlan) -> Result<PlanEstimate, EngineError> {
        match plan {
            LogicalPlan::Scan { table, filter, .. } => {
                let t = self.catalog.table(table)?;
                let rows = t.num_rows() as f64;
                let bytes = t.size_bytes();
                let selectivity = filter.as_ref().map_or(1.0, |f| self.selectivity(f));
                Ok(PlanEstimate {
                    rows: rows * selectivity,
                    cost_ns: self.io.scan_cost(bytes) + self.io.cpu_cost(t.num_rows()),
                })
            }
            LogicalPlan::Filter { predicate, input } => {
                let i = self.estimate(input)?;
                Ok(PlanEstimate {
                    rows: i.rows * self.selectivity(predicate),
                    cost_ns: i.cost_ns + self.io.cpu_cost(i.rows as usize),
                })
            }
            LogicalPlan::Project { input, .. } | LogicalPlan::Limit { input, .. } => {
                let i = self.estimate(input)?;
                Ok(PlanEstimate {
                    rows: i.rows,
                    cost_ns: i.cost_ns + self.io.cpu_cost(i.rows as usize),
                })
            }
            LogicalPlan::Join { left, right, .. } => {
                let l = self.estimate(left)?;
                let r = self.estimate(right)?;
                // Foreign-key style join estimate: output ≈ the larger side.
                let rows = l.rows.max(r.rows);
                Ok(PlanEstimate {
                    rows,
                    cost_ns: l.cost_ns
                        + r.cost_ns
                        + self.io.cpu_cost((l.rows + r.rows + rows) as usize),
                })
            }
            LogicalPlan::Aggregate { input, group_by, .. } => {
                let i = self.estimate(input)?;
                let groups = self.estimate_groups(plan, group_by, i.rows);
                Ok(PlanEstimate {
                    rows: groups,
                    cost_ns: i.cost_ns + self.io.cpu_cost(i.rows as usize),
                })
            }
            LogicalPlan::Sample { method, input, .. } => {
                let i = self.estimate(input)?;
                let rows = (i.rows * method.probability()).max(1.0);
                Ok(PlanEstimate {
                    rows,
                    cost_ns: i.cost_ns + self.io.cpu_cost(i.rows as usize),
                })
            }
            LogicalPlan::SynopsisScan { id, .. } => {
                let hint = self.hints.get(id).copied().unwrap_or(SynopsisCostHint {
                    rows: 10_000,
                    bytes: 1 << 20,
                    location: Some(SynopsisLocation::Warehouse),
                });
                let read = match hint.location {
                    Some(SynopsisLocation::Buffer) => self.io.buffer_read_cost(hint.bytes),
                    _ => self.io.warehouse_read_cost(hint.bytes),
                };
                Ok(PlanEstimate {
                    rows: hint.rows as f64,
                    cost_ns: read + self.io.cpu_cost(hint.rows),
                })
            }
            LogicalPlan::SketchJoinAgg {
                probe,
                sketch,
                group_by,
                ..
            } => {
                let p = self.estimate(probe)?;
                let sketch_cost = match sketch {
                    SketchRef::Build { table, .. } => {
                        let t = self.catalog.table(table)?;
                        self.io.scan_cost(t.size_bytes()) + self.io.cpu_cost(t.num_rows())
                    }
                    SketchRef::Materialized { id } => {
                        let hint = self.hints.get(id).copied().unwrap_or(SynopsisCostHint {
                            rows: 0,
                            bytes: 4 << 20,
                            location: Some(SynopsisLocation::Warehouse),
                        });
                        match hint.location {
                            Some(SynopsisLocation::Buffer) => {
                                self.io.buffer_read_cost(hint.bytes)
                            }
                            _ => self.io.warehouse_read_cost(hint.bytes),
                        }
                    }
                };
                let groups = self.estimate_groups(plan, group_by, p.rows);
                Ok(PlanEstimate {
                    rows: groups,
                    cost_ns: p.cost_ns + sketch_cost + self.io.cpu_cost(p.rows as usize),
                })
            }
        }
    }

    /// Estimate the cost only (convenience).
    pub fn cost(&self, plan: &LogicalPlan) -> Result<f64, EngineError> {
        Ok(self.estimate(plan)?.cost_ns)
    }

    fn estimate_groups(&self, plan: &LogicalPlan, group_by: &[String], input_rows: f64) -> f64 {
        if group_by.is_empty() {
            return 1.0;
        }
        // Use per-table distinct counts when the grouping columns belong to a
        // base table we can find; otherwise fall back to a sublinear guess.
        let mut groups = 1.0f64;
        let mut resolved = false;
        for table_name in plan.base_tables() {
            if let Ok(t) = self.catalog.table(&table_name) {
                let stats = t.stats();
                for col in group_by {
                    let d = stats.distinct_count(col);
                    if d > 0 {
                        groups *= d as f64;
                        resolved = true;
                    }
                }
            }
        }
        if !resolved {
            groups = input_rows.sqrt().max(1.0);
        }
        groups.min(input_rows.max(1.0))
    }

    fn selectivity(&self, predicate: &Expr) -> f64 {
        // Conjunctions multiply; everything else uses the default.
        match predicate {
            Expr::Binary { left, op, right } if *op == crate::expr::BinaryOp::And => {
                (self.selectivity(left) * self.selectivity(right)).max(1e-4)
            }
            Expr::Binary { op, .. } if *op == crate::expr::BinaryOp::Eq => 0.1,
            _ => self.default_selectivity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::logical::{AggExpr, AggFunc, SampleMethod};
    use taster_storage::batch::BatchBuilder;
    use taster_storage::Table;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let big = BatchBuilder::new()
            .column("k", (0..100_000i64).map(|i| i % 100).collect::<Vec<_>>())
            .column("v", (0..100_000).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("big", big, 8).unwrap());
        let small = BatchBuilder::new()
            .column("k", (0..100i64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("small", small, 1).unwrap());
        cat
    }

    fn scan(table: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            filter: None,
            projection: None,
        }
    }

    #[test]
    fn bigger_tables_cost_more() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let big = est.cost(&scan("big")).unwrap();
        let small = est.cost(&scan("small")).unwrap();
        assert!(big > 100.0 * small);
    }

    #[test]
    fn sampling_reduces_estimated_rows_not_scan_cost() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let sampled = LogicalPlan::Sample {
            method: SampleMethod::Uniform { probability: 0.01 },
            synopsis_id: 1,
            input: Box::new(scan("big")),
        };
        let s = est.estimate(&sampled).unwrap();
        let b = est.estimate(&scan("big")).unwrap();
        assert!(s.rows < b.rows / 50.0);
        assert!(s.cost_ns >= b.cost_ns, "sampling still reads all base data");
    }

    #[test]
    fn synopsis_scan_is_much_cheaper_than_base_scan() {
        let cat = catalog();
        let mut est = CostEstimator::new(&cat, IoModel::default());
        est.add_hint(
            7,
            SynopsisCostHint {
                rows: 1_000,
                bytes: 16_000,
                location: Some(SynopsisLocation::Buffer),
            },
        );
        let syn = est
            .cost(&LogicalPlan::SynopsisScan {
                id: 7,
                filter: None,
            })
            .unwrap();
        let base = est.cost(&scan("big")).unwrap();
        assert!(syn * 10.0 < base);
    }

    #[test]
    fn aggregate_group_estimate_uses_stats() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["k".into()],
            aggregates: vec![AggExpr::new(AggFunc::Count, None)],
            input: Box::new(scan("big")),
        };
        let e = est.estimate(&plan).unwrap();
        assert!((e.rows - 100.0).abs() < 1.0);
    }

    #[test]
    fn filters_reduce_estimated_rows() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let filtered = LogicalPlan::Filter {
            predicate: Expr::binary(Expr::col("k"), BinaryOp::Eq, Expr::lit(3i64)),
            input: Box::new(scan("big")),
        };
        let f = est.estimate(&filtered).unwrap();
        let b = est.estimate(&scan("big")).unwrap();
        assert!(f.rows < b.rows);
    }

    #[test]
    fn join_cost_includes_both_sides() {
        let cat = catalog();
        let est = CostEstimator::new(&cat, IoModel::default());
        let join = LogicalPlan::Join {
            left: Box::new(scan("big")),
            right: Box::new(scan("small")),
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
        };
        let j = est.estimate(&join).unwrap();
        let b = est.estimate(&scan("big")).unwrap();
        assert!(j.cost_ns > b.cost_ns);
    }
}
