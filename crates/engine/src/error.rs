//! Engine error type.

use std::fmt;

use taster_storage::StorageError;

/// Errors produced while parsing, planning or executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An error bubbled up from the storage layer.
    Storage(StorageError),
    /// The SQL text could not be parsed.
    Parse(String),
    /// The plan references unknown tables/columns or is otherwise invalid.
    Plan(String),
    /// A failure during execution.
    Execution(String),
    /// The query's accuracy requirement cannot be satisfied.
    Accuracy(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Parse(msg) => write!(f, "parse error: {msg}"),
            EngineError::Plan(msg) => write!(f, "planning error: {msg}"),
            EngineError::Execution(msg) => write!(f, "execution error: {msg}"),
            EngineError::Accuracy(msg) => write!(f, "accuracy error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: EngineError = StorageError::TableNotFound("t".into()).into();
        assert!(e.to_string().contains("table not found"));
        assert!(EngineError::Parse("x".into()).to_string().contains("parse"));
    }
}
