//! Scalar expressions and predicates.

use std::fmt;

use serde::{Deserialize, Serialize};
use taster_storage::{ColumnData, RecordBatch, Value};

use crate::error::EngineError;

/// Binary operators supported in predicates and arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Equality.
    Eq,
    /// Inequality.
    NotEq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    LtEq,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    GtEq,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinaryOp {
    /// `true` for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference by name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Shorthand for a literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Build a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `self AND other` (convenience for combining predicates).
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::And, other)
    }

    /// All column names referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => out.push(name.clone()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
        }
    }

    /// Evaluate the expression against every row of a batch.
    pub fn evaluate(&self, batch: &RecordBatch) -> Result<Vec<Value>, EngineError> {
        match self {
            Expr::Column(name) => {
                let col = batch.column_by_name(name)?;
                Ok(col.iter_values().collect())
            }
            Expr::Literal(v) => Ok(vec![v.clone(); batch.num_rows()]),
            Expr::Binary { left, op, right } => {
                let l = left.evaluate(batch)?;
                let r = right.evaluate(batch)?;
                l.iter()
                    .zip(r.iter())
                    .map(|(a, b)| eval_binary(a, *op, b))
                    .collect()
            }
        }
    }

    /// Evaluate the expression as a predicate, returning a selection mask.
    pub fn evaluate_predicate(&self, batch: &RecordBatch) -> Result<Vec<bool>, EngineError> {
        // Fast path for `col op literal`, the dominant shape in the
        // benchmark workloads: avoids widening every value.
        if let Expr::Binary { left, op, right } = self {
            if op.is_comparison() {
                if let (Expr::Column(name), Expr::Literal(lit)) = (left.as_ref(), right.as_ref()) {
                    let col = batch.column_by_name(name)?;
                    return Ok(compare_column_literal(col, *op, lit));
                }
            }
        }
        let values = self.evaluate(batch)?;
        Ok(values
            .into_iter()
            .map(|v| v.as_bool().unwrap_or(false))
            .collect())
    }

    /// Evaluate the expression on a single row (used by nested loop paths and
    /// by sketch-join probing).
    pub fn evaluate_row(&self, batch: &RecordBatch, row: usize) -> Result<Value, EngineError> {
        match self {
            Expr::Column(name) => Ok(batch.column_by_name(name)?.value(row)),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { left, op, right } => {
                let l = left.evaluate_row(batch, row)?;
                let r = right.evaluate_row(batch, row)?;
                eval_binary(&l, *op, &r)
            }
        }
    }
}

fn compare_column_literal(col: &ColumnData, op: BinaryOp, lit: &Value) -> Vec<bool> {
    let n = col.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let v = col.value(i);
        let keep = match op {
            BinaryOp::Eq => v == *lit,
            BinaryOp::NotEq => v != *lit,
            BinaryOp::Lt => v < *lit,
            BinaryOp::LtEq => v <= *lit,
            BinaryOp::Gt => v > *lit,
            BinaryOp::GtEq => v >= *lit,
            _ => false,
        };
        out.push(keep);
    }
    out
}

fn eval_binary(left: &Value, op: BinaryOp, right: &Value) -> Result<Value, EngineError> {
    use BinaryOp::*;
    match op {
        Eq => Ok(Value::Bool(left == right)),
        NotEq => Ok(Value::Bool(left != right)),
        Lt => Ok(Value::Bool(left < right)),
        LtEq => Ok(Value::Bool(left <= right)),
        Gt => Ok(Value::Bool(left > right)),
        GtEq => Ok(Value::Bool(left >= right)),
        And => Ok(Value::Bool(
            left.as_bool().unwrap_or(false) && right.as_bool().unwrap_or(false),
        )),
        Or => Ok(Value::Bool(
            left.as_bool().unwrap_or(false) || right.as_bool().unwrap_or(false),
        )),
        Add | Sub | Mul | Div => {
            let (a, b) = match (left.as_f64(), right.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EngineError::Execution(format!(
                        "arithmetic on non-numeric values {left} {op} {right}"
                    )))
                }
            };
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(EngineError::Execution("division by zero".to_string()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;

    fn batch() -> RecordBatch {
        BatchBuilder::new()
            .column("a", vec![1i64, 2, 3, 4])
            .column("b", vec![10.0f64, 20.0, 30.0, 40.0])
            .column("s", vec!["x", "y", "x", "z"])
            .build()
            .unwrap()
    }

    #[test]
    fn column_and_literal_evaluation() {
        let b = batch();
        assert_eq!(Expr::col("a").evaluate(&b).unwrap()[2], Value::Int(3));
        assert_eq!(Expr::lit(5i64).evaluate(&b).unwrap().len(), 4);
        assert!(Expr::col("missing").evaluate(&b).is_err());
    }

    #[test]
    fn comparison_predicates() {
        let b = batch();
        let p = Expr::binary(Expr::col("a"), BinaryOp::GtEq, Expr::lit(3i64));
        assert_eq!(p.evaluate_predicate(&b).unwrap(), vec![false, false, true, true]);
        let p = Expr::binary(Expr::col("s"), BinaryOp::Eq, Expr::lit("x"));
        assert_eq!(p.evaluate_predicate(&b).unwrap(), vec![true, false, true, false]);
    }

    #[test]
    fn conjunction_and_disjunction() {
        let b = batch();
        let p = Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::lit(1i64))
            .and(Expr::binary(Expr::col("b"), BinaryOp::Lt, Expr::lit(40.0)));
        assert_eq!(p.evaluate_predicate(&b).unwrap(), vec![false, true, true, false]);
        let q = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Eq, Expr::lit(1i64)),
            BinaryOp::Or,
            Expr::binary(Expr::col("a"), BinaryOp::Eq, Expr::lit(4i64)),
        );
        assert_eq!(q.evaluate_predicate(&b).unwrap(), vec![true, false, false, true]);
    }

    #[test]
    fn arithmetic_and_errors() {
        let b = batch();
        let e = Expr::binary(Expr::col("a"), BinaryOp::Mul, Expr::col("b"));
        assert_eq!(e.evaluate(&b).unwrap()[1], Value::Float(40.0));
        let bad = Expr::binary(Expr::col("s"), BinaryOp::Add, Expr::lit(1i64));
        assert!(bad.evaluate(&b).is_err());
        let div0 = Expr::binary(Expr::col("a"), BinaryOp::Div, Expr::lit(0i64));
        assert!(div0.evaluate(&b).is_err());
    }

    #[test]
    fn referenced_columns_are_deduped_and_sorted() {
        let e = Expr::binary(Expr::col("b"), BinaryOp::Add, Expr::col("a"))
            .and(Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::lit(0i64)));
        assert_eq!(e.referenced_columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn row_evaluation_matches_batch_evaluation() {
        let b = batch();
        let e = Expr::binary(Expr::col("a"), BinaryOp::Add, Expr::col("b"));
        let all = e.evaluate(&b).unwrap();
        for i in 0..b.num_rows() {
            assert_eq!(e.evaluate_row(&b, i).unwrap(), all[i]);
        }
    }

    #[test]
    fn display_round_trips_shape() {
        let e = Expr::binary(Expr::col("a"), BinaryOp::LtEq, Expr::lit("z"));
        assert_eq!(e.to_string(), "(a <= 'z')");
    }
}
