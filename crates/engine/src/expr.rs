//! Scalar expressions and predicates.

use std::fmt;

use serde::{Deserialize, Serialize};
use taster_storage::mask::SelectionMask;
use taster_storage::{ColumnData, RecordBatch, Value};

use crate::error::EngineError;
use crate::kernels;

/// Binary operators supported in predicates and arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Equality.
    Eq,
    /// Inequality.
    NotEq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    LtEq,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    GtEq,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinaryOp {
    /// `true` for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference by name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Shorthand for a literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Build a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `self AND other` (convenience for combining predicates).
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::And, other)
    }

    /// All column names referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => out.push(name.clone()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
        }
    }

    /// Evaluate the expression against every row of a batch, producing a
    /// typed column. Comparisons yield `Bool`, arithmetic yields `Float64`
    /// (matching the scalar [`Expr::evaluate_row`] semantics exactly).
    pub fn evaluate(&self, batch: &RecordBatch) -> Result<ColumnData, EngineError> {
        match self.evaluate_vec(batch)? {
            Evaluated::Col(c) => Ok(c),
            Evaluated::Scalar(v) => splat(&v, batch.num_rows()),
        }
    }

    /// Columnar evaluation that keeps literal subtrees scalar, so kernels can
    /// run column⊕scalar loops instead of splatting literals into columns.
    fn evaluate_vec(&self, batch: &RecordBatch) -> Result<Evaluated, EngineError> {
        match self {
            Expr::Column(name) => Ok(Evaluated::Col(batch.column_by_name(name)?.clone())),
            Expr::Literal(v) => Ok(Evaluated::Scalar(v.clone())),
            Expr::Binary { left, op, right } => {
                let l = left.evaluate_vec(batch)?;
                let r = right.evaluate_vec(batch)?;
                if op.is_comparison() {
                    return Ok(match compare_evaluated(&l, *op, &r)? {
                        Compared::Mask(mask) => Evaluated::Col(ColumnData::Bool(mask.to_bools())),
                        Compared::Scalar(v) => Evaluated::Scalar(v),
                    });
                }
                match (*op, l, r) {
                    (BinaryOp::And | BinaryOp::Or, l, r) => {
                        let n = batch.num_rows();
                        let mut m = l.truth_mask(n);
                        let r = r.truth_mask(n);
                        if *op == BinaryOp::And {
                            m.and_with(&r);
                        } else {
                            m.or_with(&r);
                        }
                        Ok(Evaluated::Col(ColumnData::Bool(m.to_bools())))
                    }
                    (_, Evaluated::Col(a), Evaluated::Col(b)) => {
                        Ok(Evaluated::Col(kernels::arith_columns(&a, *op, &b)?))
                    }
                    (_, Evaluated::Col(a), Evaluated::Scalar(b)) => Ok(Evaluated::Col(
                        kernels::arith_column_scalar(&a, *op, &b, false)?,
                    )),
                    (_, Evaluated::Scalar(a), Evaluated::Col(b)) => Ok(Evaluated::Col(
                        kernels::arith_column_scalar(&b, *op, &a, true)?,
                    )),
                    (_, Evaluated::Scalar(a), Evaluated::Scalar(b)) => {
                        eval_binary(&a, *op, &b).map(Evaluated::Scalar)
                    }
                }
            }
        }
    }

    /// Evaluate the expression as a predicate, returning a packed selection
    /// mask computed by type-specialized kernels.
    pub fn evaluate_predicate(&self, batch: &RecordBatch) -> Result<SelectionMask, EngineError> {
        let n = batch.num_rows();
        if let Expr::Binary { left, op, right } = self {
            match op {
                BinaryOp::And => {
                    // No short-circuit on an empty left mask: the right side
                    // must still be evaluated so malformed operands (unknown
                    // columns, bad types) error regardless of the data.
                    let mut m = left.evaluate_predicate(batch)?;
                    m.and_with(&right.evaluate_predicate(batch)?);
                    return Ok(m);
                }
                BinaryOp::Or => {
                    let mut m = left.evaluate_predicate(batch)?;
                    m.or_with(&right.evaluate_predicate(batch)?);
                    return Ok(m);
                }
                op if op.is_comparison() => {
                    let l = left.evaluate_vec(batch)?;
                    let r = right.evaluate_vec(batch)?;
                    return Ok(match compare_evaluated(&l, *op, &r)? {
                        Compared::Mask(mask) => mask,
                        Compared::Scalar(v) => constant_mask(n, v.as_bool().unwrap_or(false)),
                    });
                }
                _ => {}
            }
        }
        // Generic fallback: evaluate to a column and take its truthiness.
        Ok(self.evaluate_vec(batch)?.truth_mask(n))
    }

    /// Evaluate the expression on a single row (used by nested loop paths and
    /// by sketch-join probing).
    pub fn evaluate_row(&self, batch: &RecordBatch, row: usize) -> Result<Value, EngineError> {
        match self {
            Expr::Column(name) => Ok(batch.column_by_name(name)?.value(row)),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { left, op, right } => {
                let l = left.evaluate_row(batch, row)?;
                let r = right.evaluate_row(batch, row)?;
                eval_binary(&l, *op, &r)
            }
        }
    }
}

/// Result of columnar evaluation: a full column, or a scalar for literal
/// subtrees (splatted only when a caller genuinely needs a column).
enum Evaluated {
    Col(ColumnData),
    Scalar(Value),
}

impl Evaluated {
    /// Truthiness under `Value::as_bool().unwrap_or(false)`: bool columns
    /// pass through, everything else (including a NULL scalar) is false.
    fn truth_mask(&self, n: usize) -> SelectionMask {
        match self {
            Evaluated::Col(c) => kernels::column_truth_mask(c),
            Evaluated::Scalar(v) => constant_mask(n, v.as_bool().unwrap_or(false)),
        }
    }
}

/// Outcome of comparing two evaluated operands.
enum Compared {
    Mask(SelectionMask),
    Scalar(Value),
}

/// The one comparison dispatch shared by `evaluate_vec` and
/// `evaluate_predicate`: column/column, column/scalar (either order, via
/// [`mirror`]) through the typed kernels; scalar/scalar stays scalar.
fn compare_evaluated(l: &Evaluated, op: BinaryOp, r: &Evaluated) -> Result<Compared, EngineError> {
    Ok(match (l, r) {
        (Evaluated::Col(a), Evaluated::Col(b)) => {
            Compared::Mask(kernels::compare_columns(a, op, b))
        }
        (Evaluated::Col(a), Evaluated::Scalar(b)) => {
            Compared::Mask(kernels::compare_column_literal(a, op, b))
        }
        (Evaluated::Scalar(a), Evaluated::Col(b)) => {
            Compared::Mask(kernels::compare_column_literal(b, mirror(op), a))
        }
        (Evaluated::Scalar(a), Evaluated::Scalar(b)) => Compared::Scalar(eval_binary(a, op, b)?),
    })
}

fn constant_mask(n: usize, selected: bool) -> SelectionMask {
    if selected {
        SelectionMask::all(n)
    } else {
        SelectionMask::none(n)
    }
}

/// Materialize a scalar as a constant column of length `n`.
fn splat(v: &Value, n: usize) -> Result<ColumnData, EngineError> {
    Ok(match v {
        Value::Int(x) => ColumnData::Int64(vec![*x; n]),
        Value::Float(x) => ColumnData::Float64(vec![*x; n]),
        Value::Str(s) => ColumnData::Utf8(vec![s.clone(); n]),
        Value::Bool(b) => ColumnData::Bool(vec![*b; n]),
        Value::Null => {
            return Err(EngineError::Execution(
                "cannot evaluate NULL literal as a column".to_string(),
            ))
        }
    })
}

/// Swap the operand order of a comparison: `lit op col` == `col mirror(op) lit`.
pub(crate) fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

fn eval_binary(left: &Value, op: BinaryOp, right: &Value) -> Result<Value, EngineError> {
    use BinaryOp::*;
    match op {
        Eq => Ok(Value::Bool(left == right)),
        NotEq => Ok(Value::Bool(left != right)),
        Lt => Ok(Value::Bool(left < right)),
        LtEq => Ok(Value::Bool(left <= right)),
        Gt => Ok(Value::Bool(left > right)),
        GtEq => Ok(Value::Bool(left >= right)),
        And => Ok(Value::Bool(
            left.as_bool().unwrap_or(false) && right.as_bool().unwrap_or(false),
        )),
        Or => Ok(Value::Bool(
            left.as_bool().unwrap_or(false) || right.as_bool().unwrap_or(false),
        )),
        Add | Sub | Mul | Div => {
            let (a, b) = match (left.as_f64(), right.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EngineError::Execution(format!(
                        "arithmetic on non-numeric values {left} {op} {right}"
                    )))
                }
            };
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(EngineError::Execution("division by zero".to_string()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;

    fn batch() -> RecordBatch {
        BatchBuilder::new()
            .column("a", vec![1i64, 2, 3, 4])
            .column("b", vec![10.0f64, 20.0, 30.0, 40.0])
            .column("s", vec!["x", "y", "x", "z"])
            .build()
            .unwrap()
    }

    #[test]
    fn column_and_literal_evaluation() {
        let b = batch();
        assert_eq!(Expr::col("a").evaluate(&b).unwrap().value(2), Value::Int(3));
        assert_eq!(Expr::lit(5i64).evaluate(&b).unwrap().len(), 4);
        assert!(Expr::col("missing").evaluate(&b).is_err());
    }

    #[test]
    fn comparison_predicates() {
        let b = batch();
        let p = Expr::binary(Expr::col("a"), BinaryOp::GtEq, Expr::lit(3i64));
        assert_eq!(
            p.evaluate_predicate(&b).unwrap().to_bools(),
            vec![false, false, true, true]
        );
        let p = Expr::binary(Expr::col("s"), BinaryOp::Eq, Expr::lit("x"));
        assert_eq!(
            p.evaluate_predicate(&b).unwrap().to_bools(),
            vec![true, false, true, false]
        );
        // Literal-on-the-left comparisons mirror correctly.
        let p = Expr::binary(Expr::lit(3i64), BinaryOp::Lt, Expr::col("a"));
        assert_eq!(
            p.evaluate_predicate(&b).unwrap().to_bools(),
            vec![false, false, false, true]
        );
    }

    #[test]
    fn conjunction_and_disjunction() {
        let b = batch();
        let p = Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::lit(1i64))
            .and(Expr::binary(Expr::col("b"), BinaryOp::Lt, Expr::lit(40.0)));
        assert_eq!(
            p.evaluate_predicate(&b).unwrap().to_bools(),
            vec![false, true, true, false]
        );
        let q = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Eq, Expr::lit(1i64)),
            BinaryOp::Or,
            Expr::binary(Expr::col("a"), BinaryOp::Eq, Expr::lit(4i64)),
        );
        assert_eq!(
            q.evaluate_predicate(&b).unwrap().to_bools(),
            vec![true, false, false, true]
        );
    }

    #[test]
    fn arithmetic_and_errors() {
        let b = batch();
        let e = Expr::binary(Expr::col("a"), BinaryOp::Mul, Expr::col("b"));
        assert_eq!(e.evaluate(&b).unwrap().value(1), Value::Float(40.0));
        let bad = Expr::binary(Expr::col("s"), BinaryOp::Add, Expr::lit(1i64));
        assert!(bad.evaluate(&b).is_err());
        let div0 = Expr::binary(Expr::col("a"), BinaryOp::Div, Expr::lit(0i64));
        assert!(div0.evaluate(&b).is_err());
    }

    #[test]
    fn referenced_columns_are_deduped_and_sorted() {
        let e = Expr::binary(Expr::col("b"), BinaryOp::Add, Expr::col("a"))
            .and(Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::lit(0i64)));
        assert_eq!(e.referenced_columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn row_evaluation_matches_batch_evaluation() {
        let b = batch();
        let e = Expr::binary(Expr::col("a"), BinaryOp::Add, Expr::col("b"));
        let all = e.evaluate(&b).unwrap();
        for i in 0..b.num_rows() {
            assert_eq!(e.evaluate_row(&b, i).unwrap(), all.value(i));
        }
    }

    #[test]
    fn null_literal_under_logic_is_false_not_an_error() {
        let b = batch();
        // NULL has no boolean value; `as_bool().unwrap_or(false)` semantics
        // make it false under AND/OR rather than a splat error.
        let e = Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::lit(1i64))
            .and(Expr::Literal(Value::Null));
        assert!(e.evaluate_predicate(&b).unwrap().is_none_selected());
        let col = e.evaluate(&b).unwrap();
        assert_eq!(col, ColumnData::Bool(vec![false; 4]));
        let o = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::lit(2i64)),
            BinaryOp::Or,
            Expr::Literal(Value::Null),
        );
        assert_eq!(
            o.evaluate_predicate(&b).unwrap().to_bools(),
            vec![false, false, true, true]
        );
    }

    #[test]
    fn display_round_trips_shape() {
        let e = Expr::binary(Expr::col("a"), BinaryOp::LtEq, Expr::lit("z"));
        assert_eq!(e.to_string(), "(a <= 'z')");
    }
}
