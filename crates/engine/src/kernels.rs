//! Type-specialized compute kernels.
//!
//! Every kernel takes whole columns and runs a tight loop over the native
//! representation (`i64`/`f64`/`&str`/`bool`) — no per-row [`Value`]
//! construction, no per-row allocation. Comparison semantics are exactly
//! [`Value::total_cmp`]'s (numeric types compare numerically across
//! Int/Float; mismatched types compare by type rank), so the vectorized path
//! and the retained `evaluate_row` path agree bit-for-bit.

use std::cmp::Ordering;

use taster_storage::mask::SelectionMask;
use taster_storage::{ColumnData, Value};

use crate::error::EngineError;
use crate::expr::BinaryOp;

/// Does `ord` satisfy the comparison `op`?
#[inline(always)]
fn ord_matches(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => false,
    }
}

/// Rank used by `Value::total_cmp` for cross-type comparisons.
fn type_rank_of_column(col: &ColumnData) -> u8 {
    match col {
        ColumnData::Bool(_) => 1,
        ColumnData::Int64(_) | ColumnData::Float64(_) => 2,
        ColumnData::Utf8(_) | ColumnData::Dict { .. } => 3,
    }
}

fn type_rank_of_value(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Str(_) => 3,
    }
}

fn constant_mask(len: usize, selected: bool) -> SelectionMask {
    if selected {
        SelectionMask::all(len)
    } else {
        SelectionMask::none(len)
    }
}

#[inline(always)]
fn mask_from<F: FnMut(usize) -> bool>(len: usize, mut f: F) -> SelectionMask {
    let mut mask = SelectionMask::none(len);
    for i in 0..len {
        if f(i) {
            mask.set(i);
        }
    }
    mask
}

/// Compare every row of `col` against a literal, producing a selection mask.
pub fn compare_column_literal(col: &ColumnData, op: BinaryOp, lit: &Value) -> SelectionMask {
    debug_assert!(op.is_comparison());
    let n = col.len();
    match (col, lit) {
        (ColumnData::Int64(v), Value::Int(b)) => mask_from(n, |i| ord_matches(op, v[i].cmp(b))),
        (ColumnData::Int64(v), Value::Float(b)) => {
            mask_from(n, |i| ord_matches(op, (v[i] as f64).total_cmp(b)))
        }
        (ColumnData::Float64(v), Value::Int(b)) => {
            let b = *b as f64;
            mask_from(n, |i| ord_matches(op, v[i].total_cmp(&b)))
        }
        (ColumnData::Float64(v), Value::Float(b)) => {
            mask_from(n, |i| ord_matches(op, v[i].total_cmp(b)))
        }
        (ColumnData::Utf8(v), Value::Str(b)) => {
            mask_from(n, |i| ord_matches(op, v[i].as_str().cmp(b.as_str())))
        }
        (ColumnData::Dict { codes, dict }, Value::Str(b)) => {
            compare_dict_literal(codes, dict, op, b)
        }
        (ColumnData::Bool(v), Value::Bool(b)) => mask_from(n, |i| ord_matches(op, v[i].cmp(b))),
        // Mismatched types: Value::total_cmp orders by type rank, so the
        // outcome is the same for every row.
        (col, lit) => {
            let ord = type_rank_of_column(col).cmp(&type_rank_of_value(lit));
            constant_mask(n, ord_matches(op, ord))
        }
    }
}

/// Dictionary fast path for `col op literal`: bind the literal to a code (or
/// code boundary) once via binary search over the sorted-unique dictionary,
/// then run a tight loop over the dense `u32` codes. The encoding is
/// order-preserving, so code order == string order and every comparison op
/// reduces to integer compares — no per-row string walk.
fn compare_dict_literal(
    codes: &[u32],
    dict: &taster_storage::Dictionary,
    op: BinaryOp,
    lit: &str,
) -> SelectionMask {
    let n = codes.len();
    // `lb` is the first code whose string is >= lit; `present` says whether
    // that code *is* lit. Together they bound every comparison.
    let lb = dict.lower_bound(lit);
    let present = (lb as usize) < dict.len() && dict.get(lb) == lit;
    match op {
        BinaryOp::Eq => {
            if present {
                mask_from(n, |i| codes[i] == lb)
            } else {
                constant_mask(n, false)
            }
        }
        BinaryOp::NotEq => {
            if present {
                mask_from(n, |i| codes[i] != lb)
            } else {
                constant_mask(n, true)
            }
        }
        BinaryOp::Lt => mask_from(n, |i| codes[i] < lb),
        BinaryOp::GtEq => mask_from(n, |i| codes[i] >= lb),
        BinaryOp::LtEq => {
            let ub = lb + u32::from(present); // first code strictly > lit
            mask_from(n, |i| codes[i] < ub)
        }
        BinaryOp::Gt => {
            let ub = lb + u32::from(present);
            mask_from(n, |i| codes[i] >= ub)
        }
        _ => constant_mask(n, false),
    }
}

/// Compare two equal-length columns row-wise, producing a selection mask.
pub fn compare_columns(left: &ColumnData, op: BinaryOp, right: &ColumnData) -> SelectionMask {
    debug_assert!(op.is_comparison());
    debug_assert_eq!(left.len(), right.len());
    let n = left.len();
    match (left, right) {
        (ColumnData::Int64(a), ColumnData::Int64(b)) => {
            mask_from(n, |i| ord_matches(op, a[i].cmp(&b[i])))
        }
        (ColumnData::Int64(a), ColumnData::Float64(b)) => {
            mask_from(n, |i| ord_matches(op, (a[i] as f64).total_cmp(&b[i])))
        }
        (ColumnData::Float64(a), ColumnData::Int64(b)) => {
            mask_from(n, |i| ord_matches(op, a[i].total_cmp(&(b[i] as f64))))
        }
        (ColumnData::Float64(a), ColumnData::Float64(b)) => {
            mask_from(n, |i| ord_matches(op, a[i].total_cmp(&b[i])))
        }
        (ColumnData::Utf8(a), ColumnData::Utf8(b)) => {
            mask_from(n, |i| ord_matches(op, a[i].cmp(&b[i])))
        }
        (
            ColumnData::Dict { codes: a, dict: da },
            ColumnData::Dict { codes: b, dict: db },
        ) => {
            // Same dictionary (the common case: two references into one
            // partition): order-preserving codes compare directly. Different
            // dictionaries: codes aren't comparable, fall back to strings.
            if std::sync::Arc::ptr_eq(da, db) || da == db {
                mask_from(n, |i| ord_matches(op, a[i].cmp(&b[i])))
            } else {
                mask_from(n, |i| ord_matches(op, da.get(a[i]).cmp(db.get(b[i]))))
            }
        }
        (ColumnData::Dict { codes, dict }, ColumnData::Utf8(b)) => {
            mask_from(n, |i| ord_matches(op, dict.get(codes[i]).cmp(b[i].as_str())))
        }
        (ColumnData::Utf8(a), ColumnData::Dict { codes, dict }) => {
            mask_from(n, |i| ord_matches(op, a[i].as_str().cmp(dict.get(codes[i]))))
        }
        (ColumnData::Bool(a), ColumnData::Bool(b)) => {
            mask_from(n, |i| ord_matches(op, a[i].cmp(&b[i])))
        }
        (a, b) => {
            let ord = type_rank_of_column(a).cmp(&type_rank_of_column(b));
            constant_mask(n, ord_matches(op, ord))
        }
    }
}

/// View of a column as `f64` values for arithmetic; `None` for strings.
enum NumericCol<'a> {
    Int(&'a [i64]),
    Float(&'a [f64]),
    Bool(&'a [bool]),
}

impl NumericCol<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        match self {
            NumericCol::Int(v) => v[i] as f64,
            NumericCol::Float(v) => v[i],
            NumericCol::Bool(v) => {
                if v[i] {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

fn numeric_view<'a>(col: &'a ColumnData, op: BinaryOp) -> Result<NumericCol<'a>, EngineError> {
    match col {
        ColumnData::Int64(v) => Ok(NumericCol::Int(v)),
        ColumnData::Float64(v) => Ok(NumericCol::Float(v)),
        ColumnData::Bool(v) => Ok(NumericCol::Bool(v)),
        ColumnData::Utf8(_) | ColumnData::Dict { .. } => Err(EngineError::Execution(format!(
            "arithmetic {op} on non-numeric column"
        ))),
    }
}

#[inline(always)]
fn apply_arith(a: f64, op: BinaryOp, b: f64) -> Result<f64, EngineError> {
    Ok(match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => {
            if b == 0.0 {
                return Err(EngineError::Execution("division by zero".to_string()));
            }
            a / b
        }
        _ => unreachable!("apply_arith called with non-arithmetic op"),
    })
}

/// Row-wise arithmetic over two equal-length columns, always yielding
/// `Float64` (matching scalar `eval_binary` semantics).
pub fn arith_columns(
    left: &ColumnData,
    op: BinaryOp,
    right: &ColumnData,
) -> Result<ColumnData, EngineError> {
    debug_assert_eq!(left.len(), right.len());
    let l = numeric_view(left, op)?;
    let r = numeric_view(right, op)?;
    let n = left.len();
    // Fast path for the dominant case: both sides already f64 and no
    // division (no per-row error check needed).
    if let (NumericCol::Float(a), NumericCol::Float(b)) = (&l, &r) {
        if op != BinaryOp::Div {
            let out: Vec<f64> = match op {
                BinaryOp::Add => a.iter().zip(*b).map(|(x, y)| x + y).collect(),
                BinaryOp::Sub => a.iter().zip(*b).map(|(x, y)| x - y).collect(),
                _ => a.iter().zip(*b).map(|(x, y)| x * y).collect(),
            };
            return Ok(ColumnData::Float64(out));
        }
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(apply_arith(l.get(i), op, r.get(i))?);
    }
    Ok(ColumnData::Float64(out))
}

/// Row-wise arithmetic between a column and a scalar (either side).
pub fn arith_column_scalar(
    left: &ColumnData,
    op: BinaryOp,
    scalar: &Value,
    scalar_on_left: bool,
) -> Result<ColumnData, EngineError> {
    let l = numeric_view(left, op)?;
    let Some(s) = scalar.as_f64() else {
        return Err(EngineError::Execution(format!(
            "arithmetic on non-numeric values ({scalar})"
        )));
    };
    let n = left.len();
    let mut out = Vec::with_capacity(n);
    if scalar_on_left {
        for i in 0..n {
            out.push(apply_arith(s, op, l.get(i))?);
        }
    } else {
        for i in 0..n {
            out.push(apply_arith(l.get(i), op, s)?);
        }
    }
    Ok(ColumnData::Float64(out))
}

/// Truthiness of a column under `Value::as_bool().unwrap_or(false)`:
/// booleans pass through, every other type is `false`.
fn truthiness(col: &ColumnData) -> SelectionMask {
    match col {
        ColumnData::Bool(v) => SelectionMask::from_bools(v),
        other => SelectionMask::none(other.len()),
    }
}

/// Mask of rows whose value in a `Bool` column is true; non-bool columns
/// select nothing (scalar predicate semantics).
pub fn column_truth_mask(col: &ColumnData) -> SelectionMask {
    truthiness(col)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints() -> ColumnData {
        ColumnData::Int64(vec![1, 2, 3, 4])
    }

    #[test]
    fn compare_int_column_with_float_literal_uses_numeric_order() {
        let m = compare_column_literal(&ints(), BinaryOp::Gt, &Value::Float(2.5));
        assert_eq!(m.to_bools(), vec![false, false, true, true]);
        let m = compare_column_literal(&ints(), BinaryOp::Eq, &Value::Float(3.0));
        assert_eq!(m.to_bools(), vec![false, false, true, false]);
    }

    #[test]
    fn mismatched_types_follow_type_rank() {
        // Int column (rank 2) vs Str literal (rank 3): every row is Less.
        let m = compare_column_literal(&ints(), BinaryOp::Lt, &Value::Str("x".into()));
        assert!(m.is_all_selected());
        let m = compare_column_literal(&ints(), BinaryOp::Eq, &Value::Str("x".into()));
        assert!(m.is_none_selected());
    }

    #[test]
    fn column_column_comparison_and_arith() {
        let a = ColumnData::Int64(vec![1, 5, 3]);
        let b = ColumnData::Float64(vec![2.0, 4.0, 3.0]);
        let m = compare_columns(&a, BinaryOp::Lt, &b);
        assert_eq!(m.to_bools(), vec![true, false, false]);
        let s = arith_columns(&a, BinaryOp::Add, &b).unwrap();
        assert_eq!(s, ColumnData::Float64(vec![3.0, 9.0, 6.0]));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let a = ColumnData::Int64(vec![1, 2]);
        let z = ColumnData::Int64(vec![1, 0]);
        assert!(arith_columns(&a, BinaryOp::Div, &z).is_err());
        assert!(arith_column_scalar(&a, BinaryOp::Div, &Value::Int(0), false).is_err());
        assert!(arith_column_scalar(&a, BinaryOp::Div, &Value::Int(2), false).is_ok());
    }

    const COMPARISONS: [BinaryOp; 6] = [
        BinaryOp::Eq,
        BinaryOp::NotEq,
        BinaryOp::Lt,
        BinaryOp::LtEq,
        BinaryOp::Gt,
        BinaryOp::GtEq,
    ];

    fn strs(vals: &[&str]) -> ColumnData {
        ColumnData::Utf8(vals.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn dict_literal_comparisons_match_utf8_for_every_op() {
        let raw = strs(&["pear", "apple", "", "quince", "apple", "fig"]);
        let dict = raw.dict_encode();
        // Present, absent-in-the-middle, below-all and above-all literals.
        for lit in ["apple", "banana", "", "zzz", "fig"] {
            for op in COMPARISONS {
                let r = compare_column_literal(&raw, op, &Value::Str(lit.into()));
                let d = compare_column_literal(&dict, op, &Value::Str(lit.into()));
                assert_eq!(
                    r.to_bools(),
                    d.to_bools(),
                    "op {op:?} literal {lit:?} diverged"
                );
            }
        }
        // Mismatched literal types hit the constant-mask path identically.
        let r = compare_column_literal(&raw, BinaryOp::Gt, &Value::Int(1));
        let d = compare_column_literal(&dict, BinaryOp::Gt, &Value::Int(1));
        assert_eq!(r.to_bools(), d.to_bools());
        assert!(d.is_all_selected(), "rank 3 > rank 2 on every row");
    }

    #[test]
    fn dict_column_comparisons_match_utf8_in_every_pairing() {
        let a = strs(&["b", "a", "c", "a", "b"]);
        let b = strs(&["a", "a", "d", "b", "b"]);
        let (da, db) = (a.dict_encode(), b.dict_encode());
        for op in COMPARISONS {
            let expect = compare_columns(&a, op, &b).to_bools();
            // dict/dict with *different* dictionaries, dict/utf8, utf8/dict.
            assert_eq!(compare_columns(&da, op, &db).to_bools(), expect, "{op:?}");
            assert_eq!(compare_columns(&da, op, &b).to_bools(), expect, "{op:?}");
            assert_eq!(compare_columns(&a, op, &db).to_bools(), expect, "{op:?}");
        }
        // Same dictionary on both sides takes the raw code compare.
        for op in COMPARISONS {
            let expect = compare_columns(&a, op, &a).to_bools();
            assert_eq!(compare_columns(&da, op, &da).to_bools(), expect, "{op:?}");
        }
    }

    #[test]
    fn dict_arithmetic_is_rejected_like_utf8() {
        let d = strs(&["a", "b"]).dict_encode();
        let i = ColumnData::Int64(vec![1, 2]);
        assert!(arith_columns(&d, BinaryOp::Add, &i).is_err());
        assert!(column_truth_mask(&d).is_none_selected());
    }

    #[test]
    fn truth_mask_treats_non_bool_as_false() {
        let t = ColumnData::Bool(vec![true, true, false]);
        let i = ColumnData::Int64(vec![1, 1, 1]);
        assert_eq!(column_truth_mask(&t).to_bools(), vec![true, true, false]);
        assert!(column_truth_mask(&i).is_none_selected());
    }
}
