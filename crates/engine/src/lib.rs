//! Analytical query engine substrate for the Taster reproduction.
//!
//! The original Taster is implemented inside SparkSQL/Catalyst. The paper
//! stresses that its techniques "are not limited to SparkSQL, and are
//! applicable to any query processing system – even centralized ones"; this
//! crate is that centralized query processing system:
//!
//! * [`expr`] — scalar expressions and predicates evaluated over columnar
//!   batches,
//! * [`sql`] — a SQL subset parser including the paper's
//!   `ERROR WITHIN x% CONFIDENCE y%` clause,
//! * [`logical`] — logical plans in which synopsis operators (samplers,
//!   synopsis scans, sketch-joins) are first-class nodes, exactly as Section
//!   IV requires,
//! * [`optimizer`] — rule-based rewrites (predicate pushdown, projection
//!   pruning) applied to every plan,
//! * [`physical`] — the partition-aware executor, with weight-aware
//!   aggregation (Horvitz–Thompson scaling + per-group CLT error) and
//!   byproduct synopsis collection,
//! * [`cost`] — the cost model used by both the exact planner and Taster's
//!   cost-based planner,
//! * [`context`] — execution context carrying the catalog, the I/O model,
//!   the synopsis provider and execution metrics,
//! * [`shared_scan`] — the attach/detach registry that lets concurrent
//!   queries over the same table snapshot share one morsel pass.

#![warn(missing_docs)]

pub mod context;
pub mod cost;
pub mod error;
pub mod expr;
pub mod kernels;
pub mod logical;
pub mod optimizer;
pub mod parallel;
pub mod physical;
pub mod result;
pub mod shared_scan;
pub mod sql;

pub use context::{ExecutionContext, SynopsisLocation, SynopsisProvider};
pub use cost::{CardinalityProvider, CostEstimator};
pub use error::EngineError;
pub use expr::{BinaryOp, Expr};
pub use logical::{
    AccessPath, AggExpr, AggFunc, LogicalPlan, SampleMethod, SketchRef, SynopsisPayload,
};
pub use optimizer::index_access_path;
pub use result::{GroupResult, QueryResult};
pub use shared_scan::{SharedScanRegistry, SharedScanStats};
pub use sql::{
    parse_query, parse_statement, DeleteStatement, SelectQuery, Statement, UpdateStatement,
};
