//! Logical query plans with synopsis operators as first-class nodes.
//!
//! Section IV of the paper: "Synopses in Taster are promoted to first-class
//! citizens: they are included as approximate operators in the logical query
//! plans, costed as all other logical operators, and transformed to fully
//! pipelined and distributable code during the physical plan generation."
//! The [`LogicalPlan`] enum therefore contains, next to the classical
//! relational operators, a [`LogicalPlan::Sample`] operator (online sampler
//! injection), a [`LogicalPlan::SynopsisScan`] operator (reuse of a
//! materialized synopsis) and a [`LogicalPlan::SketchJoinAgg`] operator.

use std::fmt;

use serde::{Deserialize, Serialize};
use taster_storage::Value;
use taster_synopses::estimator::AggregateKind;
use taster_synopses::sketch_join::SketchJoin;
use taster_synopses::WeightedSample;

use crate::expr::{BinaryOp, Expr};

/// How a [`LogicalPlan::Scan`] physically reaches its rows.
///
/// The access-path taxonomy follows the classic planner design (and
/// ROADMAP item 2): the default is a zone-pruned full scan; when the scanned
/// table carries sparse secondary indexes
/// ([`taster_storage::Table::create_index`]), equality and range predicates
/// can instead probe the per-partition indexes, and conjunctions /
/// disjunctions of indexable terms intersect / union the probed row sets.
/// Index paths are a *cost* choice, never a correctness one: the executor
/// re-evaluates the full filter over the probed superset, and partitions
/// without an index slot (the unsealed tail) fall back to a scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessPath {
    /// Scan every partition the zone maps cannot exclude (the default; a
    /// `Scan` with no access path behaves identically).
    ZonePrunedScan,
    /// Probe a secondary index for rows where `column = value`.
    IndexEq {
        /// Indexed column.
        column: String,
        /// Probe value.
        value: Value,
    },
    /// Probe a secondary index for a one-sided range `column op value`
    /// (`op` is one of `<`, `<=`, `>`, `>=`).
    IndexRange {
        /// Indexed column.
        column: String,
        /// Comparison operator.
        op: BinaryOp,
        /// Range bound.
        value: Value,
    },
    /// Intersect the row sets of several index probes (an indexable
    /// conjunction; non-indexable conjuncts stay in the residual filter).
    IndexAnd(Vec<AccessPath>),
    /// Union the row sets of several index probes. Only valid when *every*
    /// branch of the disjunction is indexable — a missing branch would make
    /// the union an under-approximation.
    IndexOr(Vec<AccessPath>),
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::ZonePrunedScan => f.write_str("zonescan"),
            AccessPath::IndexEq { column, value } => write!(f, "ix_eq({column}={value})"),
            AccessPath::IndexRange { column, op, value } => {
                write!(f, "ix_range({column}{op}{value})")
            }
            AccessPath::IndexAnd(children) => {
                let parts: Vec<String> = children.iter().map(|c| c.to_string()).collect();
                write!(f, "ix_and({})", parts.join(","))
            }
            AccessPath::IndexOr(children) => {
                let parts: Vec<String> = children.iter().map(|c| c.to_string()).collect();
                write!(f, "ix_or({})", parts.join(","))
            }
        }
    }
}

/// Aggregate functions exposed at the SQL level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// COUNT(*) / COUNT(col).
    Count,
    /// SUM(col).
    Sum,
    /// AVG(col).
    Avg,
    /// MIN(col).
    Min,
    /// MAX(col).
    Max,
}

impl AggFunc {
    /// Mapping to the estimator-side kind.
    pub fn kind(self) -> AggregateKind {
        match self {
            AggFunc::Count => AggregateKind::Count,
            AggFunc::Sum => AggregateKind::Sum,
            AggFunc::Avg => AggregateKind::Avg,
            AggFunc::Min => AggregateKind::Min,
            AggFunc::Max => AggregateKind::Max,
        }
    }

    /// `true` if the aggregate benefits from approximation (MIN/MAX are kept
    /// exact, mirroring the paper's focus on COUNT/SUM/AVG).
    pub fn is_approximable(self) -> bool {
        matches!(self, AggFunc::Count | AggFunc::Sum | AggFunc::Avg)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One aggregate expression in an aggregation operator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column (None only for COUNT(*)).
    pub column: Option<String>,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Create an aggregate expression with a default alias.
    pub fn new(func: AggFunc, column: Option<String>) -> Self {
        let alias = match &column {
            Some(c) => format!("{}({})", func, c).to_lowercase(),
            None => format!("{}(*)", func).to_lowercase(),
        };
        Self {
            func,
            column,
            alias,
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.column {
            Some(c) => write!(f, "{}({})", self.func, c),
            None => write!(f, "{}(*)", self.func),
        }
    }
}

/// How an online sampler node should sample its input (Section II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SampleMethod {
    /// Uniform Bernoulli sampling with probability `p`.
    Uniform {
        /// Pass-through probability.
        probability: f64,
    },
    /// Distinct sampler guaranteeing `delta` rows per combination of the
    /// stratification columns, with probability `probability` afterwards.
    Distinct {
        /// Stratification attributes.
        stratification: Vec<String>,
        /// Minimum rows per distinct combination.
        delta: usize,
        /// Pass-through probability beyond the minimum.
        probability: f64,
    },
}

impl SampleMethod {
    /// Stratification attributes (empty for uniform sampling).
    pub fn stratification(&self) -> &[String] {
        match self {
            SampleMethod::Uniform { .. } => &[],
            SampleMethod::Distinct { stratification, .. } => stratification,
        }
    }

    /// The pass-through probability.
    pub fn probability(&self) -> f64 {
        match self {
            SampleMethod::Uniform { probability } => *probability,
            SampleMethod::Distinct { probability, .. } => *probability,
        }
    }
}

/// Reference to a sketch used by a sketch-join node: either one that must be
/// built from a relation during this query, or one already materialized and
/// resolvable through the [`crate::context::SynopsisProvider`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SketchRef {
    /// Build the sketch from the named table during execution.
    Build {
        /// Table to summarize.
        table: String,
        /// Join key columns on the summarized side.
        key_columns: Vec<String>,
        /// Value column carried by the sketch (None for COUNT-only).
        value_column: Option<String>,
    },
    /// Use an already materialized sketch registered under this id.
    Materialized {
        /// Synopsis id in the provider.
        id: u64,
    },
}

/// A synopsis built as a byproduct of executing a plan, handed back to the
/// caller (Taster stores these in its synopsis buffer).
#[derive(Debug, Clone)]
pub enum SynopsisPayload {
    /// A weighted sample of the node's input.
    Sample(WeightedSample),
    /// A sketch-join summary of one join side.
    Sketch(SketchJoin),
}

impl SynopsisPayload {
    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            SynopsisPayload::Sample(s) => s.size_bytes(),
            SynopsisPayload::Sketch(s) => s.size_bytes(),
        }
    }
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// Scan a base table, optionally filtering and projecting at the leaf.
    Scan {
        /// Table name.
        table: String,
        /// Optional pushed-down filter.
        filter: Option<Expr>,
        /// Optional pushed-down projection.
        projection: Option<Vec<String>>,
        /// Physical access path chosen by the cost-based planner. `None`
        /// (the default) is the zone-pruned scan; index paths instruct the
        /// executor to probe secondary indexes and re-filter the superset.
        #[serde(default)]
        access: Option<AccessPath>,
    },
    /// Filter rows by a predicate.
    Filter {
        /// The predicate.
        predicate: Expr,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Keep only the named columns.
    Project {
        /// Output columns.
        columns: Vec<String>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Equi-join two inputs.
    Join {
        /// Left input (the side carried through to the aggregation).
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join keys on the left input.
        left_keys: Vec<String>,
        /// Join keys on the right input.
        right_keys: Vec<String>,
    },
    /// Group-by aggregation. When the input carries a `__weight` column the
    /// operator performs Horvitz–Thompson scaling and per-group error
    /// estimation.
    Aggregate {
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregate expressions.
        aggregates: Vec<AggExpr>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Online sampler injection: sample the input, emit weighted rows, and
    /// hand the built sample back as a byproduct for materialization.
    Sample {
        /// Sampling method and configuration.
        method: SampleMethod,
        /// An identifier chosen by the planner so the byproduct can be
        /// matched back to its synopsis descriptor.
        synopsis_id: u64,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Scan a materialized synopsis (a weighted sample) instead of its
    /// defining subplan.
    SynopsisScan {
        /// Synopsis id resolvable through the provider.
        id: u64,
        /// Residual filter to apply on top of the synopsis (subsumption may
        /// require re-filtering, Section IV-A "matching").
        filter: Option<Expr>,
    },
    /// Aggregate over a join where one side is summarized by a sketch-join
    /// synopsis: the probe side is scanned (or sampled) and each row is
    /// looked up in the sketch.
    SketchJoinAgg {
        /// The probe-side input plan.
        probe: Box<LogicalPlan>,
        /// Join keys on the probe side.
        probe_keys: Vec<String>,
        /// The sketch summarizing the other side.
        sketch: SketchRef,
        /// Identifier for a sketch built during this query (byproduct).
        synopsis_id: u64,
        /// Grouping columns (all from the probe side).
        group_by: Vec<String>,
        /// Aggregate expressions (COUNT/SUM/AVG over the sketched side).
        aggregates: Vec<AggExpr>,
    },
    /// Keep only the first `n` rows.
    Limit {
        /// Row limit.
        n: usize,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Names of all base tables referenced by the plan.
    pub fn base_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            LogicalPlan::Scan { table, .. } => out.push(table.clone()),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sample { input, .. }
            | LogicalPlan::Limit { input, .. } => input.collect_tables(out),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
            LogicalPlan::SketchJoinAgg { probe, sketch, .. } => {
                probe.collect_tables(out);
                if let SketchRef::Build { table, .. } = sketch {
                    out.push(table.clone());
                }
            }
            LogicalPlan::SynopsisScan { .. } => {}
        }
    }

    /// All non-trivial access paths annotated on scans anywhere in the plan,
    /// in plan-tree order. Empty for plans that read via plain zone-pruned
    /// scans; used by the service layer to label which access path a chosen
    /// plan actually uses.
    pub fn access_paths(&self) -> Vec<&AccessPath> {
        let mut out = Vec::new();
        self.collect_access_paths(&mut out);
        out
    }

    fn collect_access_paths<'a>(&'a self, out: &mut Vec<&'a AccessPath>) {
        match self {
            LogicalPlan::Scan { access, .. } => {
                if let Some(path) = access {
                    if *path != AccessPath::ZonePrunedScan {
                        out.push(path);
                    }
                }
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sample { input, .. }
            | LogicalPlan::Limit { input, .. } => input.collect_access_paths(out),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_access_paths(out);
                right.collect_access_paths(out);
            }
            LogicalPlan::SketchJoinAgg { probe, .. } => probe.collect_access_paths(out),
            LogicalPlan::SynopsisScan { .. } => {}
        }
    }

    /// `true` if the plan contains any synopsis operator (sampler, synopsis
    /// scan or sketch-join).
    pub fn is_approximate(&self) -> bool {
        match self {
            LogicalPlan::Sample { .. }
            | LogicalPlan::SynopsisScan { .. }
            | LogicalPlan::SketchJoinAgg { .. } => true,
            LogicalPlan::Scan { .. } => false,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Limit { input, .. } => input.is_approximate(),
            LogicalPlan::Join { left, right, .. } => left.is_approximate() || right.is_approximate(),
        }
    }

    /// A canonical, order-insensitive-ish textual fingerprint of the plan,
    /// used as the identity of the logical subplan a synopsis summarizes
    /// (Section IV-A: "each synopsis ... corresponds to a unique logical
    /// subplan — the one of which the results it summarizes").
    pub fn fingerprint(&self) -> String {
        match self {
            LogicalPlan::Scan {
                table,
                filter,
                projection,
                access,
            } => {
                let f = filter.as_ref().map(|e| e.to_string()).unwrap_or_default();
                let p = projection
                    .as_ref()
                    .map(|cols| cols.join(","))
                    .unwrap_or_else(|| "*".to_string());
                // The access path is appended only when set: a plain scan's
                // fingerprint is byte-identical to what it was before access
                // paths existed, so materialized synopsis identities (which
                // embed scan fingerprints) survive the planner upgrade.
                match access {
                    Some(a) => format!("scan({table};{f};{p};@{a})"),
                    None => format!("scan({table};{f};{p})"),
                }
            }
            LogicalPlan::Filter { predicate, input } => {
                format!("filter({};{})", predicate, input.fingerprint())
            }
            LogicalPlan::Project { columns, input } => {
                format!("project({};{})", columns.join(","), input.fingerprint())
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => format!(
                "join({}={};{};{})",
                left_keys.join(","),
                right_keys.join(","),
                left.fingerprint(),
                right.fingerprint()
            ),
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => {
                let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
                format!(
                    "agg({};{};{})",
                    group_by.join(","),
                    aggs.join(","),
                    input.fingerprint()
                )
            }
            LogicalPlan::Sample {
                method,
                input,
                ..
            } => {
                let strat = method.stratification().join(",");
                format!("sample({strat};{})", input.fingerprint())
            }
            LogicalPlan::SynopsisScan { id, filter } => {
                let f = filter.as_ref().map(|e| e.to_string()).unwrap_or_default();
                format!("synopsis({id};{f})")
            }
            LogicalPlan::SketchJoinAgg {
                probe,
                probe_keys,
                sketch,
                group_by,
                aggregates,
                ..
            } => {
                let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
                let sk = match sketch {
                    SketchRef::Build {
                        table,
                        key_columns,
                        value_column,
                    } => format!(
                        "build({table};{};{})",
                        key_columns.join(","),
                        value_column.clone().unwrap_or_default()
                    ),
                    SketchRef::Materialized { id } => format!("mat({id})"),
                };
                format!(
                    "sketchjoin({};{sk};{};{};{})",
                    probe_keys.join(","),
                    group_by.join(","),
                    aggs.join(","),
                    probe.fingerprint()
                )
            }
            LogicalPlan::Limit { n, input } => format!("limit({n};{})", input.fingerprint()),
        }
    }

    /// Pretty-print the plan as an indented tree (EXPLAIN-style output).
    pub fn display_tree(&self) -> String {
        let mut out = String::new();
        self.write_tree(&mut out, 0);
        out
    }

    fn write_tree(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Scan {
                table,
                filter,
                projection,
                access,
            } => {
                out.push_str(&format!("{pad}Scan: {table}"));
                if let Some(f) = filter {
                    out.push_str(&format!(" filter={f}"));
                }
                if let Some(p) = projection {
                    out.push_str(&format!(" projection=[{}]", p.join(", ")));
                }
                if let Some(a) = access {
                    out.push_str(&format!(" access={a}"));
                }
                out.push('\n');
            }
            LogicalPlan::Filter { predicate, input } => {
                out.push_str(&format!("{pad}Filter: {predicate}\n"));
                input.write_tree(out, indent + 1);
            }
            LogicalPlan::Project { columns, input } => {
                out.push_str(&format!("{pad}Project: [{}]\n", columns.join(", ")));
                input.write_tree(out, indent + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                out.push_str(&format!(
                    "{pad}Join: {} = {}\n",
                    left_keys.join(", "),
                    right_keys.join(", ")
                ));
                left.write_tree(out, indent + 1);
                right.write_tree(out, indent + 1);
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => {
                let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate: group=[{}] aggs=[{}]\n",
                    group_by.join(", "),
                    aggs.join(", ")
                ));
                input.write_tree(out, indent + 1);
            }
            LogicalPlan::Sample {
                method,
                synopsis_id,
                input,
            } => {
                out.push_str(&format!(
                    "{pad}Sample(id={synopsis_id}): p={} strat=[{}]\n",
                    method.probability(),
                    method.stratification().join(", ")
                ));
                input.write_tree(out, indent + 1);
            }
            LogicalPlan::SynopsisScan { id, filter } => {
                out.push_str(&format!("{pad}SynopsisScan: id={id}"));
                if let Some(f) = filter {
                    out.push_str(&format!(" filter={f}"));
                }
                out.push('\n');
            }
            LogicalPlan::SketchJoinAgg {
                probe,
                probe_keys,
                group_by,
                aggregates,
                ..
            } => {
                let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!(
                    "{pad}SketchJoinAgg: keys=[{}] group=[{}] aggs=[{}]\n",
                    probe_keys.join(", "),
                    group_by.join(", "),
                    aggs.join(", ")
                ));
                probe.write_tree(out, indent + 1);
            }
            LogicalPlan::Limit { n, input } => {
                out.push_str(&format!("{pad}Limit: {n}\n"));
                input.write_tree(out, indent + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinaryOp, Expr};

    fn plan() -> LogicalPlan {
        LogicalPlan::Aggregate {
            group_by: vec!["g".into()],
            aggregates: vec![AggExpr::new(AggFunc::Sum, Some("v".into()))],
            input: Box::new(LogicalPlan::Join {
                left: Box::new(LogicalPlan::Scan {
                    table: "r".into(),
                    filter: Some(Expr::binary(Expr::col("x"), BinaryOp::Gt, Expr::lit(1i64))),
                    projection: None,
                    access: None,
                }),
                right: Box::new(LogicalPlan::Scan {
                    table: "s".into(),
                    filter: None,
                    projection: None,
                    access: None,
                }),
                left_keys: vec!["k".into()],
                right_keys: vec!["k".into()],
            }),
        }
    }

    #[test]
    fn base_tables_and_approximate_flag() {
        let p = plan();
        assert_eq!(p.base_tables(), vec!["r".to_string(), "s".to_string()]);
        assert!(!p.is_approximate());
        let approx = LogicalPlan::Sample {
            method: SampleMethod::Uniform { probability: 0.1 },
            synopsis_id: 1,
            input: Box::new(p),
        };
        assert!(approx.is_approximate());
    }

    #[test]
    fn fingerprints_identify_identical_subplans() {
        assert_eq!(plan().fingerprint(), plan().fingerprint());
        let other = LogicalPlan::Scan {
            table: "r".into(),
            filter: None,
            projection: None,
            access: None,
        };
        assert_ne!(plan().fingerprint(), other.fingerprint());
    }

    #[test]
    fn agg_expr_aliases() {
        assert_eq!(AggExpr::new(AggFunc::Count, None).alias, "count(*)");
        assert_eq!(AggExpr::new(AggFunc::Avg, Some("x".into())).alias, "avg(x)");
        assert!(AggFunc::Sum.is_approximable());
        assert!(!AggFunc::Max.is_approximable());
    }

    #[test]
    fn display_tree_contains_all_operators() {
        let text = plan().display_tree();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Join"));
        assert!(text.contains("Scan: r"));
    }

    #[test]
    fn sample_method_accessors() {
        let m = SampleMethod::Distinct {
            stratification: vec!["a".into()],
            delta: 5,
            probability: 0.2,
        };
        assert_eq!(m.stratification(), &["a".to_string()]);
        assert_eq!(m.probability(), 0.2);
        let u = SampleMethod::Uniform { probability: 0.5 };
        assert!(u.stratification().is_empty());
    }
}
