//! Rule-based logical optimizations.
//!
//! Two classic rewrites are applied to every plan before costing and
//! execution: predicate pushdown into scans and merging of adjacent filters.
//! Taster's own synopsis push-down rules (Section IV-A) live in the
//! `taster-core` planner; the rules here are the baseline rewrites any engine
//! (Catalyst included) performs regardless of approximation.

use crate::expr::Expr;
use crate::logical::LogicalPlan;

/// Apply all rewrite rules until a fixpoint (bounded by a small iteration
/// count; the rules strictly shrink the plan so this converges immediately in
/// practice).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = plan;
    for _ in 0..4 {
        let rewritten = push_down_filters(plan.clone());
        if rewritten == plan {
            return plan;
        }
        plan = rewritten;
    }
    plan
}

/// Push `Filter` nodes into the `Scan` leaves they apply to, when every
/// column the predicate references belongs to that scan's table.
fn push_down_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { predicate, input } => {
            let input = push_down_filters(*input);
            try_push(predicate, input)
        }
        LogicalPlan::Project { columns, input } => LogicalPlan::Project {
            columns,
            input: Box::new(push_down_filters(*input)),
        },
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => LogicalPlan::Join {
            left: Box::new(push_down_filters(*left)),
            right: Box::new(push_down_filters(*right)),
            left_keys,
            right_keys,
        },
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input,
        } => LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input: Box::new(push_down_filters(*input)),
        },
        LogicalPlan::Sample {
            method,
            synopsis_id,
            input,
        } => LogicalPlan::Sample {
            method,
            synopsis_id,
            input: Box::new(push_down_filters(*input)),
        },
        LogicalPlan::SketchJoinAgg {
            probe,
            probe_keys,
            sketch,
            synopsis_id,
            group_by,
            aggregates,
        } => LogicalPlan::SketchJoinAgg {
            probe: Box::new(push_down_filters(*probe)),
            probe_keys,
            sketch,
            synopsis_id,
            group_by,
            aggregates,
        },
        LogicalPlan::Limit { n, input } => LogicalPlan::Limit {
            n,
            input: Box::new(push_down_filters(*input)),
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::SynopsisScan { .. }) => leaf,
    }
}

/// Try to sink a predicate into the given (already optimized) input.
fn try_push(predicate: Expr, input: LogicalPlan) -> LogicalPlan {
    match input {
        LogicalPlan::Scan {
            table,
            filter,
            projection,
        } => {
            let filter = match filter {
                Some(existing) => Some(existing.and(predicate)),
                None => Some(predicate),
            };
            LogicalPlan::Scan {
                table,
                filter,
                projection,
            }
        }
        // Merge adjacent filters.
        LogicalPlan::Filter {
            predicate: inner,
            input,
        } => try_push(inner.and(predicate), *input),
        // Push through joins when the predicate only references one side.
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let cols = predicate.referenced_columns();
            let left_has = columns_available(&left, &cols);
            let right_has = columns_available(&right, &cols);
            if left_has && !right_has {
                LogicalPlan::Join {
                    left: Box::new(try_push(predicate, *left)),
                    right,
                    left_keys,
                    right_keys,
                }
            } else if right_has && !left_has {
                LogicalPlan::Join {
                    left,
                    right: Box::new(try_push(predicate, *right)),
                    left_keys,
                    right_keys,
                }
            } else {
                LogicalPlan::Filter {
                    predicate,
                    input: Box::new(LogicalPlan::Join {
                        left,
                        right,
                        left_keys,
                        right_keys,
                    }),
                }
            }
        }
        other => LogicalPlan::Filter {
            predicate,
            input: Box::new(other),
        },
    }
}

/// Best-effort check whether every column in `cols` can be produced by the
/// subplan. Works structurally (scans expose all their table's columns) so it
/// does not need a catalog; when unsure it answers `false`, which only
/// disables the pushdown rather than producing a wrong plan.
fn columns_available(plan: &LogicalPlan, cols: &[String]) -> bool {
    match plan {
        LogicalPlan::Scan { table, .. } => cols.iter().all(|c| column_belongs_to(c, table)),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sample { input, .. }
        | LogicalPlan::Limit { input, .. } => columns_available(input, cols),
        LogicalPlan::Project { columns, .. } => cols.iter().all(|c| columns.contains(c)),
        LogicalPlan::Join { left, right, .. } => cols.iter().all(|c| {
            columns_available(left, std::slice::from_ref(c))
                || columns_available(right, std::slice::from_ref(c))
        }),
        _ => false,
    }
}

/// Heuristic ownership test used when no catalog is available: the benchmark
/// schemas use per-table column prefixes (`l_`, `o_`, `ps_`, ...) so a prefix
/// match is reliable; otherwise be conservative.
fn column_belongs_to(column: &str, table: &str) -> bool {
    let prefix: String = table.chars().take(1).collect();
    column.starts_with(&format!("{prefix}_"))
        || column.starts_with(&format!("{table}_"))
        || column.starts_with(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::logical::{AggExpr, AggFunc};

    fn scan(t: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: t.into(),
            filter: None,
            projection: None,
        }
    }

    #[test]
    fn filter_is_pushed_into_scan() {
        let plan = LogicalPlan::Filter {
            predicate: Expr::binary(Expr::col("orders_x"), BinaryOp::Gt, Expr::lit(3i64)),
            input: Box::new(scan("orders")),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Scan { filter, .. } => assert!(filter.is_some()),
            other => panic!("expected Scan, got {other:?}"),
        }
    }

    #[test]
    fn adjacent_filters_are_merged() {
        let plan = LogicalPlan::Filter {
            predicate: Expr::binary(Expr::col("orders_x"), BinaryOp::Gt, Expr::lit(3i64)),
            input: Box::new(LogicalPlan::Filter {
                predicate: Expr::binary(Expr::col("orders_y"), BinaryOp::Lt, Expr::lit(9i64)),
                input: Box::new(scan("orders")),
            }),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Scan { filter: Some(f), .. } => {
                let cols = f.referenced_columns();
                assert!(cols.contains(&"orders_x".to_string()));
                assert!(cols.contains(&"orders_y".to_string()));
            }
            other => panic!("expected Scan with merged filter, got {other:?}"),
        }
    }

    #[test]
    fn single_side_predicate_pushes_through_join() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("lineitem")),
            right: Box::new(scan("orders")),
            left_keys: vec!["l_orderkey".into()],
            right_keys: vec!["o_orderkey".into()],
        };
        let plan = LogicalPlan::Filter {
            predicate: Expr::binary(Expr::col("o_flag"), BinaryOp::Eq, Expr::lit("A")),
            input: Box::new(join),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Join { right, .. } => match right.as_ref() {
                LogicalPlan::Scan { filter, .. } => assert!(filter.is_some()),
                other => panic!("expected filtered scan on right, got {other:?}"),
            },
            other => panic!("expected Join at root, got {other:?}"),
        }
    }

    #[test]
    fn optimizer_preserves_plan_structure_above_filters() {
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["o_flag".into()],
            aggregates: vec![AggExpr::new(AggFunc::Count, None)],
            input: Box::new(LogicalPlan::Filter {
                predicate: Expr::binary(Expr::col("o_x"), BinaryOp::Eq, Expr::lit(1i64)),
                input: Box::new(scan("orders")),
            }),
        };
        let opt = optimize(plan);
        assert!(matches!(opt, LogicalPlan::Aggregate { .. }));
        assert!(opt.display_tree().contains("Scan: orders filter="));
    }
}
