//! Rule-based logical optimizations.
//!
//! Two classic rewrites are applied to every plan before costing and
//! execution: predicate pushdown into scans and merging of adjacent filters.
//! Taster's own synopsis push-down rules (Section IV-A) live in the
//! `taster-core` planner; the rules here are the baseline rewrites any engine
//! (Catalyst included) performs regardless of approximation.

use crate::expr::{mirror, BinaryOp, Expr};
use crate::logical::{AccessPath, LogicalPlan};

/// Apply all rewrite rules until a fixpoint (bounded by a small iteration
/// count; the rules strictly shrink the plan so this converges immediately in
/// practice).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = plan;
    for _ in 0..4 {
        let rewritten = push_down_filters(plan.clone());
        if rewritten == plan {
            return plan;
        }
        plan = rewritten;
    }
    plan
}

/// Push `Filter` nodes into the `Scan` leaves they apply to, when every
/// column the predicate references belongs to that scan's table.
fn push_down_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { predicate, input } => {
            let input = push_down_filters(*input);
            try_push(predicate, input)
        }
        LogicalPlan::Project { columns, input } => LogicalPlan::Project {
            columns,
            input: Box::new(push_down_filters(*input)),
        },
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => LogicalPlan::Join {
            left: Box::new(push_down_filters(*left)),
            right: Box::new(push_down_filters(*right)),
            left_keys,
            right_keys,
        },
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input,
        } => LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input: Box::new(push_down_filters(*input)),
        },
        LogicalPlan::Sample {
            method,
            synopsis_id,
            input,
        } => LogicalPlan::Sample {
            method,
            synopsis_id,
            input: Box::new(push_down_filters(*input)),
        },
        LogicalPlan::SketchJoinAgg {
            probe,
            probe_keys,
            sketch,
            synopsis_id,
            group_by,
            aggregates,
        } => LogicalPlan::SketchJoinAgg {
            probe: Box::new(push_down_filters(*probe)),
            probe_keys,
            sketch,
            synopsis_id,
            group_by,
            aggregates,
        },
        LogicalPlan::Limit { n, input } => LogicalPlan::Limit {
            n,
            input: Box::new(push_down_filters(*input)),
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::SynopsisScan { .. }) => leaf,
    }
}

/// Try to sink a predicate into the given (already optimized) input.
fn try_push(predicate: Expr, input: LogicalPlan) -> LogicalPlan {
    match input {
        LogicalPlan::Scan {
            table,
            filter,
            projection,
            access,
        } => {
            let filter = match filter {
                Some(existing) => Some(existing.and(predicate)),
                None => Some(predicate),
            };
            // An access path is derived from the *final* pushed-down filter
            // (the planner runs `optimize` first, then annotates), so a scan
            // reached here carries none; thread it through regardless — the
            // executor re-filters with the full predicate, so a stale path
            // could only cost, never corrupt.
            LogicalPlan::Scan {
                table,
                filter,
                projection,
                access,
            }
        }
        // Merge adjacent filters.
        LogicalPlan::Filter {
            predicate: inner,
            input,
        } => try_push(inner.and(predicate), *input),
        // Push through joins when the predicate only references one side.
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let cols = predicate.referenced_columns();
            let left_has = columns_available(&left, &cols);
            let right_has = columns_available(&right, &cols);
            if left_has && !right_has {
                LogicalPlan::Join {
                    left: Box::new(try_push(predicate, *left)),
                    right,
                    left_keys,
                    right_keys,
                }
            } else if right_has && !left_has {
                LogicalPlan::Join {
                    left,
                    right: Box::new(try_push(predicate, *right)),
                    left_keys,
                    right_keys,
                }
            } else {
                LogicalPlan::Filter {
                    predicate,
                    input: Box::new(LogicalPlan::Join {
                        left,
                        right,
                        left_keys,
                        right_keys,
                    }),
                }
            }
        }
        other => LogicalPlan::Filter {
            predicate,
            input: Box::new(other),
        },
    }
}

/// Derive the best structurally-available index [`AccessPath`] for a pushed-
/// down scan predicate, given the set of columns that carry a sparse
/// secondary index on the scanned table.
///
/// The derivation is purely syntactic — costing and fanout gating happen in
/// the cost model ([`crate::cost::CostEstimator::gate_access_path`]); this
/// function only answers "*could* an index serve this predicate at all":
///
/// * `col = lit` on an indexed column → [`AccessPath::IndexEq`],
/// * `col </<=/>/>= lit` on an indexed column → [`AccessPath::IndexRange`]
///   (literal-first comparisons are mirrored, `!=` is never indexable — its
///   complement is almost the whole table),
/// * `a AND b` → the conjunction of whatever sides are indexable (one side is
///   enough: the executor re-applies the full residual predicate),
/// * `a OR b` → [`AccessPath::IndexOr`] only when **both** sides are
///   indexable, because a disjunction with an unindexable arm can match rows
///   the index never returns (the same rule SQLite's OR-optimization uses).
///
/// Returns `None` when no index can serve any required part of the
/// predicate; callers then fall back to [`AccessPath::ZonePrunedScan`].
pub fn index_access_path(filter: &Expr, indexed: &[String]) -> Option<AccessPath> {
    match filter {
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And => {
                let l = index_access_path(left, indexed);
                let r = index_access_path(right, indexed);
                match (l, r) {
                    (Some(a), Some(b)) => {
                        // Flatten nested conjunctions into one IndexAnd.
                        let mut parts = Vec::new();
                        for p in [a, b] {
                            match p {
                                AccessPath::IndexAnd(mut inner) => parts.append(&mut inner),
                                other => parts.push(other),
                            }
                        }
                        Some(AccessPath::IndexAnd(parts))
                    }
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    (None, None) => None,
                }
            }
            BinaryOp::Or => {
                let a = index_access_path(left, indexed)?;
                let b = index_access_path(right, indexed)?;
                let mut parts = Vec::new();
                for p in [a, b] {
                    match p {
                        AccessPath::IndexOr(mut inner) => parts.append(&mut inner),
                        other => parts.push(other),
                    }
                }
                Some(AccessPath::IndexOr(parts))
            }
            _ => {
                let (column, op, value) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(c), Expr::Literal(v)) => (c, *op, v),
                    (Expr::Literal(v), Expr::Column(c)) => (c, mirror(*op), v),
                    _ => return None,
                };
                if !indexed.iter().any(|i| i == column) {
                    return None;
                }
                match op {
                    BinaryOp::Eq => Some(AccessPath::IndexEq {
                        column: column.clone(),
                        value: value.clone(),
                    }),
                    BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                        Some(AccessPath::IndexRange {
                            column: column.clone(),
                            op,
                            value: value.clone(),
                        })
                    }
                    _ => None,
                }
            }
        },
        _ => None,
    }
}

/// Best-effort check whether every column in `cols` can be produced by the
/// subplan. Works structurally (scans expose all their table's columns) so it
/// does not need a catalog; when unsure it answers `false`, which only
/// disables the pushdown rather than producing a wrong plan.
fn columns_available(plan: &LogicalPlan, cols: &[String]) -> bool {
    match plan {
        LogicalPlan::Scan { table, .. } => cols.iter().all(|c| column_belongs_to(c, table)),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sample { input, .. }
        | LogicalPlan::Limit { input, .. } => columns_available(input, cols),
        LogicalPlan::Project { columns, .. } => cols.iter().all(|c| columns.contains(c)),
        LogicalPlan::Join { left, right, .. } => cols.iter().all(|c| {
            columns_available(left, std::slice::from_ref(c))
                || columns_available(right, std::slice::from_ref(c))
        }),
        _ => false,
    }
}

/// Heuristic ownership test used when no catalog is available: the benchmark
/// schemas use per-table column prefixes (`l_`, `o_`, `ps_`, ...) so a prefix
/// match is reliable; otherwise be conservative.
fn column_belongs_to(column: &str, table: &str) -> bool {
    let prefix: String = table.chars().take(1).collect();
    column.starts_with(&format!("{prefix}_"))
        || column.starts_with(&format!("{table}_"))
        || column.starts_with(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::logical::{AggExpr, AggFunc};

    fn scan(t: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: t.into(),
            filter: None,
            projection: None,
            access: None,
        }
    }

    #[test]
    fn filter_is_pushed_into_scan() {
        let plan = LogicalPlan::Filter {
            predicate: Expr::binary(Expr::col("orders_x"), BinaryOp::Gt, Expr::lit(3i64)),
            input: Box::new(scan("orders")),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Scan { filter, .. } => assert!(filter.is_some()),
            other => panic!("expected Scan, got {other:?}"),
        }
    }

    #[test]
    fn adjacent_filters_are_merged() {
        let plan = LogicalPlan::Filter {
            predicate: Expr::binary(Expr::col("orders_x"), BinaryOp::Gt, Expr::lit(3i64)),
            input: Box::new(LogicalPlan::Filter {
                predicate: Expr::binary(Expr::col("orders_y"), BinaryOp::Lt, Expr::lit(9i64)),
                input: Box::new(scan("orders")),
            }),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Scan { filter: Some(f), .. } => {
                let cols = f.referenced_columns();
                assert!(cols.contains(&"orders_x".to_string()));
                assert!(cols.contains(&"orders_y".to_string()));
            }
            other => panic!("expected Scan with merged filter, got {other:?}"),
        }
    }

    #[test]
    fn single_side_predicate_pushes_through_join() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("lineitem")),
            right: Box::new(scan("orders")),
            left_keys: vec!["l_orderkey".into()],
            right_keys: vec!["o_orderkey".into()],
        };
        let plan = LogicalPlan::Filter {
            predicate: Expr::binary(Expr::col("o_flag"), BinaryOp::Eq, Expr::lit("A")),
            input: Box::new(join),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Join { right, .. } => match right.as_ref() {
                LogicalPlan::Scan { filter, .. } => assert!(filter.is_some()),
                other => panic!("expected filtered scan on right, got {other:?}"),
            },
            other => panic!("expected Join at root, got {other:?}"),
        }
    }

    #[test]
    fn index_path_derivation_covers_atoms_and_connectives() {
        use taster_storage::Value;
        let indexed = vec!["o_id".to_string(), "o_price".to_string()];
        let eq = Expr::binary(Expr::col("o_id"), BinaryOp::Eq, Expr::lit(7i64));
        assert_eq!(
            index_access_path(&eq, &indexed),
            Some(AccessPath::IndexEq {
                column: "o_id".into(),
                value: Value::Int(7),
            })
        );

        // Literal-first comparisons are mirrored: 5 < o_price ≡ o_price > 5.
        let mirrored = Expr::binary(Expr::lit(5i64), BinaryOp::Lt, Expr::col("o_price"));
        assert_eq!(
            index_access_path(&mirrored, &indexed),
            Some(AccessPath::IndexRange {
                column: "o_price".into(),
                op: BinaryOp::Gt,
                value: Value::Int(5),
            })
        );

        // NotEq and unindexed columns are not servable.
        let ne = Expr::binary(Expr::col("o_id"), BinaryOp::NotEq, Expr::lit(7i64));
        assert_eq!(index_access_path(&ne, &indexed), None);
        let other = Expr::binary(Expr::col("o_flag"), BinaryOp::Eq, Expr::lit(1i64));
        assert_eq!(index_access_path(&other, &indexed), None);

        // AND keeps whichever sides are indexable; nested ANDs flatten.
        let partial = eq.clone().and(other.clone());
        assert!(matches!(
            index_access_path(&partial, &indexed),
            Some(AccessPath::IndexEq { .. })
        ));
        let both = eq.clone().and(mirrored.clone()).and(eq.clone());
        match index_access_path(&both, &indexed) {
            Some(AccessPath::IndexAnd(parts)) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened IndexAnd, got {other:?}"),
        }

        // OR requires every arm to be indexable.
        let or_ok = Expr::binary(eq.clone(), BinaryOp::Or, mirrored.clone());
        assert!(matches!(
            index_access_path(&or_ok, &indexed),
            Some(AccessPath::IndexOr(parts)) if parts.len() == 2
        ));
        let or_bad = Expr::binary(eq, BinaryOp::Or, other);
        assert_eq!(index_access_path(&or_bad, &indexed), None);
    }

    #[test]
    fn optimizer_preserves_plan_structure_above_filters() {
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["o_flag".into()],
            aggregates: vec![AggExpr::new(AggFunc::Count, None)],
            input: Box::new(LogicalPlan::Filter {
                predicate: Expr::binary(Expr::col("o_x"), BinaryOp::Eq, Expr::lit(1i64)),
                input: Box::new(scan("orders")),
            }),
        };
        let opt = optimize(plan);
        assert!(matches!(opt, LogicalPlan::Aggregate { .. }));
        assert!(opt.display_tree().contains("Scan: orders filter="));
    }
}
