//! Morsel-driven parallelism on scoped OS threads.
//!
//! The executor fans work out one task per partition (scans) or per morsel
//! (aggregation, join probe) onto `std::thread::scope` workers — the
//! registry-free equivalent of a rayon pool. Results always come back in task
//! order, so every parallel operator is deterministic up to floating-point
//! merge order.

/// Default row-count threshold below which operators stay single-threaded;
/// spawning threads for tiny inputs costs more than it saves.
pub const PARALLEL_ROW_THRESHOLD: usize = 32_768;

/// Number of worker threads to use for an input of `total_rows` rows.
///
/// `TASTER_THREADS` overrides the choice (a value of 1 disables parallelism
/// entirely, which the determinism tests use); otherwise small inputs run
/// single-threaded and large ones use every available core. The env var is
/// read per operator, not per row, so the lookup cost is irrelevant.
pub fn worker_threads(total_rows: usize) -> usize {
    let configured = std::env::var("TASTER_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    if configured > 0 {
        return configured;
    }
    if total_rows < PARALLEL_ROW_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Split `n` rows into contiguous morsels for `threads` workers, returning
/// `(morsel_rows, num_morsels)`. Morsel `m` covers rows
/// `m * morsel_rows .. min((m + 1) * morsel_rows, n)`; the split depends only
/// on `(n, threads)`, which is what keeps morsel-parallel operators
/// deterministic for a fixed thread count.
pub fn morsel_layout(n: usize, threads: usize) -> (usize, usize) {
    let morsel_rows = if threads > 1 { n.div_ceil(threads) } else { n }.max(1);
    (morsel_rows, n.div_ceil(morsel_rows))
}

/// Run `f(0..n)` across up to `threads` scoped workers and return the results
/// in index order. With `threads <= 1` (or a single task) this is a plain
/// sequential loop with no thread overhead.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = t * chunk;
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(base + i));
                }
            });
        }
    });
    out.into_iter().map(|slot| slot.expect("worker filled every slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_order() {
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(17, threads, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_threads_is_at_least_one() {
        assert!(worker_threads(0) >= 1);
        assert!(worker_threads(10_000_000) >= 1);
    }

    #[test]
    fn morsel_layout_covers_all_rows_exactly_once() {
        for n in [0usize, 1, 7, 100, 32_769] {
            for threads in [1usize, 2, 3, 8] {
                let (rows, count) = morsel_layout(n, threads);
                assert!(rows >= 1);
                let covered: usize = (0..count)
                    .map(|m| ((m + 1) * rows).min(n) - m * rows)
                    .sum();
                assert_eq!(covered, n, "n={n} threads={threads}");
            }
        }
    }
}
