//! Physical execution of logical plans.
//!
//! The executor walks the logical plan bottom-up over columnar batches,
//! reporting per-tier I/O to [`ExecutionMetrics`], scaling aggregates with
//! Horvitz–Thompson weights whenever the input carries a `__weight` column,
//! and collecting every synopsis built along the way as a *byproduct* that
//! the caller (Taster) may materialize.

use std::collections::HashMap;
use std::time::Instant;

use taster_storage::io_model::ExecutionMetrics;
use taster_storage::row_key::{IntKeyMap, RowKeyMap, RowKeyTable, RowKeys};
use taster_storage::schema::{DataType, Field, Schema};
use taster_storage::stats::{ColumnZone, PartitionZones};
use taster_storage::{ColumnData, RecordBatch, Value};
use taster_synopses::distinct::{DistinctSampler, DistinctSamplerConfig};
use taster_synopses::estimator::{AggregateKind, DenseGroupedEstimator, GroupedEstimator};
use taster_synopses::sketch_join::SketchJoin;
use taster_synopses::{AggregateEstimate, UniformSampler, WEIGHT_COLUMN};

use crate::context::{ExecutionContext, SynopsisLocation};
use crate::error::EngineError;
use crate::expr::{BinaryOp, Expr};
use crate::logical::{
    AccessPath, AggExpr, AggFunc, LogicalPlan, SampleMethod, SketchRef, SynopsisPayload,
};
use crate::parallel::{morsel_layout, parallel_map, worker_threads};
use crate::result::{GroupResult, QueryResult};
use crate::shared_scan::{ScanKey, ScanPass};

/// Execute a logical plan and produce a [`QueryResult`].
pub fn execute(plan: &LogicalPlan, ctx: &ExecutionContext) -> Result<QueryResult, EngineError> {
    let start = Instant::now();
    let mut state = ExecState::default();
    let rows = exec_node(plan, ctx, &mut state)?;
    let mut metrics = state.metrics;
    metrics.wall_time_ns = start.elapsed().as_nanos();
    Ok(QueryResult {
        rows,
        groups: state.last_groups.unwrap_or_default(),
        approximate: plan.is_approximate(),
        metrics,
        byproducts: state.byproducts,
    })
}

#[derive(Default)]
struct ExecState {
    metrics: ExecutionMetrics,
    byproducts: Vec<(u64, SynopsisPayload)>,
    last_groups: Option<Vec<GroupResult>>,
}

fn exec_node(
    plan: &LogicalPlan,
    ctx: &ExecutionContext,
    state: &mut ExecState,
) -> Result<RecordBatch, EngineError> {
    match plan {
        LogicalPlan::Scan {
            table,
            filter,
            projection,
            access,
        } => exec_scan(
            table,
            filter.as_ref(),
            projection.as_deref(),
            access.as_ref(),
            ctx,
            state,
        ),
        LogicalPlan::Filter { predicate, input } => {
            let batch = exec_node(input, ctx, state)?;
            state.metrics.operator_rows += batch.num_rows();
            let mask = predicate.evaluate_predicate(&batch)?;
            Ok(batch.filter_mask(&mask))
        }
        LogicalPlan::Project { columns, input } => {
            let batch = exec_node(input, ctx, state)?;
            state.metrics.operator_rows += batch.num_rows();
            let mut cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            // Keep the HT weight flowing to weight-aware operators above.
            if batch.schema().contains(WEIGHT_COLUMN) && !cols.contains(&WEIGHT_COLUMN) {
                cols.push(WEIGHT_COLUMN);
            }
            Ok(batch.project(&cols)?)
        }
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let l = exec_node(left, ctx, state)?;
            let r = exec_node(right, ctx, state)?;
            state.metrics.operator_rows += l.num_rows() + r.num_rows();
            hash_join(&l, &r, left_keys, right_keys)
        }
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input,
        } => {
            let batch = exec_node(input, ctx, state)?;
            state.metrics.operator_rows += batch.num_rows();
            let (out, groups) = exec_aggregate(&batch, group_by, aggregates)?;
            state.last_groups = Some(groups);
            Ok(out)
        }
        LogicalPlan::Sample {
            method,
            synopsis_id,
            input,
        } => {
            let batch = exec_node(input, ctx, state)?;
            state.metrics.operator_rows += batch.num_rows();
            let sample = match method {
                SampleMethod::Uniform { probability } => {
                    let mut s = UniformSampler::new(*probability, ctx.seed ^ *synopsis_id);
                    s.sample_batch(&batch)
                }
                SampleMethod::Distinct {
                    stratification,
                    delta,
                    probability,
                } => {
                    let cfg = DistinctSamplerConfig::new(
                        stratification.clone(),
                        *delta,
                        *probability,
                    );
                    let mut s = DistinctSampler::new(cfg, ctx.seed ^ *synopsis_id);
                    s.sample_batch(&batch)?
                }
            };
            state.metrics.bytes_materialized += sample.size_bytes();
            let weighted = sample.to_weighted_batch()?;
            state
                .byproducts
                .push((*synopsis_id, SynopsisPayload::Sample(sample)));
            Ok(weighted)
        }
        LogicalPlan::SynopsisScan { id, filter } => {
            let Some((sample, location)) = ctx.provider.sample(*id) else {
                return Err(EngineError::Execution(format!(
                    "materialized synopsis {id} not found"
                )));
            };
            charge_synopsis_read(state, location, sample.len(), sample.size_bytes());
            let mut batch = sample.to_weighted_batch()?;
            if let Some(f) = filter {
                let mask = f.evaluate_predicate(&batch)?;
                batch = batch.filter_mask(&mask);
            }
            state.metrics.operator_rows += batch.num_rows();
            Ok(batch)
        }
        LogicalPlan::SketchJoinAgg {
            probe,
            probe_keys,
            sketch,
            synopsis_id,
            group_by,
            aggregates,
        } => {
            let probe_batch = exec_node(probe, ctx, state)?;
            state.metrics.operator_rows += probe_batch.num_rows();
            let sketch = resolve_sketch(sketch, *synopsis_id, ctx, state)?;
            let (out, groups) =
                exec_sketch_join_agg(&probe_batch, probe_keys, &sketch, group_by, aggregates)?;
            state.last_groups = Some(groups);
            Ok(out)
        }
        LogicalPlan::Limit { n, input } => {
            let batch = exec_node(input, ctx, state)?;
            Ok(batch.slice(0, *n))
        }
    }
}

fn exec_scan(
    table: &str,
    filter: Option<&Expr>,
    projection: Option<&[String]>,
    access: Option<&AccessPath>,
    ctx: &ExecutionContext,
    state: &mut ExecState,
) -> Result<RecordBatch, EngineError> {
    let table = ctx.catalog.table(table)?;
    // One atomic snapshot: the partitions and the zone maps computed from
    // exactly those partitions. Taking them in two separate calls could
    // straddle a concurrent append and prune new data with stale bounds (or
    // index zones that do not line up with the partition list).
    let snapshot = table.snapshot();
    let partitions = snapshot.partitions();

    // Validate filter column references up front: pruning may skip every
    // partition, and a malformed filter must error regardless of the data.
    if let Some(f) = filter {
        for col in f.referenced_columns() {
            table.schema().field_by_name(&col)?;
        }
    }

    // Zone-map pruning: a partition whose per-column [min, max] intervals
    // cannot satisfy the filter is skipped without reading a row, and its
    // rows/bytes are not charged to the scan metrics.
    let selected: Vec<usize> = match filter {
        Some(f) => {
            let zones = snapshot.zones();
            (0..partitions.len())
                .filter(|&i| !partition_cannot_match(f, &zones[i]))
                .collect()
        }
        None => (0..partitions.len()).collect(),
    };
    state.metrics.partitions_pruned += partitions.len() - selected.len();
    state.metrics.partitions_scanned += selected.len();

    let proj_names: Option<Vec<&str>> =
        projection.map(|cols| cols.iter().map(String::as_str).collect());

    if selected.is_empty() {
        // Every partition was pruned: synthesize an empty result with the
        // right schema.
        let mut empty = RecordBatch::empty(table.schema().clone());
        if let Some(names) = &proj_names {
            empty = empty.project(names)?;
        }
        return Ok(empty);
    }

    // Index-driven access path: probe the per-partition secondary indexes
    // for a (usually tiny) superset of matching rows, gather those rows, and
    // re-evaluate the full filter on the gathered batch. Partitions without
    // an index slot — the unsealed tail, or columns indexed after this plan
    // was cached — degrade to a full partition scan, so the path is always
    // exactly correct. Only the gathered rows (plus fallback partitions) are
    // charged to the scan metrics; that asymmetry is what the cost model's
    // access-path comparison predicts.
    let index_path = match access {
        Some(AccessPath::ZonePrunedScan) | None => None,
        Some(p) => Some(p),
    };
    if let (Some(path), Some(f)) = (index_path, filter) {
        let probe_rows: usize = selected.iter().map(|&i| partitions[i].num_rows()).sum();
        let threads = worker_threads(probe_rows);
        let pieces: Vec<Result<(RecordBatch, usize, usize), EngineError>> =
            parallel_map(selected.len(), threads, |k| {
                let i = selected[k];
                let part = partitions[i].as_ref();
                let (superset, rows, bytes) = match probe_access(path, &snapshot, i) {
                    Some(ranges) => {
                        let rows = taster_storage::index::ranges_len(&ranges);
                        let bytes = if part.num_rows() == 0 {
                            0
                        } else {
                            (part.size_bytes() as f64 * rows as f64 / part.num_rows() as f64)
                                as usize
                        };
                        let mut mask =
                            taster_storage::index::ranges_to_mask(&ranges, part.num_rows());
                        // Indexes cover every physical row, tombstoned or not
                        // (they are rebuilt only at compaction); masking the
                        // dead rows out here keeps the probed set a superset
                        // of exactly the live matches. The probe is still
                        // charged for the physical rows it touched.
                        if let Some(tomb) = snapshot.tombstone(i) {
                            mask.and_not_with(tomb);
                        }
                        (part.filter_mask(&mask), rows, bytes)
                    }
                    // No usable index for this partition: scan it whole
                    // (minus tombstoned rows).
                    None => match snapshot.tombstone(i) {
                        Some(tomb) => (
                            part.filter_mask(&tomb.complement()),
                            part.num_rows(),
                            part.size_bytes(),
                        ),
                        None => (part.clone(), part.num_rows(), part.size_bytes()),
                    },
                };
                // The probed set is a superset (e.g. an IndexAnd with one
                // unindexed conjunct); the full predicate always re-runs.
                let mask = f.evaluate_predicate(&superset)?;
                let mut batch = superset.filter_mask(&mask);
                if let Some(names) = &proj_names {
                    batch = batch.project(names)?;
                }
                Ok((batch, rows, bytes))
            });
        let mut out = Vec::with_capacity(pieces.len());
        for piece in pieces {
            let (batch, rows, bytes) = piece?;
            state.metrics.base_rows_scanned += rows;
            state.metrics.base_bytes_scanned += bytes;
            out.push(batch);
        }
        return Ok(RecordBatch::concat_refs(&out.iter().collect::<Vec<_>>())?);
    }

    // The zone-pruned morsel pass below is a pure function of the snapshot,
    // the filter and the projection — identical concurrent scans may attach
    // to one pass through the shared-scan registry when the context carries
    // one. The key includes the snapshot version, so attach points never
    // straddle a concurrent append: a query seeing a newer snapshot leads its
    // own pass. Attached queries charge the same rows/bytes a solo run would.
    let run_pass = || -> Result<ScanPass, EngineError> {
        let mut rows_scanned = 0;
        let mut bytes_scanned = 0;
        for &i in &selected {
            rows_scanned += partitions[i].num_rows();
            bytes_scanned += partitions[i].size_bytes();
        }

        let batch = if filter.is_none() && proj_names.is_none() {
            if snapshot.has_tombstones() {
                // With no filter every partition survived pruning, so the
                // snapshot's live view is exactly the scan output.
                let live = snapshot.live_batches();
                let refs: Vec<&RecordBatch> = live.iter().map(|c| &**c).collect();
                RecordBatch::concat_refs(&refs)?
            } else {
                // Pass-through scan: one pre-reserved copy, no per-partition
                // clones.
                let refs: Vec<&RecordBatch> =
                    selected.iter().map(|&i| partitions[i].as_ref()).collect();
                RecordBatch::concat_refs(&refs)?
            }
        } else {
            // Morsel-driven scan: one filter+project task per surviving
            // partition. Tombstones AND-NOT into the predicate mask before
            // the filter kernel materializes anything, so deleted rows never
            // reach an operator.
            let threads = worker_threads(rows_scanned);
            let pieces: Vec<Result<RecordBatch, EngineError>> =
                parallel_map(selected.len(), threads, |k| {
                    let i = selected[k];
                    let part = partitions[i].as_ref();
                    let mut batch = match (filter, snapshot.tombstone(i)) {
                        (Some(f), tomb) => {
                            let mut mask = f.evaluate_predicate(part)?;
                            if let Some(tomb) = tomb {
                                mask.and_not_with(tomb);
                            }
                            part.filter_mask(&mask)
                        }
                        (None, Some(tomb)) => part.filter_mask(&tomb.complement()),
                        (None, None) => part.clone(),
                    };
                    if let Some(names) = &proj_names {
                        batch = batch.project(names)?;
                    }
                    Ok(batch)
                });
            let pieces: Vec<RecordBatch> = pieces.into_iter().collect::<Result<_, _>>()?;
            RecordBatch::concat_refs(&pieces.iter().collect::<Vec<_>>())?
        };
        Ok(ScanPass {
            batch,
            rows_scanned,
            bytes_scanned,
        })
    };

    if let Some(registry) = &ctx.shared_scans {
        let key = ScanKey {
            table: table.name().to_string(),
            snapshot_version: snapshot.version(),
            shape: format!("{filter:?}|{projection:?}"),
        };
        let (pass, _attached) = registry.run_or_attach(key, run_pass)?;
        state.metrics.base_rows_scanned += pass.rows_scanned;
        state.metrics.base_bytes_scanned += pass.bytes_scanned;
        return Ok(pass.batch.clone());
    }

    let pass = run_pass()?;
    state.metrics.base_rows_scanned += pass.rows_scanned;
    state.metrics.base_bytes_scanned += pass.bytes_scanned;
    Ok(pass.batch)
}

/// Probe the snapshot's secondary indexes for partition `part`, returning the
/// sorted, disjoint row ranges the access path selects — or `None` when the
/// required index slot is missing and the caller must scan the partition.
///
/// Composition rules mirror the superset contract: an [`AccessPath::IndexAnd`]
/// intersects whichever children *can* probe (a missing conjunct only widens
/// the superset), while an [`AccessPath::IndexOr`] demands every arm — a
/// disjunct that cannot probe could contribute rows the union would miss.
fn probe_access(
    path: &AccessPath,
    snapshot: &taster_storage::table::TableSnapshot,
    part: usize,
) -> Option<Vec<(u32, u32)>> {
    match path {
        AccessPath::ZonePrunedScan => None,
        AccessPath::IndexEq { column, value } => {
            let idx = snapshot.index(column)?.get(part)?.as_ref()?;
            Some(idx.probe_eq(value))
        }
        AccessPath::IndexRange { column, op, value } => {
            let (ord, inclusive) = match op {
                BinaryOp::Lt => (std::cmp::Ordering::Less, false),
                BinaryOp::LtEq => (std::cmp::Ordering::Less, true),
                BinaryOp::Gt => (std::cmp::Ordering::Greater, false),
                BinaryOp::GtEq => (std::cmp::Ordering::Greater, true),
                _ => return None,
            };
            let idx = snapshot.index(column)?.get(part)?.as_ref()?;
            Some(idx.probe_cmp(value, ord, inclusive))
        }
        AccessPath::IndexAnd(parts) => {
            let mut acc: Option<Vec<(u32, u32)>> = None;
            for p in parts {
                if let Some(r) = probe_access(p, snapshot, part) {
                    acc = Some(match acc {
                        Some(a) => taster_storage::index::intersect_ranges(&a, &r),
                        None => r,
                    });
                }
            }
            acc
        }
        AccessPath::IndexOr(parts) => {
            let mut acc: Vec<(u32, u32)> = Vec::new();
            for p in parts {
                let r = probe_access(p, snapshot, part)?;
                taster_storage::index::merge_ranges(&mut acc, &r);
            }
            Some(acc)
        }
    }
}

/// `true` if the zone maps prove no row of the partition can satisfy `filter`.
///
/// Conservative by construction: unknown expression shapes and columns
/// without zones return `false` (scan the partition). Comparison outcomes use
/// [`Value::total_cmp`], the same ordering the filter kernels evaluate with.
fn partition_cannot_match(filter: &Expr, zones: &PartitionZones) -> bool {
    match filter {
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And => {
                partition_cannot_match(left, zones) || partition_cannot_match(right, zones)
            }
            BinaryOp::Or => {
                partition_cannot_match(left, zones) && partition_cannot_match(right, zones)
            }
            op if op.is_comparison() => {
                let (col, op, lit) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(c), Expr::Literal(v)) => (c, *op, v),
                    (Expr::Literal(v), Expr::Column(c)) => (c, crate::expr::mirror(*op), v),
                    _ => return false,
                };
                zones
                    .column(col)
                    .is_some_and(|zone| zone_excludes(zone, op, lit))
            }
            _ => false,
        },
        _ => false,
    }
}

/// Can `col op lit` be false for every value in `[zone.min, zone.max]`?
fn zone_excludes(zone: &ColumnZone, op: BinaryOp, lit: &Value) -> bool {
    use std::cmp::Ordering::*;
    let min = zone.min.total_cmp(lit);
    let max = zone.max.total_cmp(lit);
    match op {
        BinaryOp::Eq => min == Greater || max == Less,
        BinaryOp::NotEq => min == Equal && max == Equal,
        BinaryOp::Lt => min != Less,
        BinaryOp::LtEq => min == Greater,
        BinaryOp::Gt => max != Greater,
        BinaryOp::GtEq => max == Less,
        _ => false,
    }
}

fn charge_synopsis_read(
    state: &mut ExecState,
    location: SynopsisLocation,
    rows: usize,
    bytes: usize,
) {
    match location {
        SynopsisLocation::Buffer => {
            state.metrics.buffer_rows_read += rows;
            state.metrics.buffer_bytes_read += bytes;
        }
        SynopsisLocation::Warehouse => {
            state.metrics.warehouse_rows_read += rows;
            state.metrics.warehouse_bytes_read += bytes;
        }
    }
}

fn resolve_sketch(
    sketch: &SketchRef,
    synopsis_id: u64,
    ctx: &ExecutionContext,
    state: &mut ExecState,
) -> Result<SketchJoin, EngineError> {
    match sketch {
        SketchRef::Materialized { id } => {
            let Some((sk, location)) = ctx.provider.sketch(*id) else {
                return Err(EngineError::Execution(format!(
                    "materialized sketch {id} not found"
                )));
            };
            charge_synopsis_read(state, location, sk.rows_summarized(), sk.size_bytes());
            Ok(sk.as_ref().clone())
        }
        SketchRef::Build {
            table,
            key_columns,
            value_column,
        } => {
            let t = ctx.catalog.table(table)?;
            let snapshot = t.snapshot();
            state.metrics.base_rows_scanned += snapshot.num_rows();
            state.metrics.base_bytes_scanned += snapshot.size_bytes();
            // Build from the live view: CountMin cannot subtract, so folding
            // in tombstoned rows would bake their mass into every estimate
            // until the next rebuild.
            let sk = SketchJoin::build(
                &snapshot.live_batches(),
                key_columns.clone(),
                value_column.clone(),
                0.0005,
                0.01,
            )?;
            state.metrics.bytes_materialized += sk.size_bytes();
            state
                .byproducts
                .push((synopsis_id, SynopsisPayload::Sketch(sk.clone())));
            Ok(sk)
        }
    }
}

/// Hash join (equi-join) building on the right input and probing with the
/// left input. Output schema is `left ⨝ right` with duplicated names from the
/// right prefixed by `right.`. The probe side runs morsel-parallel; thread
/// count comes from [`worker_threads`] (`TASTER_THREADS` overrides).
pub fn hash_join(
    left: &RecordBatch,
    right: &RecordBatch,
    left_keys: &[String],
    right_keys: &[String],
) -> Result<RecordBatch, EngineError> {
    hash_join_with_threads(left, right, left_keys, right_keys, worker_threads(left.num_rows()))
}

/// [`hash_join`] with an explicit probe-side thread count — the parity tests
/// pin it so serial and parallel probes can be compared without touching the
/// `TASTER_THREADS` process environment.
///
/// The build stays single-threaded ([`RowKeyTable::build`] chains rows in
/// build order); the probe side splits into contiguous morsels on the scoped
/// thread pool and the per-morsel match indices concatenate in morsel order,
/// so the output is identical to a serial probe for any thread count.
pub fn hash_join_with_threads(
    left: &RecordBatch,
    right: &RecordBatch,
    left_keys: &[String],
    right_keys: &[String],
    threads: usize,
) -> Result<RecordBatch, EngineError> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(EngineError::Plan(
            "join requires the same non-zero number of keys on both sides".to_string(),
        ));
    }
    let right_key_cols: Vec<&ColumnData> = right_keys
        .iter()
        .map(|k| right.column_by_name(k))
        .collect::<Result<Vec<_>, _>>()?;
    let left_key_cols: Vec<&ColumnData> = left_keys
        .iter()
        .map(|k| left.column_by_name(k))
        .collect::<Result<Vec<_>, _>>()?;

    // Row-encoded keys: both sides encode their key columns into one byte
    // buffer each; the build table and every probe work on byte slices with
    // no per-row Vec<Value> allocation.
    let table = RowKeyTable::build(&right_key_cols, right.num_rows());
    let probe_keys = RowKeys::encode_columns(&left_key_cols, left.num_rows());

    let n = left.num_rows();
    let threads = threads.max(1);
    let (morsel_rows, num_morsels) = morsel_layout(n, threads);
    let pieces: Vec<(Vec<usize>, Vec<usize>)> = parallel_map(num_morsels, threads, |m| {
        let rows = m * morsel_rows..((m + 1) * morsel_rows).min(n);
        let mut li = Vec::new();
        let mut ri = Vec::new();
        for row in rows {
            for b in table.probe(&probe_keys, row) {
                li.push(row);
                ri.push(b);
            }
        }
        (li, ri)
    });

    let matches: usize = pieces.iter().map(|(l, _)| l.len()).sum();
    let mut left_idx = Vec::with_capacity(matches);
    let mut right_idx = Vec::with_capacity(matches);
    for (li, ri) in pieces {
        left_idx.extend(li);
        right_idx.extend(ri);
    }

    let left_out = left.take(&left_idx);
    let right_out = right.take(&right_idx);
    let out_schema = std::sync::Arc::new(left.schema().join(right.schema()));
    let mut columns: Vec<ColumnData> = left_out.columns().to_vec();
    columns.extend(right_out.columns().iter().cloned());
    Ok(RecordBatch::try_new(out_schema, columns)?)
}

/// Per-row weight accessor: `1.0` when unweighted, typed slice access for the
/// (Float64) `__weight` column, generic fallback otherwise.
enum WeightsView<'a> {
    Unweighted,
    Float(&'a [f64]),
    General(&'a ColumnData),
}

impl WeightsView<'_> {
    #[inline(always)]
    fn get(&self, row: usize) -> f64 {
        match self {
            WeightsView::Unweighted => 1.0,
            WeightsView::Float(v) => v[row],
            WeightsView::General(c) => c.value_f64(row).unwrap_or(1.0),
        }
    }
}

/// Aggregate one morsel (a contiguous row range) of the input batch.
///
/// Group keys are row-encoded once per row into a reusable byte buffer, rows
/// get dense group ids from an open-addressed [`RowKeyMap`], and each
/// aggregate accumulates into a flat [`DenseGroupedEstimator`] — no hashing
/// or allocation per (row, aggregate). The dense partial converts into a
/// keyed [`GroupedEstimator`] (one key materialization per group) so
/// per-morsel partials merge exactly like distributed HT partials.
/// Assign every row of the morsel a dense group id and materialize one key
/// per distinct group. Three strategies, cheapest first: no group columns
/// (everything is group 0), a single `Int64` column (raw-integer hash map, no
/// byte encoding), and the general row-encoded path.
fn assign_group_ids(
    group_cols: &[&ColumnData],
    rows: std::ops::Range<usize>,
) -> (Vec<u32>, Vec<Vec<Value>>) {
    let start = rows.start;
    let len = rows.len();
    match group_cols {
        [] => (vec![0; len], vec![Vec::new()]),
        [ColumnData::Int64(v)] => {
            let mut map = IntKeyMap::with_capacity(1024.min(len));
            let mut gids = Vec::with_capacity(len);
            for &key in &v[rows] {
                gids.push(map.get_or_insert(key));
            }
            let keys = map.keys().iter().map(|&k| vec![Value::Int(k)]).collect();
            (gids, keys)
        }
        [ColumnData::Dict { codes, dict }] => {
            // Codes are dense in [0, dict.len()): a flat remap array replaces
            // the hash map entirely, and each distinct key string is cloned
            // out of the dictionary exactly once, in first-appearance order
            // (matching the generic path's group numbering).
            let mut remap = vec![u32::MAX; dict.len()];
            let mut gids = Vec::with_capacity(len);
            let mut keys: Vec<Vec<Value>> = Vec::new();
            for &code in &codes[rows] {
                let slot = &mut remap[code as usize];
                if *slot == u32::MAX {
                    *slot = keys.len() as u32;
                    keys.push(vec![Value::Str(dict.get(code).to_string())]);
                }
                gids.push(*slot);
            }
            (gids, keys)
        }
        _ => {
            let keys = RowKeys::encode_columns_range(group_cols, rows);
            let mut map = RowKeyMap::with_capacity(1024.min(len));
            let mut gids = Vec::with_capacity(len);
            for local in 0..len {
                gids.push(map.get_or_insert(&keys, local));
            }
            let materialized = map
                .representatives()
                .map(|rep| {
                    group_cols
                        .iter()
                        .map(|c| c.value(start + rep))
                        .collect::<Vec<Value>>()
                })
                .collect();
            (gids, materialized)
        }
    }
}

fn aggregate_morsel(
    batch: &RecordBatch,
    rows: std::ops::Range<usize>,
    group_cols: &[&ColumnData],
    agg_cols: &[Option<&ColumnData>],
    aggregates: &[AggExpr],
    weights: &WeightsView<'_>,
) -> Vec<GroupedEstimator> {
    debug_assert!(rows.end <= batch.num_rows());
    let start = rows.start;
    let (gids, group_keys) = assign_group_ids(group_cols, rows);

    let mut partials = Vec::with_capacity(aggregates.len());
    for (agg, col) in aggregates.iter().zip(agg_cols) {
        let kind = agg.func.kind();
        let mut dense = DenseGroupedEstimator::new(kind);
        match (kind, col) {
            (AggregateKind::Count, _) | (_, None) => {
                for (local, &gid) in gids.iter().enumerate() {
                    dense.add(gid, 1.0, weights.get(start + local));
                }
            }
            (_, Some(ColumnData::Float64(v))) => {
                for (local, &gid) in gids.iter().enumerate() {
                    dense.add(gid, v[start + local], weights.get(start + local));
                }
            }
            (_, Some(ColumnData::Int64(v))) => {
                for (local, &gid) in gids.iter().enumerate() {
                    dense.add(gid, v[start + local] as f64, weights.get(start + local));
                }
            }
            (_, Some(ColumnData::Bool(v))) => {
                for (local, &gid) in gids.iter().enumerate() {
                    let x = if v[start + local] { 1.0 } else { 0.0 };
                    dense.add(gid, x, weights.get(start + local));
                }
            }
            // Strings have no numeric interpretation; `value_f64` returned
            // None and the row-at-a-time path folded in 0.0.
            (_, Some(ColumnData::Utf8(_) | ColumnData::Dict { .. })) => {
                for (local, &gid) in gids.iter().enumerate() {
                    dense.add(gid, 0.0, weights.get(start + local));
                }
            }
        }
        // Each group's key was materialized exactly once by assign_group_ids.
        partials.push(dense.into_keyed(group_keys.iter().cloned()));
    }
    partials
}

/// Group-by aggregation with optional Horvitz–Thompson weighting, run
/// morsel-parallel with per-thread partials merged in morsel order.
fn exec_aggregate(
    batch: &RecordBatch,
    group_by: &[String],
    aggregates: &[AggExpr],
) -> Result<(RecordBatch, Vec<GroupResult>), EngineError> {
    let weighted = batch.schema().contains(WEIGHT_COLUMN);
    let weights: WeightsView<'_> = if weighted {
        match batch.column_by_name(WEIGHT_COLUMN)? {
            ColumnData::Float64(v) => WeightsView::Float(v),
            other => WeightsView::General(other),
        }
    } else {
        WeightsView::Unweighted
    };
    let group_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|g| batch.column_by_name(g))
        .collect::<Result<Vec<_>, _>>()?;
    let agg_cols: Vec<Option<&ColumnData>> = aggregates
        .iter()
        .map(|a| match &a.column {
            Some(c) => batch.column_by_name(c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<Vec<_>, _>>()?;

    let n = batch.num_rows();
    let threads = worker_threads(n);
    let (morsel_rows, num_morsels) = morsel_layout(n, threads);

    let partials: Vec<Vec<GroupedEstimator>> = parallel_map(num_morsels, threads, |m| {
        let rows = m * morsel_rows..((m + 1) * morsel_rows).min(n);
        aggregate_morsel(batch, rows, &group_cols, &agg_cols, aggregates, &weights)
    });

    let mut estimators: Vec<GroupedEstimator> = aggregates
        .iter()
        .map(|a| GroupedEstimator::new(a.func.kind()))
        .collect();
    // Deterministic merge: morsel order, independent of thread scheduling.
    for partial in partials {
        for (est, p) in estimators.iter_mut().zip(&partial) {
            est.merge(p);
        }
    }

    let mut per_agg: Vec<HashMap<Vec<Value>, AggregateEstimate>> =
        estimators.iter().map(|e| e.finish()).collect();
    if !weighted {
        // Exact execution: no sampling error regardless of what the CLT
        // machinery reports for AVG.
        for map in &mut per_agg {
            for est in map.values_mut() {
                est.std_error = 0.0;
            }
        }
    }

    // Deterministic output order.
    let mut keys: Vec<Vec<Value>> = per_agg
        .first()
        .map(|m| m.keys().cloned().collect())
        .unwrap_or_default();
    keys.sort();

    let groups: Vec<GroupResult> = keys
        .iter()
        .map(|k| GroupResult {
            key: k.clone(),
            aggregates: per_agg.iter().map(|m| m[k].clone()).collect(),
        })
        .collect();

    let out = build_group_batch(batch, group_by, aggregates, &groups)?;
    Ok((out, groups))
}

/// Aggregate over a sketch-join: the probe side is scanned row by row, each
/// row looks up its join key in the sketch, and the per-key COUNT/SUM
/// contributions are accumulated per group (scaled by the probe row's HT
/// weight if the probe side was sampled).
fn exec_sketch_join_agg(
    probe: &RecordBatch,
    probe_keys: &[String],
    sketch: &SketchJoin,
    group_by: &[String],
    aggregates: &[AggExpr],
) -> Result<(RecordBatch, Vec<GroupResult>), EngineError> {
    let weighted = probe.schema().contains(WEIGHT_COLUMN);
    let weights: Option<&ColumnData> = if weighted {
        Some(probe.column_by_name(WEIGHT_COLUMN)?)
    } else {
        None
    };
    let key_cols: Vec<&ColumnData> = probe_keys
        .iter()
        .map(|k| probe.column_by_name(k))
        .collect::<Result<Vec<_>, _>>()?;
    let group_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|g| probe.column_by_name(g))
        .collect::<Result<Vec<_>, _>>()?;

    #[derive(Default, Clone)]
    struct Acc {
        count: f64,
        sum: f64,
        probe_rows: usize,
    }
    let mut accs: HashMap<Vec<Value>, Acc> = HashMap::new();

    for row in 0..probe.num_rows() {
        let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
        let group: Vec<Value> = group_cols.iter().map(|c| c.value(row)).collect();
        let w = weights.map_or(1.0, |c| c.value_f64(row).unwrap_or(1.0));
        let p = sketch.probe(&key);
        let acc = accs.entry(group).or_default();
        acc.count += w * p.count;
        acc.sum += w * p.sum;
        acc.probe_rows += 1;
    }

    let (count_bound, sum_bound) = sketch.error_bounds();
    let z95 = taster_synopses::estimator::z_score(0.95);

    let mut keys: Vec<Vec<Value>> = accs.keys().cloned().collect();
    keys.sort();
    let groups: Vec<GroupResult> = keys
        .iter()
        .map(|k| {
            let acc = &accs[k];
            let aggs = aggregates
                .iter()
                .map(|a| {
                    let (value, bound) = match a.func {
                        AggFunc::Count => (acc.count, count_bound),
                        AggFunc::Sum => (acc.sum, sum_bound),
                        AggFunc::Avg => {
                            let avg = if acc.count > 0.0 { acc.sum / acc.count } else { 0.0 };
                            (avg, sum_bound / acc.count.max(1.0))
                        }
                        // MIN/MAX cannot be answered from a CM sketch; report
                        // the sum-side value so results stay well-formed (the
                        // planner never routes MIN/MAX through sketch-join).
                        AggFunc::Min | AggFunc::Max => (acc.sum, sum_bound),
                    };
                    AggregateEstimate {
                        value,
                        std_error: bound / z95,
                        sample_rows: acc.probe_rows,
                    }
                })
                .collect();
            GroupResult {
                key: k.clone(),
                aggregates: aggs,
            }
        })
        .collect();

    let out = build_group_batch(probe, group_by, aggregates, &groups)?;
    Ok((out, groups))
}

/// Materialize grouped results into a batch: group columns followed by one
/// Float64 column per aggregate.
fn build_group_batch(
    input: &RecordBatch,
    group_by: &[String],
    aggregates: &[AggExpr],
    groups: &[GroupResult],
) -> Result<RecordBatch, EngineError> {
    let mut fields = Vec::with_capacity(group_by.len() + aggregates.len());
    let mut columns: Vec<ColumnData> = Vec::with_capacity(group_by.len() + aggregates.len());

    for (i, g) in group_by.iter().enumerate() {
        let dt = input.schema().field_by_name(g)?.data_type;
        fields.push(Field::new(g.clone(), dt));
        let mut col = ColumnData::with_capacity(dt, groups.len());
        for grp in groups {
            col.push(&grp.key[i])?;
        }
        columns.push(col);
    }
    for (i, a) in aggregates.iter().enumerate() {
        fields.push(Field::new(a.alias.clone(), DataType::Float64));
        let col = ColumnData::Float64(groups.iter().map(|g| g.aggregates[i].value).collect());
        columns.push(col);
    }
    Ok(RecordBatch::try_new(
        std::sync::Arc::new(Schema::new(fields)),
        columns,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::{Catalog, Table};

    fn catalog() -> Arc<Catalog> {
        let cat = Catalog::new();
        let orders = BatchBuilder::new()
            .column("o_id", (0..1000i64).collect::<Vec<_>>())
            .column("o_cust", (0..1000i64).map(|i| i % 10).collect::<Vec<_>>())
            .column("o_price", (0..1000).map(|i| (i % 100) as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("orders", orders, 4).unwrap());
        let cust = BatchBuilder::new()
            .column("c_id", (0..10i64).collect::<Vec<_>>())
            .column("c_region", (0..10i64).map(|i| i % 3).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("customers", cust, 1).unwrap());
        Arc::new(cat)
    }

    fn ctx() -> ExecutionContext {
        ExecutionContext::new(catalog())
    }

    #[test]
    fn dict_group_ids_match_utf8_path() {
        let raw = ColumnData::Utf8(
            (0..64)
                .map(|i| ["ash", "beech", "cedar"][i % 3].to_string())
                .collect(),
        );
        let enc = raw.dict_encode();
        assert!(enc.is_dict_encoded());
        for rows in [0..64usize, 5..41, 64..64] {
            let (g_raw, k_raw) = assign_group_ids(&[&raw], rows.clone());
            let (g_enc, k_enc) = assign_group_ids(&[&enc], rows);
            assert_eq!(g_raw, g_enc);
            assert_eq!(k_raw, k_enc);
        }
    }

    #[test]
    fn scan_filter_project() {
        let plan = LogicalPlan::Scan {
            table: "orders".into(),
            filter: Some(Expr::binary(
                Expr::col("o_cust"),
                crate::expr::BinaryOp::Eq,
                Expr::lit(3i64),
            )),
            projection: Some(vec!["o_id".into(), "o_price".into()]),
            access: None,
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.rows.num_rows(), 100);
        assert_eq!(res.rows.num_columns(), 2);
        assert_eq!(res.metrics.base_rows_scanned, 1000);
        assert!(!res.approximate);
    }

    #[test]
    fn exact_aggregate_matches_hand_computation() {
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["o_cust".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Count, None),
                AggExpr::new(AggFunc::Sum, Some("o_price".into())),
                AggExpr::new(AggFunc::Avg, Some("o_price".into())),
            ],
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                filter: None,
                projection: None,
                access: None,
            }),
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.num_groups(), 10);
        let g0 = &res.group_map()[&vec![Value::Int(0)]];
        assert_eq!(g0.aggregates[0].value, 100.0);
        // customer 0 gets orders 0,10,...,990 => price = (i%100): 0,10,...,90 repeated
        let sum: f64 = (0..1000)
            .filter(|i| i % 10 == 0)
            .map(|i| (i % 100) as f64)
            .sum();
        assert!((g0.aggregates[1].value - sum).abs() < 1e-9);
        assert_eq!(g0.aggregates[1].std_error, 0.0);
        assert!((g0.aggregates[2].value - sum / 100.0).abs() < 1e-9);
    }

    #[test]
    fn join_then_aggregate() {
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["c_region".into()],
            aggregates: vec![AggExpr::new(AggFunc::Count, None)],
            input: Box::new(LogicalPlan::Join {
                left: Box::new(LogicalPlan::Scan {
                    table: "orders".into(),
                    filter: None,
                    projection: None,
                    access: None,
                }),
                right: Box::new(LogicalPlan::Scan {
                    table: "customers".into(),
                    filter: None,
                    projection: None,
                    access: None,
                }),
                left_keys: vec!["o_cust".into()],
                right_keys: vec!["c_id".into()],
            }),
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.num_groups(), 3);
        let total: f64 = res.groups.iter().map(|g| g.aggregates[0].value).sum();
        assert_eq!(total, 1000.0);
    }

    #[test]
    fn sampled_aggregate_is_close_and_produces_byproduct() {
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::new(AggFunc::Sum, Some("o_price".into()))],
            input: Box::new(LogicalPlan::Sample {
                // delta=20/p=0.5 keeps the max per-group error comfortably
                // below the 0.5 assertion across RNG streams; sparser
                // configurations make this test a coin flip on the seed.
                method: SampleMethod::Distinct {
                    stratification: vec!["o_cust".into()],
                    delta: 20,
                    probability: 0.5,
                },
                synopsis_id: 77,
                input: Box::new(LogicalPlan::Scan {
                    table: "orders".into(),
                    filter: None,
                    projection: None,
                    access: None,
                }),
            }),
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert!(res.approximate);
        assert_eq!(res.num_groups(), 10, "distinct sampler must not lose groups");
        assert_eq!(res.byproducts.len(), 1);
        assert_eq!(res.byproducts[0].0, 77);
        // Compare against exact.
        let exact_plan = LogicalPlan::Aggregate {
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::new(AggFunc::Sum, Some("o_price".into()))],
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                filter: None,
                projection: None,
                access: None,
            }),
        };
        let exact = execute(&exact_plan, &ctx()).unwrap();
        let (err, missed) = res.error_vs(&exact);
        assert_eq!(missed, 0);
        assert!(err < 0.5, "sampled SUM error too large: {err}");
    }

    #[test]
    fn sketch_join_agg_close_to_exact() {
        let plan = LogicalPlan::SketchJoinAgg {
            probe: Box::new(LogicalPlan::Scan {
                table: "customers".into(),
                filter: None,
                projection: None,
                access: None,
            }),
            probe_keys: vec!["c_id".into()],
            sketch: SketchRef::Build {
                table: "orders".into(),
                key_columns: vec!["o_cust".into()],
                value_column: Some("o_price".into()),
            },
            synopsis_id: 5,
            group_by: vec!["c_region".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Count, None),
                AggExpr::new(AggFunc::Sum, Some("o_price".into())),
            ],
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.num_groups(), 3);
        let total_count: f64 = res.groups.iter().map(|g| g.aggregates[0].value).sum();
        assert!((total_count - 1000.0).abs() / 1000.0 < 0.05, "{total_count}");
        assert!(res
            .byproducts
            .iter()
            .any(|(id, p)| *id == 5 && matches!(p, SynopsisPayload::Sketch(_))));
    }

    #[test]
    fn zone_map_pruning_skips_partitions_on_selective_range() {
        // 40 contiguous partitions over a sorted id column: a selective range
        // predicate touches at most 2 of them (>= 95% pruned).
        let cat = Catalog::new();
        let batch = BatchBuilder::new()
            .column("id", (0..40_000i64).collect::<Vec<_>>())
            .column("v", (0..40_000).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("sorted", batch, 40).unwrap());
        let ctx = ExecutionContext::new(Arc::new(cat));

        let plan = LogicalPlan::Scan {
            table: "sorted".into(),
            filter: Some(
                Expr::binary(Expr::col("id"), crate::expr::BinaryOp::GtEq, Expr::lit(10_000i64))
                    .and(Expr::binary(
                        Expr::col("id"),
                        crate::expr::BinaryOp::Lt,
                        Expr::lit(11_000i64),
                    )),
            ),
            projection: None,
            access: None,
        };
        let res = execute(&plan, &ctx).unwrap();
        assert_eq!(res.rows.num_rows(), 1000);
        assert!(
            res.metrics.partitions_pruned >= 38,
            "expected >= 38/40 pruned, got {}",
            res.metrics.partitions_pruned
        );
        assert_eq!(
            res.metrics.partitions_scanned + res.metrics.partitions_pruned,
            40
        );
        // Pruned partitions are not charged to the scan.
        assert!(res.metrics.base_rows_scanned <= 2_000);
    }

    #[test]
    fn pruning_all_partitions_yields_empty_batch_with_schema() {
        let plan = LogicalPlan::Scan {
            table: "orders".into(),
            filter: Some(Expr::binary(
                Expr::col("o_id"),
                crate::expr::BinaryOp::Gt,
                Expr::lit(1_000_000i64),
            )),
            projection: Some(vec!["o_id".into()]),
            access: None,
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.rows.num_rows(), 0);
        assert_eq!(res.rows.num_columns(), 1);
        assert_eq!(res.metrics.partitions_pruned, 4);
        assert_eq!(res.metrics.base_rows_scanned, 0);
    }

    #[test]
    fn parallel_aggregation_matches_row_at_a_time_reference() {
        // Large enough to engage the morsel-parallel path (> threshold).
        let n = 200_000usize;
        let grp: Vec<i64> = (0..n as i64).map(|i| i % 8).collect();
        let val: Vec<f64> = (0..n).map(|i| (i % 997) as f64 * 0.25).collect();
        let wgt: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let batch = BatchBuilder::new()
            .column("g", grp.clone())
            .column("v", val.clone())
            .column(taster_synopses::WEIGHT_COLUMN, wgt.clone())
            .build()
            .unwrap();
        let aggregates = vec![
            AggExpr::new(AggFunc::Count, None),
            AggExpr::new(AggFunc::Sum, Some("v".into())),
            AggExpr::new(AggFunc::Avg, Some("v".into())),
        ];
        let (_, groups) = exec_aggregate(&batch, &["g".to_string()], &aggregates).unwrap();

        // Row-at-a-time reference with the keyed estimator.
        let mut refs: Vec<GroupedEstimator> = vec![
            GroupedEstimator::new(AggregateKind::Count),
            GroupedEstimator::new(AggregateKind::Sum),
            GroupedEstimator::new(AggregateKind::Avg),
        ];
        for i in 0..n {
            let key = vec![Value::Int(grp[i])];
            for (est, v) in refs.iter_mut().zip([1.0, val[i], val[i]]) {
                est.add(key.clone(), v, wgt[i]);
            }
        }
        assert_eq!(groups.len(), 8);
        for g in &groups {
            for (a, est) in g.aggregates.iter().zip(&refs) {
                let want = &est.finish()[&g.key];
                let scale = want.value.abs().max(1.0);
                assert!(
                    (a.value - want.value).abs() / scale < 1e-9,
                    "value drifted: {} vs {}",
                    a.value,
                    want.value
                );
                assert!(
                    (a.std_error - want.std_error).abs() / want.std_error.abs().max(1.0) < 1e-9,
                    "std_error drifted: {} vs {}",
                    a.std_error,
                    want.std_error
                );
                assert_eq!(a.sample_rows, want.sample_rows);
            }
        }
    }

    #[test]
    fn scans_exclude_tombstoned_rows_on_every_path() {
        // Deletes land in sealed partitions (tombstones) and the unsealed
        // tail (in-place): all three scan paths must agree on the live view.
        let cat = catalog();
        let orders = cat.table("orders").unwrap();
        orders.create_index("o_cust").unwrap();
        // Delete customer 3's orders plus an arbitrary spread of ids.
        let dead: Vec<usize> = (0..1000)
            .filter(|i| i % 10 == 3 || i % 97 == 0)
            .collect();
        orders.delete_rows(&dead).unwrap();
        let ctx = ExecutionContext::new(cat);
        let live = 1000 - dead.len();

        // Pass-through (no filter, no projection).
        let plan = LogicalPlan::Scan {
            table: "orders".into(),
            filter: None,
            projection: None,
            access: None,
        };
        let res = execute(&plan, &ctx).unwrap();
        assert_eq!(res.rows.num_rows(), live);

        // Morsel path (filter, zone-pruned).
        let filt = Expr::binary(Expr::col("o_cust"), crate::expr::BinaryOp::Eq, Expr::lit(3i64));
        let plan = LogicalPlan::Scan {
            table: "orders".into(),
            filter: Some(filt.clone()),
            projection: None,
            access: None,
        };
        let res = execute(&plan, &ctx).unwrap();
        assert_eq!(res.rows.num_rows(), 0, "all of customer 3 was deleted");

        // Index path over the same predicate: identical answer, and the
        // projection-only morsel leg (no filter) also excludes dead rows.
        let plan = LogicalPlan::Scan {
            table: "orders".into(),
            filter: Some(filt),
            projection: None,
            access: Some(AccessPath::IndexEq {
                column: "o_cust".into(),
                value: Value::Int(3),
            }),
        };
        let res = execute(&plan, &ctx).unwrap();
        assert_eq!(res.rows.num_rows(), 0);
        let plan = LogicalPlan::Scan {
            table: "orders".into(),
            filter: None,
            projection: Some(vec!["o_id".into()]),
            access: None,
        };
        let res = execute(&plan, &ctx).unwrap();
        assert_eq!(res.rows.num_rows(), live);

        // Surviving customer: the index probe is a physical-row superset,
        // re-filtered down to live matches only.
        let plan = LogicalPlan::Scan {
            table: "orders".into(),
            filter: Some(Expr::binary(
                Expr::col("o_cust"),
                crate::expr::BinaryOp::Eq,
                Expr::lit(4i64),
            )),
            projection: None,
            access: Some(AccessPath::IndexEq {
                column: "o_cust".into(),
                value: Value::Int(4),
            }),
        };
        let res = execute(&plan, &ctx).unwrap();
        let want = (0..1000).filter(|i| i % 10 == 4 && i % 97 != 0).count();
        assert_eq!(res.rows.num_rows(), want);
    }

    #[test]
    fn sketch_build_skips_tombstoned_rows() {
        let cat = catalog();
        // Delete every order of customers 0..5: the sketch must not count
        // their mass when built fresh from the snapshot.
        let dead: Vec<usize> = (0..1000).filter(|i| i % 10 < 5).collect();
        cat.table("orders").unwrap().delete_rows(&dead).unwrap();
        let ctx = ExecutionContext::new(cat);
        let plan = LogicalPlan::SketchJoinAgg {
            probe: Box::new(LogicalPlan::Scan {
                table: "customers".into(),
                filter: None,
                projection: None,
                access: None,
            }),
            probe_keys: vec!["c_id".into()],
            sketch: SketchRef::Build {
                table: "orders".into(),
                key_columns: vec!["o_cust".into()],
                value_column: Some("o_price".into()),
            },
            synopsis_id: 9,
            group_by: vec![],
            aggregates: vec![AggExpr::new(AggFunc::Count, None)],
        };
        let res = execute(&plan, &ctx).unwrap();
        let total: f64 = res.groups.iter().map(|g| g.aggregates[0].value).sum();
        assert!((total - 500.0).abs() / 500.0 < 0.05, "count {total} should track live rows");
    }

    #[test]
    fn limit_truncates() {
        let plan = LogicalPlan::Limit {
            n: 7,
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                filter: None,
                projection: None,
                access: None,
            }),
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.rows.num_rows(), 7);
    }

    #[test]
    fn missing_synopsis_is_an_execution_error() {
        let plan = LogicalPlan::SynopsisScan {
            id: 999,
            filter: None,
        };
        assert!(matches!(
            execute(&plan, &ctx()),
            Err(EngineError::Execution(_))
        ));
    }

    #[test]
    fn join_validates_keys() {
        let b = BatchBuilder::new()
            .column("a", vec![1i64])
            .build()
            .unwrap();
        assert!(hash_join(&b, &b, &[], &[]).is_err());
        assert!(hash_join(&b, &b, &["a".into()], &[]).is_err());
    }
}
