//! Physical execution of logical plans.
//!
//! The executor walks the logical plan bottom-up over columnar batches,
//! reporting per-tier I/O to [`ExecutionMetrics`], scaling aggregates with
//! Horvitz–Thompson weights whenever the input carries a `__weight` column,
//! and collecting every synopsis built along the way as a *byproduct* that
//! the caller (Taster) may materialize.

use std::collections::HashMap;
use std::time::Instant;

use taster_storage::io_model::ExecutionMetrics;
use taster_storage::schema::{DataType, Field, Schema};
use taster_storage::{ColumnData, RecordBatch, Value};
use taster_synopses::distinct::{DistinctSampler, DistinctSamplerConfig};
use taster_synopses::estimator::{AggregateKind, GroupedEstimator};
use taster_synopses::sketch_join::SketchJoin;
use taster_synopses::{AggregateEstimate, UniformSampler, WEIGHT_COLUMN};

use crate::context::{ExecutionContext, SynopsisLocation};
use crate::error::EngineError;
use crate::expr::Expr;
use crate::logical::{AggExpr, AggFunc, LogicalPlan, SampleMethod, SketchRef, SynopsisPayload};
use crate::result::{GroupResult, QueryResult};

/// Execute a logical plan and produce a [`QueryResult`].
pub fn execute(plan: &LogicalPlan, ctx: &ExecutionContext) -> Result<QueryResult, EngineError> {
    let start = Instant::now();
    let mut state = ExecState::default();
    let rows = exec_node(plan, ctx, &mut state)?;
    let mut metrics = state.metrics;
    metrics.wall_time_ns = start.elapsed().as_nanos();
    Ok(QueryResult {
        rows,
        groups: state.last_groups.unwrap_or_default(),
        approximate: plan.is_approximate(),
        metrics,
        byproducts: state.byproducts,
    })
}

#[derive(Default)]
struct ExecState {
    metrics: ExecutionMetrics,
    byproducts: Vec<(u64, SynopsisPayload)>,
    last_groups: Option<Vec<GroupResult>>,
}

fn exec_node(
    plan: &LogicalPlan,
    ctx: &ExecutionContext,
    state: &mut ExecState,
) -> Result<RecordBatch, EngineError> {
    match plan {
        LogicalPlan::Scan {
            table,
            filter,
            projection,
        } => exec_scan(table, filter.as_ref(), projection.as_deref(), ctx, state),
        LogicalPlan::Filter { predicate, input } => {
            let batch = exec_node(input, ctx, state)?;
            state.metrics.operator_rows += batch.num_rows();
            let mask = predicate.evaluate_predicate(&batch)?;
            Ok(batch.filter(&mask))
        }
        LogicalPlan::Project { columns, input } => {
            let batch = exec_node(input, ctx, state)?;
            state.metrics.operator_rows += batch.num_rows();
            let mut cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            // Keep the HT weight flowing to weight-aware operators above.
            if batch.schema().contains(WEIGHT_COLUMN) && !cols.contains(&WEIGHT_COLUMN) {
                cols.push(WEIGHT_COLUMN);
            }
            Ok(batch.project(&cols)?)
        }
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let l = exec_node(left, ctx, state)?;
            let r = exec_node(right, ctx, state)?;
            state.metrics.operator_rows += l.num_rows() + r.num_rows();
            hash_join(&l, &r, left_keys, right_keys)
        }
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input,
        } => {
            let batch = exec_node(input, ctx, state)?;
            state.metrics.operator_rows += batch.num_rows();
            let (out, groups) = exec_aggregate(&batch, group_by, aggregates)?;
            state.last_groups = Some(groups);
            Ok(out)
        }
        LogicalPlan::Sample {
            method,
            synopsis_id,
            input,
        } => {
            let batch = exec_node(input, ctx, state)?;
            state.metrics.operator_rows += batch.num_rows();
            let sample = match method {
                SampleMethod::Uniform { probability } => {
                    let mut s = UniformSampler::new(*probability, ctx.seed ^ *synopsis_id);
                    s.sample_batch(&batch)
                }
                SampleMethod::Distinct {
                    stratification,
                    delta,
                    probability,
                } => {
                    let cfg = DistinctSamplerConfig::new(
                        stratification.clone(),
                        *delta,
                        *probability,
                    );
                    let mut s = DistinctSampler::new(cfg, ctx.seed ^ *synopsis_id);
                    s.sample_batch(&batch)?
                }
            };
            state.metrics.bytes_materialized += sample.size_bytes();
            let weighted = sample.to_weighted_batch()?;
            state
                .byproducts
                .push((*synopsis_id, SynopsisPayload::Sample(sample)));
            Ok(weighted)
        }
        LogicalPlan::SynopsisScan { id, filter } => {
            let Some((sample, location)) = ctx.provider.sample(*id) else {
                return Err(EngineError::Execution(format!(
                    "materialized synopsis {id} not found"
                )));
            };
            charge_synopsis_read(state, location, sample.len(), sample.size_bytes());
            let mut batch = sample.to_weighted_batch()?;
            if let Some(f) = filter {
                let mask = f.evaluate_predicate(&batch)?;
                batch = batch.filter(&mask);
            }
            state.metrics.operator_rows += batch.num_rows();
            Ok(batch)
        }
        LogicalPlan::SketchJoinAgg {
            probe,
            probe_keys,
            sketch,
            synopsis_id,
            group_by,
            aggregates,
        } => {
            let probe_batch = exec_node(probe, ctx, state)?;
            state.metrics.operator_rows += probe_batch.num_rows();
            let sketch = resolve_sketch(sketch, *synopsis_id, ctx, state)?;
            let (out, groups) =
                exec_sketch_join_agg(&probe_batch, probe_keys, &sketch, group_by, aggregates)?;
            state.last_groups = Some(groups);
            Ok(out)
        }
        LogicalPlan::Limit { n, input } => {
            let batch = exec_node(input, ctx, state)?;
            Ok(batch.slice(0, *n))
        }
    }
}

fn exec_scan(
    table: &str,
    filter: Option<&Expr>,
    projection: Option<&[String]>,
    ctx: &ExecutionContext,
    state: &mut ExecState,
) -> Result<RecordBatch, EngineError> {
    let table = ctx.catalog.table(table)?;
    state.metrics.base_rows_scanned += table.num_rows();
    state.metrics.base_bytes_scanned += table.size_bytes();

    let mut pieces: Vec<RecordBatch> = Vec::with_capacity(table.num_partitions());
    for part in table.partitions() {
        let mut batch = part.clone();
        if let Some(f) = filter {
            let mask = f.evaluate_predicate(&batch)?;
            batch = batch.filter(&mask);
        }
        if let Some(cols) = projection {
            let names: Vec<&str> = cols.iter().map(String::as_str).collect();
            batch = batch.project(&names)?;
        }
        pieces.push(batch);
    }
    Ok(RecordBatch::concat(&pieces)?)
}

fn charge_synopsis_read(
    state: &mut ExecState,
    location: SynopsisLocation,
    rows: usize,
    bytes: usize,
) {
    match location {
        SynopsisLocation::Buffer => {
            state.metrics.buffer_rows_read += rows;
            state.metrics.buffer_bytes_read += bytes;
        }
        SynopsisLocation::Warehouse => {
            state.metrics.warehouse_rows_read += rows;
            state.metrics.warehouse_bytes_read += bytes;
        }
    }
}

fn resolve_sketch(
    sketch: &SketchRef,
    synopsis_id: u64,
    ctx: &ExecutionContext,
    state: &mut ExecState,
) -> Result<SketchJoin, EngineError> {
    match sketch {
        SketchRef::Materialized { id } => {
            let Some((sk, location)) = ctx.provider.sketch(*id) else {
                return Err(EngineError::Execution(format!(
                    "materialized sketch {id} not found"
                )));
            };
            charge_synopsis_read(state, location, sk.rows_summarized(), sk.size_bytes());
            Ok(sk.as_ref().clone())
        }
        SketchRef::Build {
            table,
            key_columns,
            value_column,
        } => {
            let t = ctx.catalog.table(table)?;
            state.metrics.base_rows_scanned += t.num_rows();
            state.metrics.base_bytes_scanned += t.size_bytes();
            let sk = SketchJoin::build(
                t.partitions(),
                key_columns.clone(),
                value_column.clone(),
                0.0005,
                0.01,
            )?;
            state.metrics.bytes_materialized += sk.size_bytes();
            state
                .byproducts
                .push((synopsis_id, SynopsisPayload::Sketch(sk.clone())));
            Ok(sk)
        }
    }
}

/// Hash join (equi-join) building on the right input and probing with the
/// left input. Output schema is `left ⨝ right` with duplicated names from the
/// right prefixed by `right.`.
pub fn hash_join(
    left: &RecordBatch,
    right: &RecordBatch,
    left_keys: &[String],
    right_keys: &[String],
) -> Result<RecordBatch, EngineError> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(EngineError::Plan(
            "join requires the same non-zero number of keys on both sides".to_string(),
        ));
    }
    let right_key_cols: Vec<&ColumnData> = right_keys
        .iter()
        .map(|k| right.column_by_name(k))
        .collect::<Result<Vec<_>, _>>()?;
    let left_key_cols: Vec<&ColumnData> = left_keys
        .iter()
        .map(|k| left.column_by_name(k))
        .collect::<Result<Vec<_>, _>>()?;

    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for row in 0..right.num_rows() {
        let key: Vec<Value> = right_key_cols.iter().map(|c| c.value(row)).collect();
        table.entry(key).or_default().push(row);
    }

    let mut left_idx = Vec::new();
    let mut right_idx = Vec::new();
    for row in 0..left.num_rows() {
        let key: Vec<Value> = left_key_cols.iter().map(|c| c.value(row)).collect();
        if let Some(matches) = table.get(&key) {
            for &m in matches {
                left_idx.push(row);
                right_idx.push(m);
            }
        }
    }

    let left_out = left.take(&left_idx);
    let right_out = right.take(&right_idx);
    let out_schema = std::sync::Arc::new(left.schema().join(right.schema()));
    let mut columns: Vec<ColumnData> = left_out.columns().to_vec();
    columns.extend(right_out.columns().iter().cloned());
    Ok(RecordBatch::try_new(out_schema, columns)?)
}

/// Group-by aggregation with optional Horvitz–Thompson weighting.
fn exec_aggregate(
    batch: &RecordBatch,
    group_by: &[String],
    aggregates: &[AggExpr],
) -> Result<(RecordBatch, Vec<GroupResult>), EngineError> {
    let weighted = batch.schema().contains(WEIGHT_COLUMN);
    let weights: Option<&ColumnData> = if weighted {
        Some(batch.column_by_name(WEIGHT_COLUMN)?)
    } else {
        None
    };
    let group_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|g| batch.column_by_name(g))
        .collect::<Result<Vec<_>, _>>()?;
    let agg_cols: Vec<Option<&ColumnData>> = aggregates
        .iter()
        .map(|a| match &a.column {
            Some(c) => batch.column_by_name(c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<Vec<_>, _>>()?;

    let mut estimators: Vec<GroupedEstimator> = aggregates
        .iter()
        .map(|a| GroupedEstimator::new(a.func.kind()))
        .collect();

    for row in 0..batch.num_rows() {
        let key: Vec<Value> = group_cols.iter().map(|c| c.value(row)).collect();
        let w = weights.map_or(1.0, |c| c.value_f64(row).unwrap_or(1.0));
        for (est, col) in estimators.iter_mut().zip(&agg_cols) {
            let value = match (est.kind(), col) {
                (AggregateKind::Count, _) => 1.0,
                (_, Some(c)) => c.value_f64(row).unwrap_or(0.0),
                (_, None) => 1.0,
            };
            est.add(key.clone(), value, w);
        }
    }

    let mut per_agg: Vec<HashMap<Vec<Value>, AggregateEstimate>> =
        estimators.iter().map(|e| e.finish()).collect();
    if !weighted {
        // Exact execution: no sampling error regardless of what the CLT
        // machinery reports for AVG.
        for map in &mut per_agg {
            for est in map.values_mut() {
                est.std_error = 0.0;
            }
        }
    }

    // Deterministic output order.
    let mut keys: Vec<Vec<Value>> = per_agg
        .first()
        .map(|m| m.keys().cloned().collect())
        .unwrap_or_default();
    keys.sort();

    let groups: Vec<GroupResult> = keys
        .iter()
        .map(|k| GroupResult {
            key: k.clone(),
            aggregates: per_agg.iter().map(|m| m[k].clone()).collect(),
        })
        .collect();

    let out = build_group_batch(batch, group_by, aggregates, &groups)?;
    Ok((out, groups))
}

/// Aggregate over a sketch-join: the probe side is scanned row by row, each
/// row looks up its join key in the sketch, and the per-key COUNT/SUM
/// contributions are accumulated per group (scaled by the probe row's HT
/// weight if the probe side was sampled).
fn exec_sketch_join_agg(
    probe: &RecordBatch,
    probe_keys: &[String],
    sketch: &SketchJoin,
    group_by: &[String],
    aggregates: &[AggExpr],
) -> Result<(RecordBatch, Vec<GroupResult>), EngineError> {
    let weighted = probe.schema().contains(WEIGHT_COLUMN);
    let weights: Option<&ColumnData> = if weighted {
        Some(probe.column_by_name(WEIGHT_COLUMN)?)
    } else {
        None
    };
    let key_cols: Vec<&ColumnData> = probe_keys
        .iter()
        .map(|k| probe.column_by_name(k))
        .collect::<Result<Vec<_>, _>>()?;
    let group_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|g| probe.column_by_name(g))
        .collect::<Result<Vec<_>, _>>()?;

    #[derive(Default, Clone)]
    struct Acc {
        count: f64,
        sum: f64,
        probe_rows: usize,
    }
    let mut accs: HashMap<Vec<Value>, Acc> = HashMap::new();

    for row in 0..probe.num_rows() {
        let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
        let group: Vec<Value> = group_cols.iter().map(|c| c.value(row)).collect();
        let w = weights.map_or(1.0, |c| c.value_f64(row).unwrap_or(1.0));
        let p = sketch.probe(&key);
        let acc = accs.entry(group).or_default();
        acc.count += w * p.count;
        acc.sum += w * p.sum;
        acc.probe_rows += 1;
    }

    let (count_bound, sum_bound) = sketch.error_bounds();
    let z95 = taster_synopses::estimator::z_score(0.95);

    let mut keys: Vec<Vec<Value>> = accs.keys().cloned().collect();
    keys.sort();
    let groups: Vec<GroupResult> = keys
        .iter()
        .map(|k| {
            let acc = &accs[k];
            let aggs = aggregates
                .iter()
                .map(|a| {
                    let (value, bound) = match a.func {
                        AggFunc::Count => (acc.count, count_bound),
                        AggFunc::Sum => (acc.sum, sum_bound),
                        AggFunc::Avg => {
                            let avg = if acc.count > 0.0 { acc.sum / acc.count } else { 0.0 };
                            (avg, sum_bound / acc.count.max(1.0))
                        }
                        // MIN/MAX cannot be answered from a CM sketch; report
                        // the sum-side value so results stay well-formed (the
                        // planner never routes MIN/MAX through sketch-join).
                        AggFunc::Min | AggFunc::Max => (acc.sum, sum_bound),
                    };
                    AggregateEstimate {
                        value,
                        std_error: bound / z95,
                        sample_rows: acc.probe_rows,
                    }
                })
                .collect();
            GroupResult {
                key: k.clone(),
                aggregates: aggs,
            }
        })
        .collect();

    let out = build_group_batch(probe, group_by, aggregates, &groups)?;
    Ok((out, groups))
}

/// Materialize grouped results into a batch: group columns followed by one
/// Float64 column per aggregate.
fn build_group_batch(
    input: &RecordBatch,
    group_by: &[String],
    aggregates: &[AggExpr],
    groups: &[GroupResult],
) -> Result<RecordBatch, EngineError> {
    let mut fields = Vec::with_capacity(group_by.len() + aggregates.len());
    let mut columns: Vec<ColumnData> = Vec::with_capacity(group_by.len() + aggregates.len());

    for (i, g) in group_by.iter().enumerate() {
        let dt = input.schema().field_by_name(g)?.data_type;
        fields.push(Field::new(g.clone(), dt));
        let mut col = ColumnData::with_capacity(dt, groups.len());
        for grp in groups {
            col.push(&grp.key[i])?;
        }
        columns.push(col);
    }
    for (i, a) in aggregates.iter().enumerate() {
        fields.push(Field::new(a.alias.clone(), DataType::Float64));
        let col = ColumnData::Float64(groups.iter().map(|g| g.aggregates[i].value).collect());
        columns.push(col);
    }
    Ok(RecordBatch::try_new(
        std::sync::Arc::new(Schema::new(fields)),
        columns,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::{Catalog, Table};

    fn catalog() -> Arc<Catalog> {
        let cat = Catalog::new();
        let orders = BatchBuilder::new()
            .column("o_id", (0..1000i64).collect::<Vec<_>>())
            .column("o_cust", (0..1000i64).map(|i| i % 10).collect::<Vec<_>>())
            .column("o_price", (0..1000).map(|i| (i % 100) as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("orders", orders, 4).unwrap());
        let cust = BatchBuilder::new()
            .column("c_id", (0..10i64).collect::<Vec<_>>())
            .column("c_region", (0..10i64).map(|i| i % 3).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("customers", cust, 1).unwrap());
        Arc::new(cat)
    }

    fn ctx() -> ExecutionContext {
        ExecutionContext::new(catalog())
    }

    #[test]
    fn scan_filter_project() {
        let plan = LogicalPlan::Scan {
            table: "orders".into(),
            filter: Some(Expr::binary(
                Expr::col("o_cust"),
                crate::expr::BinaryOp::Eq,
                Expr::lit(3i64),
            )),
            projection: Some(vec!["o_id".into(), "o_price".into()]),
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.rows.num_rows(), 100);
        assert_eq!(res.rows.num_columns(), 2);
        assert_eq!(res.metrics.base_rows_scanned, 1000);
        assert!(!res.approximate);
    }

    #[test]
    fn exact_aggregate_matches_hand_computation() {
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["o_cust".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Count, None),
                AggExpr::new(AggFunc::Sum, Some("o_price".into())),
                AggExpr::new(AggFunc::Avg, Some("o_price".into())),
            ],
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                filter: None,
                projection: None,
            }),
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.num_groups(), 10);
        let g0 = &res.group_map()[&vec![Value::Int(0)]];
        assert_eq!(g0.aggregates[0].value, 100.0);
        // customer 0 gets orders 0,10,...,990 => price = (i%100): 0,10,...,90 repeated
        let sum: f64 = (0..1000)
            .filter(|i| i % 10 == 0)
            .map(|i| (i % 100) as f64)
            .sum();
        assert!((g0.aggregates[1].value - sum).abs() < 1e-9);
        assert_eq!(g0.aggregates[1].std_error, 0.0);
        assert!((g0.aggregates[2].value - sum / 100.0).abs() < 1e-9);
    }

    #[test]
    fn join_then_aggregate() {
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["c_region".into()],
            aggregates: vec![AggExpr::new(AggFunc::Count, None)],
            input: Box::new(LogicalPlan::Join {
                left: Box::new(LogicalPlan::Scan {
                    table: "orders".into(),
                    filter: None,
                    projection: None,
                }),
                right: Box::new(LogicalPlan::Scan {
                    table: "customers".into(),
                    filter: None,
                    projection: None,
                }),
                left_keys: vec!["o_cust".into()],
                right_keys: vec!["c_id".into()],
            }),
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.num_groups(), 3);
        let total: f64 = res.groups.iter().map(|g| g.aggregates[0].value).sum();
        assert_eq!(total, 1000.0);
    }

    #[test]
    fn sampled_aggregate_is_close_and_produces_byproduct() {
        let plan = LogicalPlan::Aggregate {
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::new(AggFunc::Sum, Some("o_price".into()))],
            input: Box::new(LogicalPlan::Sample {
                method: SampleMethod::Distinct {
                    stratification: vec!["o_cust".into()],
                    delta: 10,
                    probability: 0.3,
                },
                synopsis_id: 77,
                input: Box::new(LogicalPlan::Scan {
                    table: "orders".into(),
                    filter: None,
                    projection: None,
                }),
            }),
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert!(res.approximate);
        assert_eq!(res.num_groups(), 10, "distinct sampler must not lose groups");
        assert_eq!(res.byproducts.len(), 1);
        assert_eq!(res.byproducts[0].0, 77);
        // Compare against exact.
        let exact_plan = LogicalPlan::Aggregate {
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::new(AggFunc::Sum, Some("o_price".into()))],
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                filter: None,
                projection: None,
            }),
        };
        let exact = execute(&exact_plan, &ctx()).unwrap();
        let (err, missed) = res.error_vs(&exact);
        assert_eq!(missed, 0);
        assert!(err < 0.5, "sampled SUM error too large: {err}");
    }

    #[test]
    fn sketch_join_agg_close_to_exact() {
        let plan = LogicalPlan::SketchJoinAgg {
            probe: Box::new(LogicalPlan::Scan {
                table: "customers".into(),
                filter: None,
                projection: None,
            }),
            probe_keys: vec!["c_id".into()],
            sketch: SketchRef::Build {
                table: "orders".into(),
                key_columns: vec!["o_cust".into()],
                value_column: Some("o_price".into()),
            },
            synopsis_id: 5,
            group_by: vec!["c_region".into()],
            aggregates: vec![
                AggExpr::new(AggFunc::Count, None),
                AggExpr::new(AggFunc::Sum, Some("o_price".into())),
            ],
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.num_groups(), 3);
        let total_count: f64 = res.groups.iter().map(|g| g.aggregates[0].value).sum();
        assert!((total_count - 1000.0).abs() / 1000.0 < 0.05, "{total_count}");
        assert!(res
            .byproducts
            .iter()
            .any(|(id, p)| *id == 5 && matches!(p, SynopsisPayload::Sketch(_))));
    }

    #[test]
    fn limit_truncates() {
        let plan = LogicalPlan::Limit {
            n: 7,
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                filter: None,
                projection: None,
            }),
        };
        let res = execute(&plan, &ctx()).unwrap();
        assert_eq!(res.rows.num_rows(), 7);
    }

    #[test]
    fn missing_synopsis_is_an_execution_error() {
        let plan = LogicalPlan::SynopsisScan {
            id: 999,
            filter: None,
        };
        assert!(matches!(
            execute(&plan, &ctx()),
            Err(EngineError::Execution(_))
        ));
    }

    #[test]
    fn join_validates_keys() {
        let b = BatchBuilder::new()
            .column("a", vec![1i64])
            .build()
            .unwrap();
        assert!(hash_join(&b, &b, &[], &[]).is_err());
        assert!(hash_join(&b, &b, &["a".into()], &[]).is_err());
    }
}
