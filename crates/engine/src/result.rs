//! Query results: relational output, per-group estimates and byproducts.

use std::collections::HashMap;

use taster_storage::io_model::ExecutionMetrics;
use taster_storage::{RecordBatch, Value};
use taster_synopses::AggregateEstimate;

use crate::logical::SynopsisPayload;

/// One output group of an (approximate) aggregation.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// The group key (values of the GROUP BY columns, in order; empty for
    /// global aggregates).
    pub key: Vec<Value>,
    /// One estimate per aggregate expression, in SELECT order.
    pub aggregates: Vec<AggregateEstimate>,
}

/// The full result of executing a query plan.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Relational output (group keys + aggregate point estimates, or plain
    /// rows for non-aggregate queries).
    pub rows: RecordBatch,
    /// Per-group estimates with error information; empty for non-aggregate
    /// queries.
    pub groups: Vec<GroupResult>,
    /// `true` if any synopsis operator participated in the plan.
    pub approximate: bool,
    /// Execution metrics (rows/bytes scanned per tier, wall time).
    pub metrics: ExecutionMetrics,
    /// Synopses built as byproducts of this execution, keyed by the
    /// `synopsis_id` the planner assigned to the operator that built them.
    pub byproducts: Vec<(u64, SynopsisPayload)>,
}

impl QueryResult {
    /// The maximum relative error across groups and aggregates at the given
    /// confidence level (0 for exact results, `inf` if any estimate has an
    /// unbounded relative error).
    pub fn max_relative_error(&self, confidence: f64) -> f64 {
        self.groups
            .iter()
            .flat_map(|g| g.aggregates.iter())
            .map(|a| a.relative_error(confidence))
            .fold(0.0, f64::max)
    }

    /// Number of output groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Index the groups by key for comparisons against other results (used
    /// heavily by the accuracy experiments).
    pub fn group_map(&self) -> HashMap<Vec<Value>, &GroupResult> {
        self.groups.iter().map(|g| (g.key.clone(), g)).collect()
    }

    /// Compare this (approximate) result against an exact reference and
    /// return `(max_relative_error, missed_groups)` over the first aggregate
    /// of every group — the two quantities the paper's accuracy experiment
    /// (Fig. 5) reports.
    pub fn error_vs(&self, exact: &QueryResult) -> (f64, usize) {
        let approx = self.group_map();
        let mut max_err = 0.0f64;
        let mut missed = 0usize;
        for g in &exact.groups {
            match approx.get(&g.key) {
                None => missed += 1,
                Some(a) => {
                    for (ea, aa) in g.aggregates.iter().zip(a.aggregates.iter()) {
                        let truth = ea.value;
                        if truth.abs() < f64::EPSILON {
                            continue;
                        }
                        let err = (aa.value - truth).abs() / truth.abs();
                        max_err = max_err.max(err);
                    }
                }
            }
        }
        (max_err, missed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taster_storage::Schema;

    fn result(groups: Vec<GroupResult>) -> QueryResult {
        QueryResult {
            rows: RecordBatch::empty(Arc::new(Schema::empty())),
            groups,
            approximate: true,
            metrics: ExecutionMetrics::default(),
            byproducts: vec![],
        }
    }

    fn group(key: i64, value: f64, err: f64) -> GroupResult {
        GroupResult {
            key: vec![Value::Int(key)],
            aggregates: vec![AggregateEstimate {
                value,
                std_error: err,
                sample_rows: 10,
            }],
        }
    }

    #[test]
    fn max_relative_error_over_groups() {
        let r = result(vec![group(1, 100.0, 1.0), group(2, 100.0, 10.0)]);
        let e = r.max_relative_error(0.95);
        assert!(e > 0.15 && e < 0.25, "{e}");
    }

    #[test]
    fn error_vs_exact_counts_missed_groups() {
        let approx = result(vec![group(1, 95.0, 0.0)]);
        let exact = result(vec![group(1, 100.0, 0.0), group(2, 50.0, 0.0)]);
        let (err, missed) = approx.error_vs(&exact);
        assert!((err - 0.05).abs() < 1e-9);
        assert_eq!(missed, 1);
    }

    #[test]
    fn group_map_indexes_by_key() {
        let r = result(vec![group(7, 1.0, 0.0)]);
        assert!(r.group_map().contains_key(&vec![Value::Int(7)]));
        assert_eq!(r.num_groups(), 1);
    }
}
