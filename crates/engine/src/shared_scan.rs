//! Shared morsel passes: concurrent queries attach to one scan.
//!
//! Under many-session traffic the same table is scanned by many queries at
//! once, often with the identical filter/projection shape (dashboards issuing
//! the same template, a fleet of sessions warming the same synopsis). The
//! scan result is a pure function of `(snapshot version, filter, projection)`
//! — the PR 5 [`TableSnapshot`](taster_storage::table::TableSnapshot) is
//! immutable — so running the morsel pass once and handing the batch to every
//! concurrent query is bit-identical to running it per query.
//!
//! [`SharedScanRegistry`] implements that attach/detach protocol:
//!
//! * the **first** query to arrive at a scan key becomes the *leader*: it
//!   runs the real morsel pass and publishes the result;
//! * queries arriving while the pass is in flight **attach**: they block on
//!   the leader's cell and receive the identical [`ScanPass`] (same batch,
//!   same metric charges — an attached query reports exactly what a solo run
//!   would);
//! * the key includes the **snapshot version**, so a query that observes a
//!   mid-pass [`append`](taster_storage::Table::append) computes a different
//!   key and starts its own pass over the newer snapshot — attach points
//!   straddling an append can never mix rows from two versions;
//! * when the leader finishes (or fails), the key is retired; late arrivals
//!   start a fresh pass.
//!
//! The registry is optional: executors without one (the default
//! [`ExecutionContext`](crate::context::ExecutionContext)) run every scan
//! solo. Index-probe access paths never share — the probe reads a tiny,
//! query-specific row subset, so there is nothing worth batching.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use taster_storage::RecordBatch;

use crate::error::EngineError;

/// Identity of one shareable scan pass.
///
/// Two queries may share a pass only if every field matches: same table, same
/// published snapshot version (immutable partition list + zone maps), and the
/// same filter/projection shape. The shape string is derived from the plan's
/// own deterministic debug representation, so structurally identical scans
/// collide and anything else does not.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScanKey {
    /// Table name.
    pub table: String,
    /// `TableSnapshot::version()` the scan runs over.
    pub snapshot_version: u64,
    /// Fingerprint of the filter + projection shape.
    pub shape: String,
}

/// The published output of one morsel pass, shared by every attached query.
///
/// `rows_scanned` / `bytes_scanned` are the base-table charges a *solo* run
/// of this scan would report; attached queries charge the same numbers so
/// shared and solo executions are indistinguishable in their metrics.
#[derive(Debug, Clone)]
pub struct ScanPass {
    /// The filtered, projected, concatenated scan output.
    pub batch: RecordBatch,
    /// Base rows read by the pass (surviving partitions only).
    pub rows_scanned: usize,
    /// Base bytes read by the pass.
    pub bytes_scanned: usize,
}

/// Counters describing how much scan work was shared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedScanStats {
    /// Morsel passes actually executed (leaders).
    pub passes: u64,
    /// Queries that attached to an in-flight pass instead of scanning.
    pub attached: u64,
}

/// One in-flight pass: the leader publishes into `result`, attachers wait on
/// `done`. Failures travel as strings so the slot stays cloneable.
#[derive(Default)]
struct Cell {
    result: Mutex<Option<Result<Arc<ScanPass>, String>>>,
    done: Condvar,
}

/// The attach/detach registry; one per engine, shared by all sessions.
///
/// All methods take `&self` and the registry is safe to share across session
/// threads (`Arc<SharedScanRegistry>`).
#[derive(Default)]
pub struct SharedScanRegistry {
    inflight: Mutex<HashMap<ScanKey, Arc<Cell>>>,
    passes: AtomicU64,
    attached: AtomicU64,
}

/// Retires the leader's key on every exit path. If the leader unwinds before
/// publishing (a panic inside the pass), the guard publishes a failure so
/// attached queries error out instead of blocking forever.
struct LeaderGuard<'a> {
    registry: &'a SharedScanRegistry,
    key: &'a ScanKey,
    cell: &'a Cell,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.cell.result);
            if slot.is_none() {
                *slot = Some(Err("scan pass abandoned by its leader".to_string()));
            }
            self.cell.done.notify_all();
        }
        lock(&self.registry.inflight).remove(self.key);
    }
}

/// Poison-transparent lock: the registry's invariants hold on every exit path
/// (the leader guard publishes before unlocking), so a panic elsewhere on the
/// holding thread must not cascade into every attached session.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SharedScanRegistry {
    /// A fresh registry with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run the scan pass for `key`, or attach to one already in flight.
    ///
    /// Returns the pass output and whether this call attached (`true`) or led
    /// the pass (`false`). The leader's error is returned verbatim to the
    /// leader and mirrored (stringified) to every attached query.
    pub fn run_or_attach<F>(&self, key: ScanKey, pass: F) -> Result<(Arc<ScanPass>, bool), EngineError>
    where
        F: FnOnce() -> Result<ScanPass, EngineError>,
    {
        let (cell, leading) = {
            let mut inflight = lock(&self.inflight);
            match inflight.entry(key.clone()) {
                Entry::Occupied(e) => (Arc::clone(e.get()), false),
                Entry::Vacant(v) => {
                    let cell = Arc::new(Cell::default());
                    v.insert(Arc::clone(&cell));
                    (cell, true)
                }
            }
        };

        if leading {
            let guard = LeaderGuard {
                registry: self,
                key: &key,
                cell: &cell,
            };
            let outcome = pass().map(Arc::new);
            {
                let mut slot = lock(&cell.result);
                *slot = Some(outcome.clone().map_err(|e| e.to_string()));
                cell.done.notify_all();
            }
            drop(guard);
            self.passes.fetch_add(1, Ordering::Relaxed);
            outcome.map(|p| (p, false))
        } else {
            let mut slot = lock(&cell.result);
            while slot.is_none() {
                slot = cell.done.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
            let published = slot.clone();
            drop(slot);
            self.attached.fetch_add(1, Ordering::Relaxed);
            match published {
                Some(Ok(p)) => Ok((p, true)),
                Some(Err(msg)) => Err(EngineError::Execution(format!(
                    "attached scan pass failed: {msg}"
                ))),
                None => unreachable!("waited until the slot was published"),
            }
        }
    }

    /// Snapshot of the pass/attach counters.
    pub fn stats(&self) -> SharedScanStats {
        SharedScanStats {
            passes: self.passes.load(Ordering::Relaxed),
            attached: self.attached.load(Ordering::Relaxed),
        }
    }

    /// Number of passes currently in flight (for tests and introspection).
    pub fn inflight_len(&self) -> usize {
        lock(&self.inflight).len()
    }
}

impl std::fmt::Debug for SharedScanRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedScanRegistry")
            .field("stats", &self.stats())
            .field("inflight", &self.inflight_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use taster_storage::batch::BatchBuilder;

    fn key(version: u64, shape: &str) -> ScanKey {
        ScanKey {
            table: "orders".to_string(),
            snapshot_version: version,
            shape: shape.to_string(),
        }
    }

    fn pass(tag: i64) -> ScanPass {
        let batch = BatchBuilder::new()
            .column("x", vec![tag])
            .build()
            .expect("batch");
        ScanPass {
            batch,
            rows_scanned: 1,
            bytes_scanned: 8,
        }
    }

    #[test]
    fn solo_pass_runs_and_retires_key() {
        let reg = SharedScanRegistry::new();
        let (out, attached) = reg.run_or_attach(key(1, "f"), || Ok(pass(7))).unwrap();
        assert!(!attached);
        assert_eq!(out.rows_scanned, 1);
        assert_eq!(reg.inflight_len(), 0);
        assert_eq!(reg.stats(), SharedScanStats { passes: 1, attached: 0 });
    }

    #[test]
    fn concurrent_queries_attach_to_one_pass() {
        let reg = Arc::new(SharedScanRegistry::new());
        let threads = 8;
        let gate = Arc::new(Barrier::new(threads));
        // A leader that blocks until every thread has arrived guarantees the
        // other seven attach deterministically.
        let entered = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let reg = Arc::clone(&reg);
                let gate = Arc::clone(&gate);
                let entered = Arc::clone(&entered);
                std::thread::spawn(move || {
                    if i == 0 {
                        reg.run_or_attach(key(1, "f"), || {
                            entered.wait(); // leader is registered; release the pack
                            gate.wait(); // wait until all attachers have launched
                            // Linger so the released pack reaches the
                            // registry while this pass is still in flight.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            Ok(pass(1))
                        })
                        .unwrap()
                    } else {
                        entered.wait();
                        gate.wait();
                        reg.run_or_attach(key(1, "f"), || Ok(pass(1))).unwrap()
                    }
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let stats = reg.stats();
        // The barrier only guarantees the leader is in flight when the pack
        // is released; stragglers arriving after the pass retires lead their
        // own. Every query must still account to exactly one pass.
        assert!(stats.passes >= 1);
        assert_eq!(stats.passes + stats.attached, threads as u64);
        assert!(stats.attached >= 1, "at least one query must attach");
        for (out, _) in results {
            assert_eq!(out.rows_scanned, 1);
        }
        assert_eq!(reg.inflight_len(), 0);
    }

    #[test]
    fn different_snapshot_versions_never_share() {
        let reg = SharedScanRegistry::new();
        let (_, a) = reg.run_or_attach(key(1, "f"), || Ok(pass(1))).unwrap();
        let (_, b) = reg.run_or_attach(key(2, "f"), || Ok(pass(2))).unwrap();
        assert!(!a && !b);
        assert_eq!(reg.stats().passes, 2);
    }

    #[test]
    fn leader_error_reaches_attachers_and_retires_key() {
        let reg = Arc::new(SharedScanRegistry::new());
        let reg2 = Arc::clone(&reg);
        let in_pass = Arc::new(Barrier::new(2));
        let in_pass2 = Arc::clone(&in_pass);
        let leader = std::thread::spawn(move || {
            reg2.run_or_attach(key(1, "f"), || {
                in_pass2.wait();
                // Give the attacher a moment to block on the cell.
                std::thread::sleep(std::time::Duration::from_millis(20));
                Err(EngineError::Execution("boom".to_string()))
            })
        });
        in_pass.wait();
        let attached = reg.run_or_attach(key(1, "f"), || Ok(pass(1)));
        assert!(leader.join().unwrap().is_err());
        match attached {
            // Attached while the failing pass was in flight: the error mirrors.
            Err(EngineError::Execution(msg)) => assert!(msg.contains("boom"), "{msg}"),
            // Arrived after the key retired: led a fresh, successful pass.
            Ok((_, attached)) => assert!(!attached),
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(reg.inflight_len(), 0);
    }
}
