//! SQL subset parser.
//!
//! Taster "accepts and answers all SQL queries supported by Spark SQL" and
//! adds the accuracy clause `ERROR WITHIN x% AT CONFIDENCE y%`. The
//! reproduction parses the aggregate-oriented subset the evaluation actually
//! exercises:
//!
//! ```sql
//! SELECT g1, g2, AGG(col), ...
//! FROM fact
//!   JOIN dim ON fact.k = dim.k [AND ...]
//! WHERE col OP literal [AND ...]
//! GROUP BY g1, g2
//! ERROR WITHIN 10% AT CONFIDENCE 95%
//! ```
//!
//! with `AGG ∈ {COUNT, SUM, AVG, MIN, MAX}` and `OP` one of the six
//! comparison operators (`=`, `<>`, `!=`, `<`, `<=`, `>`, `>=`). Identifiers
//! may be qualified (`lineitem.l_price`); qualifiers are stripped because all
//! benchmark schemas use globally unique column names.

use serde::{Deserialize, Serialize};
use taster_storage::{Catalog, Value};

use crate::error::EngineError;
use crate::expr::{BinaryOp, Expr};
use crate::logical::{AggExpr, AggFunc, LogicalPlan};
use crate::optimizer::optimize;

/// Accuracy requirement attached to a query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSpec {
    /// Maximum relative error per group (e.g. 0.10 for "WITHIN 10%").
    pub relative_error: f64,
    /// Confidence level (e.g. 0.95 for "CONFIDENCE 95%").
    pub confidence: f64,
}

impl Default for ErrorSpec {
    fn default() -> Self {
        Self {
            relative_error: 0.10,
            confidence: 0.95,
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// A plain (grouping) column.
    Column(String),
    /// An aggregate expression.
    Aggregate(AggExpr),
}

/// One JOIN clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinSpec {
    /// The joined table.
    pub table: String,
    /// Equality conditions as `(column_a, column_b)` pairs; side resolution
    /// happens during plan building using the catalog.
    pub conditions: Vec<(String, String)>,
}

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectQuery {
    /// SELECT list in order.
    pub select: Vec<SelectItem>,
    /// The first FROM table.
    pub from: String,
    /// JOIN clauses in order.
    pub joins: Vec<JoinSpec>,
    /// WHERE predicates (implicitly AND-ed).
    pub predicates: Vec<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<String>,
    /// Optional accuracy requirement.
    pub error_spec: Option<ErrorSpec>,
    /// The original SQL text (useful for logging and the metadata store).
    pub text: String,
}

impl SelectQuery {
    /// All tables touched by the query, FROM table first.
    pub fn tables(&self) -> Vec<String> {
        let mut out = vec![self.from.clone()];
        out.extend(self.joins.iter().map(|j| j.table.clone()));
        out
    }

    /// The aggregate expressions in SELECT order.
    pub fn aggregates(&self) -> Vec<AggExpr> {
        self.select
            .iter()
            .filter_map(|s| match s {
                SelectItem::Aggregate(a) => Some(a.clone()),
                SelectItem::Column(_) => None,
            })
            .collect()
    }

    /// `true` if the query contains at least one approximable aggregate.
    pub fn is_approximable(&self) -> bool {
        self.aggregates().iter().any(|a| a.func.is_approximable())
    }

    /// The accuracy requirement, defaulting to 10% at 95% confidence (the
    /// configuration used throughout the paper's evaluation).
    pub fn accuracy(&self) -> ErrorSpec {
        self.error_spec.unwrap_or_default()
    }

    /// Build the exact (synopsis-free) logical plan for this query.
    pub fn to_exact_plan(&self, catalog: &Catalog) -> Result<LogicalPlan, EngineError> {
        let mut plan = LogicalPlan::Scan {
            table: self.from.clone(),
            filter: None,
            projection: None,
            access: None,
        };
        let mut left_tables = vec![self.from.clone()];

        for join in &self.joins {
            let right_table = catalog.table(&join.table)?;
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            for (a, b) in &join.conditions {
                if right_table.schema().contains(b) {
                    left_keys.push(a.clone());
                    right_keys.push(b.clone());
                } else if right_table.schema().contains(a) {
                    left_keys.push(b.clone());
                    right_keys.push(a.clone());
                } else {
                    return Err(EngineError::Plan(format!(
                        "join condition {a} = {b} does not reference table {}",
                        join.table
                    )));
                }
            }
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(LogicalPlan::Scan {
                    table: join.table.clone(),
                    filter: None,
                    projection: None,
                    access: None,
                }),
                left_keys,
                right_keys,
            };
            left_tables.push(join.table.clone());
        }

        for pred in &self.predicates {
            plan = LogicalPlan::Filter {
                predicate: pred.clone(),
                input: Box::new(plan),
            };
        }

        let aggregates = self.aggregates();
        if !aggregates.is_empty() {
            plan = LogicalPlan::Aggregate {
                group_by: self.group_by.clone(),
                aggregates,
                input: Box::new(plan),
            };
        } else {
            let columns: Vec<String> = self
                .select
                .iter()
                .filter_map(|s| match s {
                    SelectItem::Column(c) => Some(c.clone()),
                    SelectItem::Aggregate(_) => None,
                })
                .collect();
            if !columns.is_empty() {
                plan = LogicalPlan::Project {
                    columns,
                    input: Box::new(plan),
                };
            }
        }
        Ok(optimize(plan))
    }
}

/// Parse a SQL string into a [`SelectQuery`].
pub fn parse_query(sql: &str) -> Result<SelectQuery, EngineError> {
    Parser::new(sql)?.parse()
}

/// A parsed `DELETE FROM t [WHERE col OP literal [AND ...]]` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteStatement {
    /// The mutated table.
    pub table: String,
    /// WHERE predicates (implicitly AND-ed); empty means every row.
    pub predicates: Vec<Expr>,
    /// The original SQL text.
    pub text: String,
}

/// A parsed `UPDATE t SET col = literal [, ...] [WHERE ...]` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStatement {
    /// The mutated table.
    pub table: String,
    /// `SET` assignments in order: `(column, new value)`.
    pub assignments: Vec<(String, Value)>,
    /// WHERE predicates (implicitly AND-ed); empty means every row.
    pub predicates: Vec<Expr>,
    /// The original SQL text.
    pub text: String,
}

/// Any statement the front end accepts: queries plus the two mutations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// A SELECT query (possibly approximate).
    Select(SelectQuery),
    /// A DELETE mutation.
    Delete(DeleteStatement),
    /// An UPDATE mutation.
    Update(UpdateStatement),
}

/// Parse a SQL string into a [`Statement`], dispatching on the leading
/// keyword (`SELECT` / `DELETE` / `UPDATE`).
pub fn parse_statement(sql: &str) -> Result<Statement, EngineError> {
    let mut parser = Parser::new(sql)?;
    if parser.peek_keyword("DELETE") {
        parser.parse_delete().map(Statement::Delete)
    } else if parser.peek_keyword("UPDATE") {
        parser.parse_update().map(Statement::Update)
    } else {
        parser.parse().map(Statement::Select)
    }
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    StringLit(String),
    Symbol(String),
}

fn tokenize(sql: &str) -> Result<Vec<Token>, EngineError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                i += 1;
            }
            tokens.push(Token::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let n: f64 = text
                .parse()
                .map_err(|_| EngineError::Parse(format!("bad number literal '{text}'")))?;
            tokens.push(Token::Number(n));
        } else if c == '\'' {
            i += 1;
            let start = i;
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
            if i >= chars.len() {
                return Err(EngineError::Parse("unterminated string literal".into()));
            }
            tokens.push(Token::StringLit(chars[start..i].iter().collect()));
            i += 1;
        } else {
            // Multi-character operators first.
            let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
            if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
                tokens.push(Token::Symbol(two));
                i += 2;
            } else {
                tokens.push(Token::Symbol(c.to_string()));
                i += 1;
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    text: String,
}

impl Parser {
    fn new(sql: &str) -> Result<Self, EngineError> {
        Ok(Self {
            tokens: tokenize(sql)?,
            pos: 0,
            text: sql.trim().to_string(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), EngineError> {
        if self.peek_keyword(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), EngineError> {
        match self.next() {
            Some(Token::Symbol(s)) if s == sym => Ok(()),
            other => Err(EngineError::Parse(format!(
                "expected '{sym}', found {other:?}"
            ))),
        }
    }

    fn parse_ident(&mut self) -> Result<String, EngineError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(strip_qualifier(&s)),
            other => Err(EngineError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse(&mut self) -> Result<SelectQuery, EngineError> {
        self.expect_keyword("SELECT")?;
        let select = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.parse_table_name("FROM")?;
        let mut joins = Vec::new();
        while self.peek_keyword("JOIN") {
            self.pos += 1;
            let table = self.parse_table_name("JOIN")?;
            let mut conditions = Vec::new();
            if self.peek_keyword("ON") {
                self.pos += 1;
                loop {
                    let a = self.parse_ident()?;
                    self.expect_symbol("=")?;
                    let b = self.parse_ident()?;
                    conditions.push((a, b));
                    if self.peek_keyword("AND") {
                        // Only consume the AND if another equi-condition
                        // follows; otherwise it belongs to WHERE-less chained
                        // syntax which we do not support.
                        let save = self.pos;
                        self.pos += 1;
                        if matches!(self.peek(), Some(Token::Ident(_)))
                            && matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol(s)) if s == "=")
                            && matches!(self.tokens.get(self.pos + 2), Some(Token::Ident(_)))
                        {
                            continue;
                        }
                        self.pos = save;
                        break;
                    }
                    break;
                }
            }
            joins.push(JoinSpec { table, conditions });
        }

        let predicates = self.parse_where_clause()?;

        let mut group_by = Vec::new();
        if self.peek_keyword("GROUP") {
            self.pos += 1;
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_ident()?);
                if matches!(self.peek(), Some(Token::Symbol(s)) if s == ",") {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        let error_spec = if self.peek_keyword("ERROR") {
            self.pos += 1;
            self.expect_keyword("WITHIN")?;
            let err = self.parse_percent()?;
            if self.peek_keyword("AT") {
                self.pos += 1;
            }
            self.expect_keyword("CONFIDENCE")?;
            let conf = self.parse_percent()?;
            Some(ErrorSpec {
                relative_error: err,
                confidence: conf,
            })
        } else {
            None
        };

        self.expect_end()?;

        Ok(SelectQuery {
            select,
            from,
            joins,
            predicates,
            group_by,
            error_spec,
            text: self.text.clone(),
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>, EngineError> {
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if matches!(self.peek(), Some(Token::Symbol(s)) if s == ",") {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, EngineError> {
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            let func = match name.to_uppercase().as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                if matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol(s)) if s == "(") {
                    self.pos += 2; // consume func name and '('
                    let column = match self.next() {
                        Some(Token::Symbol(s)) if s == "*" => None,
                        Some(Token::Ident(c)) => Some(strip_qualifier(&c)),
                        other => {
                            return Err(EngineError::Parse(format!(
                                "expected column or * inside {func}(), found {other:?}"
                            )))
                        }
                    };
                    self.expect_symbol(")")?;
                    return Ok(SelectItem::Aggregate(AggExpr::new(func, column)));
                }
            }
        }
        Ok(SelectItem::Column(self.parse_ident()?))
    }

    fn parse_predicate(&mut self) -> Result<Expr, EngineError> {
        let column = self.parse_ident()?;
        let op = match self.next() {
            Some(Token::Symbol(s)) => match s.as_str() {
                "=" => BinaryOp::Eq,
                "<" => BinaryOp::Lt,
                "<=" => BinaryOp::LtEq,
                ">" => BinaryOp::Gt,
                ">=" => BinaryOp::GtEq,
                "<>" | "!=" => BinaryOp::NotEq,
                other => {
                    return Err(EngineError::Parse(format!(
                        "unsupported comparison operator '{other}'"
                    )))
                }
            },
            other => {
                return Err(EngineError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let literal = self.parse_literal()?;
        Ok(Expr::binary(Expr::col(column), op, Expr::Literal(literal)))
    }

    fn parse_literal(&mut self) -> Result<Value, EngineError> {
        match self.next() {
            Some(Token::Number(n)) => {
                if n.fract() == 0.0 {
                    Ok(Value::Int(n as i64))
                } else {
                    Ok(Value::Float(n))
                }
            }
            Some(Token::StringLit(s)) => Ok(Value::Str(s)),
            other => Err(EngineError::Parse(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    fn parse_table_name(&mut self, after: &str) -> Result<String, EngineError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.to_lowercase()),
            other => Err(EngineError::Parse(format!(
                "expected table name after {after}, found {other:?}"
            ))),
        }
    }

    fn parse_where_clause(&mut self) -> Result<Vec<Expr>, EngineError> {
        let mut predicates = Vec::new();
        if self.peek_keyword("WHERE") {
            self.pos += 1;
            loop {
                predicates.push(self.parse_predicate()?);
                if self.peek_keyword("AND") {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        Ok(predicates)
    }

    fn expect_end(&mut self) -> Result<(), EngineError> {
        if let Some(t) = self.peek() {
            if !matches!(t, Token::Symbol(s) if s == ";") {
                return Err(EngineError::Parse(format!(
                    "unexpected trailing token {t:?}"
                )));
            }
        }
        Ok(())
    }

    fn parse_delete(&mut self) -> Result<DeleteStatement, EngineError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.parse_table_name("FROM")?;
        let predicates = self.parse_where_clause()?;
        self.expect_end()?;
        Ok(DeleteStatement {
            table,
            predicates,
            text: self.text.clone(),
        })
    }

    fn parse_update(&mut self) -> Result<UpdateStatement, EngineError> {
        self.expect_keyword("UPDATE")?;
        let table = self.parse_table_name("UPDATE")?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.parse_ident()?;
            self.expect_symbol("=")?;
            let value = self.parse_literal()?;
            assignments.push((column, value));
            if matches!(self.peek(), Some(Token::Symbol(s)) if s == ",") {
                self.pos += 1;
            } else {
                break;
            }
        }
        let predicates = self.parse_where_clause()?;
        self.expect_end()?;
        Ok(UpdateStatement {
            table,
            assignments,
            predicates,
            text: self.text.clone(),
        })
    }

    fn parse_percent(&mut self) -> Result<f64, EngineError> {
        match self.next() {
            Some(Token::Number(n)) => {
                if matches!(self.peek(), Some(Token::Symbol(s)) if s == "%") {
                    self.pos += 1;
                }
                Ok(n / 100.0)
            }
            other => Err(EngineError::Parse(format!(
                "expected a percentage, found {other:?}"
            ))),
        }
    }
}

/// Strip a `table.` qualifier from a column reference; benchmark schemas use
/// unique column names so the qualifier carries no information.
fn strip_qualifier(ident: &str) -> String {
    match ident.rsplit_once('.') {
        Some((_, col)) => col.to_lowercase(),
        None => ident.to_lowercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_aggregate_query() {
        let q = parse_query(
            "SELECT l_returnflag, SUM(l_quantity), AVG(l_price) FROM lineitem \
             WHERE l_shipdate <= 19980902 GROUP BY l_returnflag \
             ERROR WITHIN 10% AT CONFIDENCE 95%",
        )
        .unwrap();
        assert_eq!(q.from, "lineitem");
        assert_eq!(q.group_by, vec!["l_returnflag".to_string()]);
        assert_eq!(q.aggregates().len(), 2);
        assert_eq!(q.predicates.len(), 1);
        let spec = q.accuracy();
        assert!((spec.relative_error - 0.10).abs() < 1e-9);
        assert!((spec.confidence - 0.95).abs() < 1e-9);
        assert!(q.is_approximable());
    }

    #[test]
    fn parses_joins_with_multiple_conditions() {
        let q = parse_query(
            "SELECT o_orderpriority, COUNT(*) FROM orders \
             JOIN lineitem ON o_orderkey = l_orderkey \
             JOIN customer ON o_custkey = c_custkey \
             WHERE o_orderdate >= 19950101 AND l_discount < 0.05 \
             GROUP BY o_orderpriority",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].table, "lineitem");
        assert_eq!(q.joins[0].conditions[0], ("o_orderkey".into(), "l_orderkey".into()));
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.tables(), vec!["orders", "lineitem", "customer"]);
    }

    #[test]
    fn strips_table_qualifiers() {
        let q = parse_query(
            "SELECT orders.o_flag, COUNT(*) FROM orders WHERE orders.o_price > 10 GROUP BY orders.o_flag",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["o_flag".to_string()]);
        assert_eq!(q.predicates[0].referenced_columns(), vec!["o_price".to_string()]);
    }

    #[test]
    fn count_star_and_string_literals() {
        let q = parse_query(
            "SELECT c_region, COUNT(*) FROM customer WHERE c_segment = 'BUILDING' GROUP BY c_region",
        )
        .unwrap();
        let aggs = q.aggregates();
        assert_eq!(aggs[0].func, AggFunc::Count);
        assert!(aggs[0].column.is_none());
        assert!(q.predicates[0].to_string().contains("'BUILDING'"));
    }

    #[test]
    fn defaults_when_no_error_clause() {
        let q = parse_query("SELECT COUNT(*) FROM t").unwrap();
        assert!(q.error_spec.is_none());
        let spec = q.accuracy();
        assert_eq!(spec.relative_error, 0.10);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("SELEKT x FROM t").is_err());
        assert!(parse_query("SELECT x FROM").is_err());
        assert!(parse_query("SELECT SUM( FROM t").is_err());
        assert!(parse_query("SELECT x FROM t WHERE y ~ 3").is_err());
        assert!(parse_query("SELECT x FROM t WHERE y = 'unterminated").is_err());
        assert!(parse_query("SELECT x FROM t extra garbage").is_err());
    }

    #[test]
    fn exact_plan_builds_and_optimizes() {
        use taster_storage::batch::BatchBuilder;
        use taster_storage::Table;
        let catalog = Catalog::new();
        let orders = BatchBuilder::new()
            .column("o_id", vec![1i64, 2, 3])
            .column("o_cust", vec![1i64, 1, 2])
            .column("o_price", vec![1.0f64, 2.0, 3.0])
            .build()
            .unwrap();
        catalog.register(Table::from_batch("orders", orders, 1).unwrap());
        let cust = BatchBuilder::new()
            .column("c_id", vec![1i64, 2])
            .column("c_region", vec!["A", "B"])
            .build()
            .unwrap();
        catalog.register(Table::from_batch("customer", cust, 1).unwrap());

        let q = parse_query(
            "SELECT c_region, SUM(o_price) FROM orders JOIN customer ON o_cust = c_id \
             WHERE o_price > 1 GROUP BY c_region",
        )
        .unwrap();
        let plan = q.to_exact_plan(&catalog).unwrap();
        assert!(matches!(plan, LogicalPlan::Aggregate { .. }));
        assert_eq!(plan.base_tables(), vec!["customer".to_string(), "orders".to_string()]);

        // Join condition written in reverse order still resolves.
        let q2 = parse_query(
            "SELECT c_region, COUNT(*) FROM orders JOIN customer ON c_id = o_cust GROUP BY c_region",
        )
        .unwrap();
        assert!(q2.to_exact_plan(&catalog).is_ok());
    }

    #[test]
    fn plan_for_non_aggregate_query_projects() {
        use taster_storage::batch::BatchBuilder;
        use taster_storage::Table;
        let catalog = Catalog::new();
        let t = BatchBuilder::new()
            .column("a", vec![1i64])
            .column("b", vec![2i64])
            .build()
            .unwrap();
        catalog.register(Table::from_batch("t", t, 1).unwrap());
        let q = parse_query("SELECT a FROM t WHERE b = 2").unwrap();
        let plan = q.to_exact_plan(&catalog).unwrap();
        assert!(matches!(plan, LogicalPlan::Project { .. }));
        assert!(!q.is_approximable());
    }

    #[test]
    fn parses_delete_statement() {
        let Statement::Delete(d) =
            parse_statement("DELETE FROM Orders WHERE o_id < 100 AND o_flag = 3;").unwrap()
        else {
            panic!("expected a DELETE")
        };
        assert_eq!(d.table, "orders");
        assert_eq!(d.predicates.len(), 2);
        assert_eq!(
            d.predicates[0],
            Expr::binary(Expr::col("o_id"), BinaryOp::Lt, Expr::Literal(Value::Int(100)))
        );

        // WHERE is optional: a bare DELETE targets every row.
        let Statement::Delete(all) = parse_statement("DELETE FROM orders").unwrap() else {
            panic!("expected a DELETE")
        };
        assert!(all.predicates.is_empty());
    }

    #[test]
    fn parses_update_statement() {
        let Statement::Update(u) = parse_statement(
            "UPDATE orders SET o_price = 9.5, o_status = 'shipped' WHERE o_id = 7",
        )
        .unwrap() else {
            panic!("expected an UPDATE")
        };
        assert_eq!(u.table, "orders");
        assert_eq!(
            u.assignments,
            vec![
                ("o_price".to_string(), Value::Float(9.5)),
                ("o_status".to_string(), Value::Str("shipped".to_string())),
            ]
        );
        assert_eq!(u.predicates.len(), 1);
    }

    #[test]
    fn parse_statement_falls_back_to_select() {
        let Statement::Select(q) =
            parse_statement("SELECT COUNT(*) FROM orders").unwrap()
        else {
            panic!("expected a SELECT")
        };
        assert_eq!(q.from, "orders");
        // Malformed mutations are rejected, not silently parsed as queries.
        assert!(parse_statement("DELETE orders").is_err());
        assert!(parse_statement("UPDATE orders WHERE o_id = 1").is_err());
        assert!(parse_statement("UPDATE orders SET o_id = 1 GARBAGE").is_err());
    }
}
