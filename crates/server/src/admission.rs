//! Admission control: a hard cap on concurrently admitted queries.
//!
//! The session service runs a fixed worker pool over a queue. Without
//! admission control a burst of sessions would grow that queue without bound
//! — every query eventually runs, but tail latency explodes and memory grows
//! with the backlog. The controller instead caps *admitted* work at
//! `workers + max_queue`: up to `workers` queries executing plus `max_queue`
//! waiting. The request over the cap is rejected immediately with
//! [`RejectKind::Overloaded`](crate::proto::RejectKind::Overloaded) — typed
//! backpressure the session can dispatch on — and never touches the engine,
//! so an overloaded server stays responsive and never hangs or panics.
//!
//! Admission is a single compare-and-swap; the permit is RAII, so every exit
//! path (success, engine error, a session that disconnects mid-queue) gives
//! the slot back.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Counters describing admission behaviour since startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (granted a permit).
    pub admitted: u64,
    /// Requests rejected as `Overloaded`.
    pub rejected: u64,
    /// Highest number of simultaneously admitted requests observed.
    pub peak_inflight: usize,
    /// Currently admitted requests.
    pub inflight: usize,
}

/// The shared admission gate. Cheap to clone via `Arc`.
#[derive(Debug)]
pub struct AdmissionController {
    limit: usize,
    inflight: AtomicUsize,
    peak: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

/// RAII admission slot: dropping it releases the slot, whatever happened to
/// the query it admitted.
#[derive(Debug)]
pub struct Permit {
    controller: Arc<AdmissionController>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.controller.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl AdmissionController {
    /// A controller admitting at most `limit` concurrent requests.
    pub fn new(limit: usize) -> Arc<Self> {
        Arc::new(Self {
            limit: limit.max(1),
            inflight: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Try to admit one request. Returns the permit, or `None` when the
    /// server is at its admission limit (the caller should answer
    /// `Overloaded`).
    pub fn try_admit(self: &Arc<Self>) -> Option<Permit> {
        let mut current = self.inflight.load(Ordering::Acquire);
        loop {
            if current >= self.limit {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    self.peak.fetch_max(current + 1, Ordering::Relaxed);
                    return Some(Permit {
                        controller: Arc::clone(self),
                    });
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// The admission limit (`workers + max_queue` for the session service).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Snapshot of the admission counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            peak_inflight: self.peak.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_the_limit_then_rejects() {
        let ctrl = AdmissionController::new(2);
        let a = ctrl.try_admit().expect("first");
        let _b = ctrl.try_admit().expect("second");
        assert!(ctrl.try_admit().is_none(), "third must be rejected");
        let stats = ctrl.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.inflight, 2);
        assert_eq!(stats.peak_inflight, 2);

        drop(a);
        assert!(ctrl.try_admit().is_some(), "released slot is reusable");
    }

    #[test]
    fn permits_release_on_drop_even_under_races() {
        let ctrl = AdmissionController::new(4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ctrl = Arc::clone(&ctrl);
                scope.spawn(move || {
                    for _ in 0..200 {
                        if let Some(permit) = ctrl.try_admit() {
                            std::hint::black_box(&permit);
                            drop(permit);
                        }
                    }
                });
            }
        });
        let stats = ctrl.stats();
        assert_eq!(stats.inflight, 0, "every permit returned");
        assert!(stats.peak_inflight <= 4, "cap never exceeded");
    }

    #[test]
    fn zero_limit_is_clamped_to_one() {
        let ctrl = AdmissionController::new(0);
        assert_eq!(ctrl.limit(), 1);
        assert!(ctrl.try_admit().is_some());
    }
}
