//! `taster-server` — serve the Taster engine over TCP.
//!
//! ```text
//! taster-server [ADDR] [--workers N] [--queue N]
//! ```
//!
//! Binds `ADDR` (default `127.0.0.1:7878`; use port `0` for an ephemeral
//! one), loads a small demo `orders`/`customer` catalog, and serves the wire
//! protocol until killed. Pair it with
//! [`Client`](taster_server::Client) or any length-prefixed-frame speaker.

use std::process::ExitCode;
use std::sync::Arc;

use taster_core::{TasterConfig, TasterEngine};
use taster_server::{ServiceConfig, SessionService, TcpServer};
use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, StorageError, Table};

const DEMO_ROWS: usize = 50_000;

fn demo_catalog() -> Result<Arc<Catalog>, StorageError> {
    let cat = Catalog::new();
    let orders = BatchBuilder::new()
        .column("o_id", (0..DEMO_ROWS as i64).collect::<Vec<_>>())
        .column(
            "o_cust",
            (0..DEMO_ROWS as i64).map(|i| i % 100).collect::<Vec<_>>(),
        )
        .column(
            "o_flag",
            (0..DEMO_ROWS as i64).map(|i| i % 5).collect::<Vec<_>>(),
        )
        .column(
            "o_price",
            (0..DEMO_ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()?;
    cat.register(Table::from_batch("orders", orders, 8)?);
    let cust = BatchBuilder::new()
        .column("c_id", (0..100i64).collect::<Vec<_>>())
        .column("c_region", (0..100i64).map(|i| i % 4).collect::<Vec<_>>())
        .build()?;
    cat.register(Table::from_batch("customer", cust, 1)?);
    Ok(Arc::new(cat))
}

fn parse_args() -> Result<(String, ServiceConfig), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let v = args.next().ok_or("--workers needs a value")?;
                config.workers = v.parse().map_err(|_| format!("bad --workers: {v}"))?;
            }
            "--queue" => {
                let v = args.next().ok_or("--queue needs a value")?;
                config.max_queue = v.parse().map_err(|_| format!("bad --queue: {v}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: taster-server [ADDR] [--workers N] [--queue N]".to_string())
            }
            other if !other.starts_with('-') => addr = other.to_string(),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok((addr, config))
}

fn main() -> ExitCode {
    let (addr, config) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let catalog = match demo_catalog() {
        Ok(catalog) => catalog,
        Err(err) => {
            eprintln!("demo catalog failed to build: {err}");
            return ExitCode::FAILURE;
        }
    };
    let taster_config = TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 1.0);
    let engine = Arc::new(TasterEngine::new(catalog, taster_config));
    let service = SessionService::start(engine, config);
    let server = match TcpServer::bind(service, &addr) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("bind {addr} failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("taster-server listening on {}", server.local_addr());
    println!("demo tables: orders ({DEMO_ROWS} rows), customer (100 rows)");
    // Serve until the process is killed; the accept loop owns the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
