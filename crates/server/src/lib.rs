//! Multi-session front-end for the Taster engine.
//!
//! The engine crate proves one [`TasterEngine`](taster_core::engine::TasterEngine)
//! is safe to share across threads; this crate turns that into a *service*:
//!
//! * [`proto`] — a dependency-free, length-prefixed wire protocol over
//!   `std::net`, with **typed rejections** (`Overloaded`, `ErrorBudget`,
//!   `Sql`, `Internal`) so sessions can dispatch on backpressure,
//! * [`admission`] — admission control: a CAS-gated cap of
//!   `workers + max_queue` concurrently admitted queries, RAII permits, and
//!   immediate `Overloaded` rejection beyond the cap,
//! * [`tenant`] — per-tenant budgets: a storage budget enforced by evicting
//!   the tenant's oldest synopses, and an error budget flooring the accuracy
//!   a tenant may request,
//! * [`service`] — the session service multiplexing sessions onto a worker
//!   pool over one shared engine, where concurrent queries share morsel
//!   passes and concurrent synopsis builds coalesce,
//! * [`server`] — the TCP transport ([`TcpServer`] / [`Client`]) framing the
//!   same pipeline over sockets.

#![warn(missing_docs)]

pub mod admission;
pub mod proto;
pub mod server;
pub mod service;
pub mod tenant;

pub use admission::{AdmissionController, AdmissionStats, Permit};
pub use proto::{GroupRow, QueryReply, RejectKind, Request, Response};
pub use server::{Client, TcpServer};
pub use service::{ServiceConfig, Session, SessionService};
pub use tenant::{TenantBudgets, TenantRegistry};
