//! The wire protocol spoken between [`Client`](crate::server::Client) and
//! [`TcpServer`](crate::server::TcpServer).
//!
//! Frames are `u32` little-endian length + payload over any `Read`/`Write`
//! pair (the server uses `std::net::TcpStream`); payloads are encoded with
//! the storage crate's [`codec`](taster_storage::codec) — the same
//! hand-rolled, bounds-checked little-endian format the durability layer
//! uses, because the build environment has no serialization crates.
//!
//! The protocol is deliberately minimal: one request shape
//! ([`Request`]: tenant + explain flag + SQL text) and one response shape
//! ([`Response`]: either a [`QueryReply`] or a typed rejection). Typed
//! rejections are the backpressure contract — an overloaded server answers
//! [`RejectKind::Overloaded`] immediately instead of queueing unboundedly or
//! dropping the connection.

use std::io::{self, Read, Write};

use taster_storage::codec::{ByteReader, ByteWriter};
use taster_storage::StorageError;

/// Upper bound on a single frame; anything larger is a protocol error, not a
/// bigger allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// One query request from a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Tenant the session belongs to (budget accounting key).
    pub tenant: String,
    /// Request the planner's plan comparison in the reply.
    pub explain: bool,
    /// The SQL text.
    pub sql: String,
}

/// Why a request was rejected without executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// Admission control: every worker is busy and the queue is full. The
    /// session should back off and retry; nothing was executed.
    Overloaded,
    /// The request asks for a tighter accuracy than the tenant's error
    /// budget allows.
    ErrorBudget,
    /// The SQL text failed to parse.
    Sql,
    /// The engine failed while executing the (admitted, parsed) query.
    Internal,
}

impl std::fmt::Display for RejectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectKind::Overloaded => write!(f, "overloaded"),
            RejectKind::ErrorBudget => write!(f, "error-budget"),
            RejectKind::Sql => write!(f, "sql"),
            RejectKind::Internal => write!(f, "internal"),
        }
    }
}

/// One output group of an aggregate reply.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Group-key values, stringified in GROUP BY order.
    pub key: Vec<String>,
    /// `(estimate, standard error)` per aggregate, in SELECT order.
    pub aggregates: Vec<(f64, f64)>,
}

/// A successful query reply.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Human-readable description of the plan the tuner chose.
    pub plan: String,
    /// `true` if a synopsis participated in the plan.
    pub approximate: bool,
    /// Relational output row count.
    pub rows: usize,
    /// Aggregate groups (empty for non-aggregate queries).
    pub groups: Vec<GroupRow>,
    /// Simulated execution time under the engine's I/O model, in seconds.
    pub simulated_secs: f64,
    /// The planner's plan comparison, when the request set `explain`.
    pub explain: Option<String>,
}

/// What the server sends back for every request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The query executed; here is its result.
    Reply(QueryReply),
    /// The request was rejected (typed) or failed; `message` says why.
    Reject {
        /// The rejection class a session dispatches on.
        kind: RejectKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// `true` when this is an admission-control rejection.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            Response::Reject {
                kind: RejectKind::Overloaded,
                ..
            }
        )
    }
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.tenant);
        w.put_bool(self.explain);
        w.put_str(&self.sql);
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, StorageError> {
        let mut r = ByteReader::new(bytes);
        let tenant = r.get_str()?;
        let explain = r.get_bool()?;
        let sql = r.get_str()?;
        Ok(Self {
            tenant,
            explain,
            sql,
        })
    }
}

impl RejectKind {
    fn tag(self) -> u8 {
        match self {
            RejectKind::Overloaded => 0,
            RejectKind::ErrorBudget => 1,
            RejectKind::Sql => 2,
            RejectKind::Internal => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, StorageError> {
        match tag {
            0 => Ok(RejectKind::Overloaded),
            1 => Ok(RejectKind::ErrorBudget),
            2 => Ok(RejectKind::Sql),
            3 => Ok(RejectKind::Internal),
            other => Err(StorageError::Corrupt(format!(
                "unknown reject kind tag {other}"
            ))),
        }
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Reply(reply) => {
                w.put_u8(0);
                w.put_str(&reply.plan);
                w.put_bool(reply.approximate);
                w.put_usize(reply.rows);
                w.put_u32(reply.groups.len() as u32);
                for g in &reply.groups {
                    w.put_u32(g.key.len() as u32);
                    for k in &g.key {
                        w.put_str(k);
                    }
                    w.put_u32(g.aggregates.len() as u32);
                    for (value, std_error) in &g.aggregates {
                        w.put_f64(*value);
                        w.put_f64(*std_error);
                    }
                }
                w.put_f64(reply.simulated_secs);
                w.put_bool(reply.explain.is_some());
                if let Some(explain) = &reply.explain {
                    w.put_str(explain);
                }
            }
            Response::Reject { kind, message } => {
                w.put_u8(1);
                w.put_u8(kind.tag());
                w.put_str(message);
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, StorageError> {
        let mut r = ByteReader::new(bytes);
        match r.get_u8()? {
            0 => {
                let plan = r.get_str()?;
                let approximate = r.get_bool()?;
                let rows = r.get_usize()?;
                let num_groups = r.get_u32()? as usize;
                let mut groups = Vec::with_capacity(num_groups.min(1024));
                for _ in 0..num_groups {
                    let key_len = r.get_u32()? as usize;
                    let mut key = Vec::with_capacity(key_len.min(64));
                    for _ in 0..key_len {
                        key.push(r.get_str()?);
                    }
                    let agg_len = r.get_u32()? as usize;
                    let mut aggregates = Vec::with_capacity(agg_len.min(64));
                    for _ in 0..agg_len {
                        let value = r.get_f64()?;
                        let std_error = r.get_f64()?;
                        aggregates.push((value, std_error));
                    }
                    groups.push(GroupRow { key, aggregates });
                }
                let simulated_secs = r.get_f64()?;
                let explain = if r.get_bool()? {
                    Some(r.get_str()?)
                } else {
                    None
                };
                Ok(Response::Reply(QueryReply {
                    plan,
                    approximate,
                    rows,
                    groups,
                    simulated_secs,
                    explain,
                }))
            }
            1 => {
                let kind = RejectKind::from_tag(r.get_u8()?)?;
                let message = r.get_str()?;
                Ok(Response::Reject { kind, message })
            }
            other => Err(StorageError::Corrupt(format!(
                "unknown response tag {other}"
            ))),
        }
    }
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds protocol maximum", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed its session).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame-header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame, over the protocol maximum"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let req = Request {
            tenant: "acme".to_string(),
            explain: true,
            sql: "SELECT COUNT(*) FROM t".to_string(),
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn reply_roundtrips() {
        let resp = Response::Reply(QueryReply {
            plan: "exact plan".to_string(),
            approximate: false,
            rows: 3,
            groups: vec![GroupRow {
                key: vec!["a".to_string(), "1".to_string()],
                aggregates: vec![(10.5, 0.25), (2.0, 0.0)],
            }],
            simulated_secs: 0.125,
            explain: Some("plan for: q\n".to_string()),
        });
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn reject_roundtrips_every_kind() {
        for kind in [
            RejectKind::Overloaded,
            RejectKind::ErrorBudget,
            RejectKind::Sql,
            RejectKind::Internal,
        ] {
            let resp = Response::Reject {
                kind,
                message: "why".to_string(),
            };
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn truncated_payload_is_a_decode_error() {
        let req = Request {
            tenant: "t".to_string(),
            explain: false,
            sql: "SELECT 1".to_string(),
        };
        let bytes = req.encode();
        assert!(Request::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
