//! TCP transport: a dependency-free server and client over `std::net`.
//!
//! [`TcpServer`] binds a listener, accepts connections on a dedicated
//! thread, and runs one thread per connection that reads request frames,
//! pushes them through the shared [`SessionService`] pipeline and writes
//! response frames back. All the interesting policy (admission, budgets,
//! shared scans) lives in the service — the transport only frames bytes, so
//! in-process tests and benchmarks can drive [`SessionService`] directly and
//! exercise exactly what the network path exercises.
//!
//! [`Client`] is the matching blocking client: one TCP connection, one
//! session, synchronous request/response.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::proto::{read_frame, write_frame, RejectKind, Request, Response};
use crate::service::SessionService;

/// A session thread plus the stream handle `stop()` uses to hang it up.
type Connection = (JoinHandle<()>, TcpStream);

/// A running TCP front-end over a [`SessionService`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    connections: Arc<Mutex<Vec<Connection>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn serve_connection(service: &SessionService, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let response = match Request::decode(&payload) {
            Ok(request) => service.submit(request),
            Err(err) => Response::Reject {
                kind: RejectKind::Internal,
                message: format!("malformed request frame: {err}"),
            },
        };
        write_frame(&mut writer, &response.encode())?;
    }
    Ok(())
}

impl TcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting sessions against `service`.
    pub fn bind(service: Arc<SessionService>, addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&connections);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let Ok(shutdown_handle) = stream.try_clone() else {
                    continue;
                };
                let service = Arc::clone(&service);
                let handle = std::thread::spawn(move || {
                    // A torn connection is the session's problem, not the
                    // server's: the error ends this one session thread.
                    let _ = serve_connection(&service, stream);
                });
                lock(&accept_conns).push((handle, shutdown_handle));
            }
        });
        Ok(Self {
            addr,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
            connections,
        })
    }

    /// The bound address (ephemeral-port friendly).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections, hang up every live session, and join all
    /// session threads. Idempotent.
    pub fn stop(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = lock(&self.accept_thread).take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *lock(&self.connections));
        for (handle, stream) in handles {
            // Sessions blocked in read_frame() would otherwise pin the join
            // until their client hangs up.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer").field("addr", &self.addr).finish()
    }
}

/// A blocking wire-protocol client: one connection, one session.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    tenant: String,
}

impl Client {
    /// Connect to a [`TcpServer`] as `tenant`.
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            tenant: tenant.to_string(),
        })
    }

    /// Execute `sql`; set `explain` to carry the planner's plan comparison
    /// in the reply.
    pub fn query(&mut self, sql: &str, explain: bool) -> io::Result<Response> {
        let request = Request {
            tenant: self.tenant.clone(),
            explain,
            sql: sql.to_string(),
        };
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the session")
        })?;
        Response::decode(&payload)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
    }
}
