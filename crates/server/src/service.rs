//! The session service: many sessions multiplexed onto a worker pool over
//! one shared [`TasterEngine`].
//!
//! A [`Session`] is a lightweight handle a connection (or an in-process
//! client) holds; [`SessionService::submit`] is the admission pipeline every
//! request walks:
//!
//! 1. **admit** — a single CAS against the [`AdmissionController`]; over the
//!    `workers + max_queue` cap the request is rejected `Overloaded` without
//!    touching the engine (typed backpressure, bounded queue depth);
//! 2. **validate** — the SQL is parsed and checked against the tenant's
//!    error budget *on the session thread*, so malformed or over-budget
//!    requests never occupy a worker;
//! 3. **enqueue** — the job (request + RAII permit + reply channel) goes to
//!    the worker pool; workers drain a shared queue;
//! 4. **execute** — the worker runs the query through the engine, charges
//!    created synopses to the tenant (evicting the tenant's oldest synopses
//!    if over its storage budget) and replies.
//!
//! Sharing one engine is what makes multi-session execution cheap:
//! concurrent queries over the same table snapshot attach to one morsel pass
//! (the engine's [`SharedScanRegistry`](taster_engine::SharedScanRegistry)),
//! and concurrent builds of the same synopsis coalesce into one
//! ([`Coalescer`](taster_core::Coalescer)). A session that disconnects
//! mid-flight costs nothing durable: its reply send fails silently, the RAII
//! permit frees its admission slot, and the engine's plan-time leases drop
//! when the query finishes, letting the store reap evicted payloads.

use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use taster_core::engine::{MutationReport, TasterEngine, TasterResult};
use taster_core::SynopsisId;
use taster_engine::{parse_statement, EngineError, Statement};

use crate::admission::{AdmissionController, AdmissionStats, Permit};
use crate::proto::{GroupRow, QueryReply, RejectKind, Request, Response};
use crate::tenant::{TenantBudgets, TenantRegistry};

/// Sizing knobs for a [`SessionService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Jobs that may wait beyond the executing ones; the admission limit is
    /// `workers + max_queue`.
    pub max_queue: usize,
    /// Budgets applied to tenants without explicit ones.
    pub default_budgets: TenantBudgets,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_queue: 16,
            default_budgets: TenantBudgets::default(),
        }
    }
}

struct Job {
    request: Request,
    permit: Permit,
    reply: mpsc::Sender<Response>,
}

/// The multi-session front-end over one shared engine.
pub struct SessionService {
    engine: Arc<TasterEngine>,
    admission: Arc<AdmissionController>,
    tenants: TenantRegistry,
    queue: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// One session's handle onto the service: a tenant identity plus the shared
/// submit pipeline. Cheap to clone per connection.
#[derive(Clone)]
pub struct Session {
    service: Arc<SessionService>,
    tenant: String,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn classify(err: &EngineError) -> RejectKind {
    match err {
        EngineError::Parse(_) => RejectKind::Sql,
        _ => RejectKind::Internal,
    }
}

fn mutation_response(verb: &str, outcome: Result<MutationReport, EngineError>) -> Response {
    match outcome {
        Ok(report) => Response::Reply(QueryReply {
            plan: format!("{verb} via tombstones (table v{})", report.table_version),
            approximate: false,
            rows: report.rows_affected,
            groups: Vec::new(),
            simulated_secs: 0.0,
            explain: None,
        }),
        Err(err) => Response::Reject {
            kind: classify(&err),
            message: err.to_string(),
        },
    }
}

fn to_reply(result: &TasterResult) -> QueryReply {
    QueryReply {
        plan: result.plan_description.clone(),
        approximate: result.approximate,
        rows: result.result.rows.num_rows(),
        groups: result
            .result
            .groups
            .iter()
            .map(|g| GroupRow {
                key: g.key.iter().map(|v| v.to_string()).collect(),
                aggregates: g
                    .aggregates
                    .iter()
                    .map(|a| (a.value, a.std_error))
                    .collect(),
            })
            .collect(),
        simulated_secs: result.simulated_secs,
        explain: result.explain.clone(),
    }
}

impl SessionService {
    /// Start the service: spawn `config.workers` worker threads over a
    /// shared queue against `engine`.
    pub fn start(engine: Arc<TasterEngine>, config: ServiceConfig) -> Arc<Self> {
        let workers = config.workers.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let service = Arc::new(Self {
            engine: Arc::clone(&engine),
            admission: AdmissionController::new(workers + config.max_queue),
            tenants: TenantRegistry::new(config.default_budgets),
            queue: Mutex::new(Some(tx)),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            handles.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only for the dequeue, never during
                // execution.
                let job = { lock(&rx).recv() };
                match job {
                    Ok(job) => service.run_job(job),
                    Err(_) => break, // queue sender dropped: shutdown
                }
            }));
        }
        *lock(&service.workers) = handles;
        service
    }

    /// Open a session for `tenant`.
    pub fn session(self: &Arc<Self>, tenant: &str) -> Session {
        Session {
            service: Arc::clone(self),
            tenant: tenant.to_string(),
        }
    }

    /// The full admission pipeline for one request; always returns (a typed
    /// rejection under overload or failure, never a hang).
    pub fn submit(&self, request: Request) -> Response {
        let Some(permit) = self.admission.try_admit() else {
            return Response::Reject {
                kind: RejectKind::Overloaded,
                message: format!(
                    "admission limit of {} concurrent requests reached; back off and retry",
                    self.admission.limit()
                ),
            };
        };
        // Cheap pre-validation on the session thread: a request that cannot
        // run must not occupy a worker. The permit drops on every early
        // return, releasing the admission slot.
        match parse_statement(&request.sql) {
            // Mutations carry no accuracy clause, so only queries are
            // checked against the tenant's error budget.
            Ok(Statement::Select(query)) => {
                if let Err(message) = self.tenants.check_error_budget(&request.tenant, &query) {
                    return Response::Reject {
                        kind: RejectKind::ErrorBudget,
                        message,
                    };
                }
            }
            Ok(Statement::Delete(_) | Statement::Update(_)) => {}
            Err(err) => {
                return Response::Reject {
                    kind: RejectKind::Sql,
                    message: err.to_string(),
                }
            }
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            request,
            permit,
            reply: reply_tx,
        };
        let Some(sender) = lock(&self.queue).clone() else {
            return Response::Reject {
                kind: RejectKind::Internal,
                message: "session service is shut down".to_string(),
            };
        };
        if sender.send(job).is_err() {
            return Response::Reject {
                kind: RejectKind::Internal,
                message: "session service is shut down".to_string(),
            };
        }
        reply_rx.recv().unwrap_or_else(|_| Response::Reject {
            kind: RejectKind::Internal,
            message: "worker exited before replying".to_string(),
        })
    }

    fn run_job(&self, job: Job) {
        let Job {
            request,
            permit,
            reply,
        } = job;
        // Mutations bypass the query loop entirely: no planning, no synopsis
        // accounting — the engine corrects/schedules synopsis maintenance on
        // its own. (submit() already validated the statement.)
        match parse_statement(&request.sql) {
            Ok(Statement::Delete(d)) => {
                let outcome = self.engine.delete_where(&d.table, &d.predicates);
                let response = mutation_response("delete", outcome);
                drop(permit);
                let _ = reply.send(response);
                return;
            }
            Ok(Statement::Update(u)) => {
                let outcome = self.engine.update_where(&u.table, &u.assignments, &u.predicates);
                let response = mutation_response("update", outcome);
                drop(permit);
                let _ = reply.send(response);
                return;
            }
            _ => {}
        }
        let outcome = if request.explain {
            self.engine.execute_sql_explained(&request.sql)
        } else {
            self.engine.execute_sql(&request.sql)
        };
        let response = match outcome {
            Ok(result) => {
                // Charge this query's created synopses to its tenant; evict
                // the tenant's oldest synopses while over its storage budget
                // (leases keep concurrent readers of those payloads safe).
                let created: Vec<(SynopsisId, usize)> = {
                    let metadata = self.engine.metadata();
                    result
                        .created_synopses
                        .iter()
                        .map(|id| (*id, metadata.get(*id).map_or(0, |m| m.size_bytes())))
                        .collect()
                };
                for id in self.tenants.charge_created(&request.tenant, &created) {
                    self.engine.store().evict(id);
                }
                Response::Reply(to_reply(&result))
            }
            Err(err) => Response::Reject {
                kind: classify(&err),
                message: err.to_string(),
            },
        };
        // Release the admission slot before replying, so a session that
        // observed its reply also observes the slot free.
        drop(permit);
        // A disconnected session has dropped its receiver; the failed send
        // is the entire cost of the abandoned query.
        let _ = reply.send(response);
    }

    /// The shared engine (for tests and introspection).
    pub fn engine(&self) -> &Arc<TasterEngine> {
        &self.engine
    }

    /// Admission counters since startup.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// The tenant budget registry.
    pub fn tenants(&self) -> &TenantRegistry {
        &self.tenants
    }

    /// Stop accepting work and join the worker pool. In-queue jobs finish
    /// first; later submits answer a typed `Internal` rejection. Idempotent.
    pub fn shutdown(&self) {
        drop(lock(&self.queue).take());
        let handles = std::mem::take(&mut *lock(&self.workers));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for SessionService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SessionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionService")
            .field("admission", &self.admission.stats())
            .finish()
    }
}

impl Session {
    /// Execute `sql` on behalf of this session's tenant.
    pub fn query(&self, sql: &str) -> Response {
        self.service.submit(Request {
            tenant: self.tenant.clone(),
            explain: false,
            sql: sql.to_string(),
        })
    }

    /// Execute `sql` and carry the planner's plan comparison in the reply.
    pub fn query_explained(&self, sql: &str) -> Response {
        self.service.submit(Request {
            tenant: self.tenant.clone(),
            explain: true,
            sql: sql.to_string(),
        })
    }

    /// The tenant this session belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("tenant", &self.tenant)
            .finish()
    }
}
