//! Per-tenant budgets: synopsis storage and accuracy floors.
//!
//! The engine's storage quotas (buffer/warehouse) are global; a multi-tenant
//! front-end additionally needs *fair-share* accounting, or one tenant's
//! synopsis-hungry workload starves everyone else's warehouse space. The
//! registry tracks, per tenant, the synopses its queries created and their
//! byte sizes; when a tenant exceeds its storage budget the service evicts
//! that tenant's **oldest** synopses (the engine's lease/graveyard machinery
//! keeps in-flight readers safe across the eviction).
//!
//! The **error budget** works the other way around: it is a floor on the
//! relative error a tenant may request. Tighter accuracy means larger
//! samples, more build work and more storage, so a tenant budgeted at 5%
//! asking for `ERROR WITHIN 1%` is rejected with a typed
//! [`RejectKind::ErrorBudget`](crate::proto::RejectKind::ErrorBudget) before
//! the query is admitted to a worker.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, MutexGuard};

use taster_core::SynopsisId;
use taster_engine::SelectQuery;

/// Budget knobs for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantBudgets {
    /// Bytes of materialized synopses this tenant may hold; `None` is
    /// unlimited.
    pub storage_bytes: Option<usize>,
    /// Floor on the requestable relative error (e.g. `0.05`: the tenant may
    /// not ask for tighter than 5%). `0.0` allows any accuracy.
    pub floor_relative_error: f64,
}

impl Default for TenantBudgets {
    fn default() -> Self {
        Self {
            storage_bytes: None,
            floor_relative_error: 0.0,
        }
    }
}

#[derive(Debug, Default)]
struct TenantState {
    budgets: Option<TenantBudgets>,
    /// Synopses created by this tenant's queries, oldest first.
    created: VecDeque<(SynopsisId, usize)>,
    bytes: usize,
}

/// Registry of tenant budgets and per-tenant synopsis accounting.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    default: TenantBudgets,
    tenants: Mutex<HashMap<String, TenantState>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TenantRegistry {
    /// A registry applying `default` to tenants without explicit budgets.
    pub fn new(default: TenantBudgets) -> Self {
        Self {
            default,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Set explicit budgets for one tenant.
    pub fn set_budgets(&self, tenant: &str, budgets: TenantBudgets) {
        lock(&self.tenants)
            .entry(tenant.to_string())
            .or_default()
            .budgets = Some(budgets);
    }

    /// The budgets in effect for `tenant`.
    pub fn budgets(&self, tenant: &str) -> TenantBudgets {
        lock(&self.tenants)
            .get(tenant)
            .and_then(|s| s.budgets)
            .unwrap_or(self.default)
    }

    /// Check a parsed query against the tenant's error budget. Returns the
    /// rejection message when the requested accuracy is tighter than the
    /// budget floor.
    pub fn check_error_budget(&self, tenant: &str, query: &SelectQuery) -> Result<(), String> {
        let floor = self.budgets(tenant).floor_relative_error;
        if let Some(spec) = &query.error_spec {
            if spec.relative_error < floor {
                return Err(format!(
                    "tenant '{tenant}' may not request relative error below {:.1}% \
                     (asked for {:.1}%)",
                    floor * 100.0,
                    spec.relative_error * 100.0
                ));
            }
        }
        Ok(())
    }

    /// Charge `created` synopses (id + bytes) to the tenant and return the
    /// tenant's oldest synopsis ids that must be evicted to get back under
    /// its storage budget (empty while within budget).
    pub fn charge_created(
        &self,
        tenant: &str,
        created: &[(SynopsisId, usize)],
    ) -> Vec<SynopsisId> {
        if created.is_empty() {
            return Vec::new();
        }
        let mut tenants = lock(&self.tenants);
        let state = tenants.entry(tenant.to_string()).or_default();
        for (id, bytes) in created {
            state.created.push_back((*id, *bytes));
            state.bytes += bytes;
        }
        let budget = state.budgets.unwrap_or(self.default);
        let Some(limit) = budget.storage_bytes else {
            return Vec::new();
        };
        let mut evict = Vec::new();
        while state.bytes > limit && state.created.len() > 1 {
            if let Some((id, bytes)) = state.created.pop_front() {
                state.bytes -= bytes;
                evict.push(id);
            }
        }
        evict
    }

    /// Bytes of synopses currently charged to `tenant`.
    pub fn charged_bytes(&self, tenant: &str) -> usize {
        lock(&self.tenants).get(tenant).map_or(0, |s| s.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_engine::parse_query;

    #[test]
    fn error_budget_floor_rejects_tighter_requests() {
        let reg = TenantRegistry::new(TenantBudgets::default());
        reg.set_budgets(
            "acme",
            TenantBudgets {
                storage_bytes: None,
                floor_relative_error: 0.05,
            },
        );
        let tight = parse_query(
            "SELECT SUM(x) FROM t GROUP BY g ERROR WITHIN 1% AT CONFIDENCE 95%",
        )
        .unwrap();
        let loose = parse_query(
            "SELECT SUM(x) FROM t GROUP BY g ERROR WITHIN 10% AT CONFIDENCE 95%",
        )
        .unwrap();
        let exact = parse_query("SELECT SUM(x) FROM t GROUP BY g").unwrap();
        assert!(reg.check_error_budget("acme", &tight).is_err());
        assert!(reg.check_error_budget("acme", &loose).is_ok());
        assert!(
            reg.check_error_budget("acme", &exact).is_ok(),
            "exact queries carry no accuracy request to budget"
        );
        assert!(
            reg.check_error_budget("other", &tight).is_ok(),
            "unbudgeted tenants use the permissive default"
        );
    }

    #[test]
    fn storage_budget_evicts_oldest_first() {
        let reg = TenantRegistry::new(TenantBudgets {
            storage_bytes: Some(100),
            floor_relative_error: 0.0,
        });
        assert!(reg.charge_created("t", &[(1, 60)]).is_empty());
        assert!(reg.charge_created("t", &[(2, 30)]).is_empty());
        // 60 + 30 + 50 = 140 > 100: evict oldest (id 1), landing at 80.
        assert_eq!(reg.charge_created("t", &[(3, 50)]), vec![1]);
        assert_eq!(reg.charged_bytes("t"), 80);
    }

    #[test]
    fn one_oversized_synopsis_is_kept_not_thrashed() {
        let reg = TenantRegistry::new(TenantBudgets {
            storage_bytes: Some(10),
            floor_relative_error: 0.0,
        });
        // A single synopsis over the whole budget stays (evicting the only
        // copy would just force a rebuild next query — thrash, not fairness).
        assert!(reg.charge_created("t", &[(9, 50)]).is_empty());
        assert_eq!(reg.charge_created("t", &[(10, 50)]), vec![9]);
    }
}
