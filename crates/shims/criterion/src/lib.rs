//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`) on top of plain `std::time::Instant`
//! wall-clock measurement. It is not a statistics engine: each benchmark is
//! warmed up, then timed over enough iterations to cover a fixed measurement
//! window, and the mean ns/iter is reported.
//!
//! Set `TASTER_CRITERION_JSON=/path/to/out.json` to also write the results as
//! a JSON array (used to record the kernel-bench baselines checked into
//! `crates/bench/baselines/`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iterations: u64,
}

/// Hint for how batched inputs are sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; batches are timed in one measurement.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Collects benchmark results across groups.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(self, None, &id.to_string(), f);
        self
    }

    /// Print the per-benchmark summary and honour `TASTER_CRITERION_JSON`.
    pub fn final_summary(&self) {
        for r in &self.results {
            println!("{:<52} {:>14.1} ns/iter ({} iters)", r.id, r.ns_per_iter, r.iterations);
        }
        if let Ok(path) = std::env::var("TASTER_CRITERION_JSON") {
            let mut out = String::from("[\n");
            for (i, r) in self.results.iter().enumerate() {
                let sep = if i + 1 == self.results.len() { "" } else { "," };
                out.push_str(&format!(
                    "  {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}}}{}\n",
                    r.id, r.ns_per_iter, r.iterations, sep
                ));
            }
            out.push_str("]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("failed to write {path}: {e}");
            } else {
                println!("wrote {} results to {path}", self.results.len());
            }
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the shim sizes measurement by
    /// wall-clock window, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let group = self.name.clone();
        run_one(self.criterion, Some(&group), &id.to_string(), f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(c: &mut Criterion, group: Option<&str>, id: &str, mut f: F) {
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut b);
    let ns = if b.iterations == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iterations as f64
    };
    eprintln!("bench {full_id}: {ns:.1} ns/iter");
    c.results.push(BenchResult {
        id: full_id,
        ns_per_iter: ns,
        iterations: b.iterations,
    });
}

/// Measurement window per benchmark (after one warm-up run).
const MEASURE_WINDOW: Duration = Duration::from_millis(300);

/// Passed to the closure given to `bench_function`; runs the timing loop.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement window is covered.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration run.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let reps = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += reps;
    }

    /// Time `routine` over inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let reps = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..reps {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed += total;
        self.iterations += reps;
    }
}

/// Define a function running a sequence of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` running one or more groups and printing the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|r| r.iterations > 0));
    }
}
