//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API
//! (`lock()` / `read()` / `write()` return guards directly). A poisoned std
//! lock only occurs after a panic while holding the lock; in that situation
//! the process is already unwinding, so recovering the inner value is the
//! behaviour parking_lot users expect.

use std::sync::{self};

// Guard types are std's (parking_lot proper defines its own, with the same
// shape); re-exported so callers can name them in signatures.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
