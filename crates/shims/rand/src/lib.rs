//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! provides the small slice of the rand 0.9 API the workspace uses:
//! [`rngs::SmallRng`] (an xoshiro256** generator), [`SeedableRng`],
//! [`RngExt::random`] / [`RngExt::random_range`] and
//! [`seq::SliceRandom::shuffle`]. Determinism for a given seed is part of the
//! contract — benchmark workloads and tests rely on it.

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (never degenerate, even for 0).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a uniform value of type `Self` from an RNG.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Output types `random_range` can produce (rand calls this `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[low, high)` (`[low, high]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let span = (high as i128 - low as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty random_range");
                // Multiply-shift bounded sampling; bias is < 2^-64, far below
                // anything these workloads can observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64, _inclusive: bool)
        -> f64 {
        assert!(low < high, "empty random_range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (s, e) = self.into_inner();
        T::sample_between(rng, s, e, true)
    }
}

/// The convenience methods every generator gets (rand calls this `Rng`).
pub trait RngExt: RngCore {
    /// A uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in the given range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, high-quality generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling of slices (Fisher-Yates).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j: usize = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10i64) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(5..6i64);
            assert_eq!(v, 5);
        }
        for _ in 0..100 {
            let v = rng.random_range(1..=3u32);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<i64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
