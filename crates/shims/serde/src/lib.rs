//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde through `#[derive(Serialize, Deserialize)]`
//! annotations — nothing (de)serializes values yet. With no registry access
//! in the build environment, this proc-macro crate keeps those annotations
//! compiling by expanding both derives to nothing. When real serialization
//! lands (e.g. a wire format for a query server), replace this shim with the
//! actual serde + serde_derive crates; no source changes will be needed.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
///
/// Registers the `serde` helper attribute so field annotations like
/// `#[serde(default)]` parse, exactly as the real derive does.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
///
/// Registers the `serde` helper attribute so field annotations like
/// `#[serde(default)]` parse, exactly as the real derive does.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
