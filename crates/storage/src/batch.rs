//! Record batches: a schema plus equally-sized columns.

use std::sync::Arc;

use crate::column::ColumnData;
use crate::error::StorageError;
use crate::schema::{Field, Schema, SchemaRef};
use crate::value::Value;

/// A horizontal chunk of a table: one column array per schema field, all of
/// the same length. Batches are the unit of execution and of partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: Arc<Schema>,
    columns: Vec<ColumnData>,
    num_rows: usize,
}

impl RecordBatch {
    /// Create a batch, validating that every column matches the schema type
    /// and that all columns have equal length.
    pub fn try_new(schema: SchemaRef, columns: Vec<ColumnData>) -> Result<Self, StorageError> {
        if schema.len() != columns.len() {
            return Err(StorageError::Invalid(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        let num_rows = columns.first().map_or(0, ColumnData::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.data_type() != field.data_type {
                return Err(StorageError::TypeMismatch(format!(
                    "column '{}' declared {} but data is {}",
                    field.name,
                    field.data_type,
                    col.data_type()
                )));
            }
            if col.len() != num_rows {
                return Err(StorageError::Invalid(format!(
                    "column '{}' has {} rows, expected {}",
                    field.name,
                    col.len(),
                    num_rows
                )));
            }
        }
        Ok(Self {
            schema,
            columns,
            num_rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::new_empty(f.data_type))
            .collect();
        Self {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// The batch schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// The column at position `idx`.
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// The column with the given name.
    pub fn column_by_name(&self, name: &str) -> Result<&ColumnData, StorageError> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// The full row at `idx` as values, in schema order.
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(idx)).collect()
    }

    /// A new batch keeping only the rows where `mask[i]` is true.
    pub fn filter(&self, mask: &[bool]) -> RecordBatch {
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.filter(mask)).collect();
        let num_rows = mask.iter().filter(|&&b| b).count();
        RecordBatch {
            schema: self.schema.clone(),
            columns,
            num_rows,
        }
    }

    /// A new batch keeping only the rows selected by a packed mask.
    pub fn filter_mask(&self, mask: &crate::mask::SelectionMask) -> RecordBatch {
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.filter_mask(mask)).collect();
        RecordBatch {
            schema: self.schema.clone(),
            columns,
            num_rows: mask.count_selected(),
        }
    }

    /// A new batch containing the rows at the given indices, in order.
    /// Alias of [`RecordBatch::take`] named for the selection-vector path.
    pub fn filter_indices(&self, indices: &[usize]) -> RecordBatch {
        self.take(indices)
    }

    /// A new batch containing the rows at the given indices, in order.
    pub fn take(&self, indices: &[usize]) -> RecordBatch {
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.take(indices)).collect();
        RecordBatch {
            schema: self.schema.clone(),
            columns,
            num_rows: indices.len(),
        }
    }

    /// A new batch with only the named columns, in the requested order.
    pub fn project(&self, names: &[&str]) -> Result<RecordBatch, StorageError> {
        let schema = Arc::new(self.schema.project(names)?);
        let mut columns = Vec::with_capacity(names.len());
        for name in names {
            columns.push(self.column_by_name(name)?.clone());
        }
        Ok(RecordBatch {
            schema,
            columns,
            num_rows: self.num_rows,
        })
    }

    /// A contiguous row range `[offset, offset+len)` of the batch.
    pub fn slice(&self, offset: usize, len: usize) -> RecordBatch {
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.slice(offset, len)).collect();
        let num_rows = columns.first().map_or(0, ColumnData::len);
        RecordBatch {
            schema: self.schema.clone(),
            columns,
            num_rows,
        }
    }

    /// Append the rows of `other` (same schema) to this batch.
    pub fn append(&mut self, other: &RecordBatch) -> Result<(), StorageError> {
        if self.schema.as_ref() != other.schema.as_ref() {
            return Err(StorageError::Invalid(
                "cannot append batches with different schemas".to_string(),
            ));
        }
        for (a, b) in self.columns.iter_mut().zip(other.columns.iter()) {
            a.extend_from(b)?;
        }
        self.num_rows += other.num_rows;
        Ok(())
    }

    /// Concatenate multiple batches that share a schema.
    pub fn concat(batches: &[RecordBatch]) -> Result<RecordBatch, StorageError> {
        Self::concat_refs(&batches.iter().collect::<Vec<_>>())
    }

    /// Concatenate borrowed batches in a single pre-reserved copy (no
    /// intermediate clone of the first batch, no reallocation churn).
    pub fn concat_refs(batches: &[&RecordBatch]) -> Result<RecordBatch, StorageError> {
        let Some(first) = batches.first() else {
            return Err(StorageError::Invalid("concat of zero batches".to_string()));
        };
        let schema = first.schema().clone();
        for b in &batches[1..] {
            if b.schema().as_ref() != schema.as_ref() {
                return Err(StorageError::Invalid(
                    "cannot concat batches with different schemas".to_string(),
                ));
            }
        }
        let num_rows = batches.iter().map(|b| b.num_rows()).sum();
        let mut columns = Vec::with_capacity(schema.len());
        for (c, field) in schema.fields().iter().enumerate() {
            let mut col = ColumnData::with_capacity(field.data_type, num_rows);
            for b in batches {
                col.extend_from(b.column(c))?;
            }
            columns.push(col);
        }
        Ok(RecordBatch {
            schema,
            columns,
            num_rows,
        })
    }

    /// A new batch with an extra column appended (e.g. the sampler weight).
    pub fn with_column(
        &self,
        field: Field,
        column: ColumnData,
    ) -> Result<RecordBatch, StorageError> {
        if column.len() != self.num_rows {
            return Err(StorageError::Invalid(format!(
                "new column '{}' has {} rows, batch has {}",
                field.name,
                column.len(),
                self.num_rows
            )));
        }
        if column.data_type() != field.data_type {
            return Err(StorageError::TypeMismatch(format!(
                "column '{}' declared {} but data is {}",
                field.name,
                field.data_type,
                column.data_type()
            )));
        }
        let schema = Arc::new(self.schema.with_field(field));
        let mut columns = self.columns.clone();
        columns.push(column);
        Ok(RecordBatch {
            schema,
            columns,
            num_rows: self.num_rows,
        })
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(ColumnData::size_bytes).sum()
    }

    /// True if any column is a plain (un-encoded) string column.
    pub fn has_plain_utf8(&self) -> bool {
        self.columns
            .iter()
            .any(|c| matches!(c, ColumnData::Utf8(_)))
    }

    /// True if any column is dictionary-encoded.
    pub fn has_dict_columns(&self) -> bool {
        self.columns.iter().any(ColumnData::is_dict_encoded)
    }

    /// A new batch with every plain string column dictionary-encoded.
    ///
    /// The schema is unchanged — encoded columns still report
    /// [`crate::schema::DataType::Utf8`] — and the batch is logically equal to
    /// `self`. Called by the `Table` seal path; already-encoded and
    /// non-string columns are cloned as-is.
    pub fn dict_encode_strings(&self) -> RecordBatch {
        let columns: Vec<ColumnData> = self.columns.iter().map(ColumnData::dict_encode).collect();
        RecordBatch {
            schema: self.schema.clone(),
            columns,
            num_rows: self.num_rows,
        }
    }
}

/// Convenience builder for constructing batches from named columns.
#[derive(Debug, Default)]
pub struct BatchBuilder {
    fields: Vec<Field>,
    columns: Vec<ColumnData>,
}

impl BatchBuilder {
    /// New, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named column; the field type is derived from the data.
    pub fn column(mut self, name: impl Into<String>, data: impl Into<ColumnData>) -> Self {
        let data = data.into();
        self.fields.push(Field::new(name, data.data_type()));
        self.columns.push(data);
        self
    }

    /// Finish, validating lengths.
    pub fn build(self) -> Result<RecordBatch, StorageError> {
        RecordBatch::try_new(Arc::new(Schema::new(self.fields)), self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn batch() -> RecordBatch {
        BatchBuilder::new()
            .column("id", vec![1i64, 2, 3, 4])
            .column("price", vec![10.0f64, 20.0, 30.0, 40.0])
            .column("name", vec!["a", "b", "c", "d"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_consistent_batch() {
        let b = batch();
        assert_eq!(b.num_rows(), 4);
        assert_eq!(b.num_columns(), 3);
        assert_eq!(b.schema().field(1).data_type, DataType::Float64);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let res = BatchBuilder::new()
            .column("a", vec![1i64, 2])
            .column("b", vec![1.0f64])
            .build();
        assert!(res.is_err());
    }

    #[test]
    fn filter_project_take_slice() {
        let b = batch();
        let f = b.filter(&[true, false, true, false]);
        assert_eq!(f.num_rows(), 2);
        let p = b.project(&["name", "id"]).unwrap();
        assert_eq!(p.schema().column_names(), vec!["name", "id"]);
        let t = b.take(&[3]);
        assert_eq!(t.row(0)[0], Value::Int(4));
        let s = b.slice(2, 2);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.row(0)[0], Value::Int(3));
    }

    #[test]
    fn append_and_concat() {
        let mut a = batch();
        let b = batch();
        a.append(&b).unwrap();
        assert_eq!(a.num_rows(), 8);
        let c = RecordBatch::concat(&[batch(), batch(), batch()]).unwrap();
        assert_eq!(c.num_rows(), 12);
    }

    #[test]
    fn with_column_validates_length_and_type() {
        let b = batch();
        let w = b
            .with_column(
                Field::new("w", DataType::Float64),
                ColumnData::Float64(vec![1.0; 4]),
            )
            .unwrap();
        assert_eq!(w.num_columns(), 4);
        assert!(b
            .with_column(
                Field::new("w", DataType::Float64),
                ColumnData::Float64(vec![1.0; 3])
            )
            .is_err());
        assert!(b
            .with_column(
                Field::new("w", DataType::Int64),
                ColumnData::Float64(vec![1.0; 4])
            )
            .is_err());
    }

    #[test]
    fn dict_encode_strings_is_logically_equal() {
        let b = batch();
        assert!(b.has_plain_utf8());
        let e = b.dict_encode_strings();
        assert!(e.has_dict_columns());
        assert!(!e.has_plain_utf8());
        assert_eq!(e, b);
        assert_eq!(e.row(2)[2], Value::Str("c".to_string()));
        // Numeric columns are untouched.
        assert_eq!(e.column(0), b.column(0));
    }

    #[test]
    fn empty_batch_has_zero_rows() {
        let b = RecordBatch::empty(batch().schema().clone());
        assert_eq!(b.num_rows(), 0);
        assert_eq!(b.num_columns(), 3);
    }
}
