//! A process-wide catalog of named tables.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StorageError;
use crate::table::Table;

/// A thread-safe registry of tables, shared between the engine, the Taster
/// planner, the baselines and the benchmark drivers.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&self, table: Table) -> Arc<Table> {
        let table = Arc::new(table);
        self.tables
            .write()
            .insert(table.name().to_string(), table.clone());
        table
    }

    /// Register an already shared table handle.
    pub fn register_arc(&self, table: Arc<Table>) {
        self.tables
            .write()
            .insert(table.name().to_string(), table);
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// `true` if a table with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Remove a table, returning it if it existed.
    pub fn deregister(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.write().remove(name)
    }

    /// Names of all registered tables (sorted for determinism).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total approximate size of all registered base data in bytes. The
    /// storage quotas in the paper are expressed as a fraction of the
    /// (compressed) dataset size; the reproduction uses in-memory size.
    pub fn total_size_bytes(&self) -> usize {
        self.tables.read().values().map(|t| t.size_bytes()).sum()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.read().values().map(|t| t.num_rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchBuilder;

    fn table(name: &str, n: usize) -> Table {
        let b = BatchBuilder::new()
            .column("id", (0..n as i64).collect::<Vec<_>>())
            .build()
            .unwrap();
        Table::from_batch(name, b, 2).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let cat = Catalog::new();
        cat.register(table("a", 10));
        cat.register(table("b", 20));
        assert!(cat.contains("a"));
        assert_eq!(cat.table("b").unwrap().num_rows(), 20);
        assert!(cat.table("zzz").is_err());
        assert_eq!(cat.table_names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cat.total_rows(), 30);
        assert!(cat.total_size_bytes() > 0);
    }

    #[test]
    fn deregister_removes_table() {
        let cat = Catalog::new();
        cat.register(table("a", 10));
        assert!(cat.deregister("a").is_some());
        assert!(!cat.contains("a"));
        assert!(cat.deregister("a").is_none());
    }

    #[test]
    fn replace_keeps_latest() {
        let cat = Catalog::new();
        cat.register(table("a", 10));
        cat.register(table("a", 99));
        assert_eq!(cat.table("a").unwrap().num_rows(), 99);
    }
}
