//! Hand-rolled binary serialization for the durability layer.
//!
//! The build environment is air-gapped (the in-tree `serde` is a no-op shim),
//! so persistent records are encoded with an explicit little-endian format:
//! fixed-width integers, `f64` as IEEE bits, strings and byte arrays as
//! `u32` length + payload. Decoders validate every length and tag and return
//! [`StorageError::Corrupt`] instead of panicking — a torn or bit-flipped
//! record must surface as a recoverable error, never as UB or an abort.
//!
//! The format is versioned at the container level (WAL frames and the pager
//! header carry magic + version), not per value.

use std::sync::Arc;

use crate::batch::RecordBatch;
use crate::column::ColumnData;
use crate::error::StorageError;
use crate::schema::{DataType, Field, Schema, SchemaRef};

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a `usize` as a `u64` (persistent formats must not depend on the
    /// host word size).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write a length-prefixed byte array.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> StorageError {
    StorageError::Corrupt(format!("truncated or invalid {what}"))
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(corrupt(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a `bool` (any nonzero byte is `true`).
    pub fn get_bool(&mut self) -> Result<bool, StorageError> {
        Ok(self.get_u8()? != 0)
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, StorageError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `u64` and narrow it to `usize`, rejecting values that do not
    /// fit the host word size.
    pub fn get_usize(&mut self) -> Result<usize, StorageError> {
        usize::try_from(self.get_u64()?).map_err(|_| corrupt("usize"))
    }

    /// Read a length-prefixed byte array.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], StorageError> {
        let len = self.get_u32()? as usize;
        self.take(len, "byte array")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StorageError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("utf-8 string"))
    }
}

// ---------------------------------------------------------------------------
// Storage-type codecs
// ---------------------------------------------------------------------------

const TYPE_INT64: u8 = 0;
const TYPE_FLOAT64: u8 = 1;
const TYPE_UTF8: u8 = 2;
const TYPE_BOOL: u8 = 3;
/// Wire tag for dictionary-encoded string columns. Not a [`DataType`] —
/// encoded columns report `DataType::Utf8` logically — but a distinct
/// physical representation, so durable tables round-trip *encoded* and
/// recovery never pays a re-encode (or loses the encoding).
const TYPE_DICT_UTF8: u8 = 4;

/// Encode a [`DataType`].
pub fn encode_data_type(w: &mut ByteWriter, dt: DataType) {
    w.put_u8(match dt {
        DataType::Int64 => TYPE_INT64,
        DataType::Float64 => TYPE_FLOAT64,
        DataType::Utf8 => TYPE_UTF8,
        DataType::Bool => TYPE_BOOL,
    });
}

fn data_type_from_tag(tag: u8) -> Result<DataType, StorageError> {
    match tag {
        TYPE_INT64 => Ok(DataType::Int64),
        TYPE_FLOAT64 => Ok(DataType::Float64),
        TYPE_UTF8 => Ok(DataType::Utf8),
        TYPE_BOOL => Ok(DataType::Bool),
        tag => Err(StorageError::Corrupt(format!("unknown data type tag {tag}"))),
    }
}

/// Decode a [`DataType`].
pub fn decode_data_type(r: &mut ByteReader) -> Result<DataType, StorageError> {
    data_type_from_tag(r.get_u8()?)
}

/// Encode a [`Schema`] (field count, then name + type per field).
pub fn encode_schema(w: &mut ByteWriter, schema: &Schema) {
    w.put_u32(schema.len() as u32);
    for field in schema.fields() {
        w.put_str(&field.name);
        encode_data_type(w, field.data_type);
    }
}

/// Decode a [`Schema`].
pub fn decode_schema(r: &mut ByteReader) -> Result<Schema, StorageError> {
    let n = r.get_u32()? as usize;
    let mut fields = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = r.get_str()?;
        let data_type = decode_data_type(r)?;
        fields.push(Field::new(name, data_type));
    }
    Ok(Schema::new(fields))
}

/// Encode a [`ColumnData`] (type tag, length, then the raw values).
///
/// Dictionary-encoded columns use their own wire tag and persist the
/// dictionary once plus the dense `u32` codes, so a sealed string partition
/// is both smaller on disk and already encoded when it comes back.
pub fn encode_column(w: &mut ByteWriter, col: &ColumnData) {
    if let ColumnData::Dict { codes, dict } = col {
        w.put_u8(TYPE_DICT_UTF8);
        w.put_u64(codes.len() as u64);
        w.put_u32(dict.len() as u32);
        for s in dict.values() {
            w.put_str(s);
        }
        for &c in codes {
            w.put_u32(c);
        }
        return;
    }
    encode_data_type(w, col.data_type());
    match col {
        ColumnData::Int64(v) => {
            w.put_u64(v.len() as u64);
            for x in v {
                w.put_i64(*x);
            }
        }
        ColumnData::Float64(v) => {
            w.put_u64(v.len() as u64);
            for x in v {
                w.put_f64(*x);
            }
        }
        ColumnData::Utf8(v) => {
            w.put_u64(v.len() as u64);
            for x in v {
                w.put_str(x);
            }
        }
        ColumnData::Bool(v) => {
            w.put_u64(v.len() as u64);
            for x in v {
                w.put_bool(*x);
            }
        }
        // Handled by the early return above.
        ColumnData::Dict { .. } => {}
    }
}

/// Decode a [`ColumnData`].
pub fn decode_column(r: &mut ByteReader) -> Result<ColumnData, StorageError> {
    // Read the raw tag: the dictionary representation has its own wire tag
    // even though the column it decodes to reports `DataType::Utf8`.
    let tag = r.get_u8()?;
    if tag == TYPE_DICT_UTF8 {
        let len = r.get_usize()?;
        let dict_len = r.get_u32()? as usize;
        let mut values = Vec::with_capacity(dict_len.min(1 << 20));
        for _ in 0..dict_len {
            values.push(r.get_str()?);
        }
        // Codes are only meaningful over a sorted-unique dictionary; a
        // corrupt one must fail here, not mis-order every later comparison.
        if !values.windows(2).all(|w| w[0] < w[1]) {
            return Err(StorageError::Corrupt(
                "dictionary is not sorted and unique".to_string(),
            ));
        }
        if r.remaining() < len.saturating_mul(4) {
            return Err(corrupt("dictionary codes"));
        }
        let mut codes = Vec::with_capacity(len);
        for _ in 0..len {
            let c = r.get_u32()?;
            if c as usize >= dict_len {
                return Err(StorageError::Corrupt(format!(
                    "dictionary code {c} out of range for dictionary of {dict_len}"
                )));
            }
            codes.push(c);
        }
        return Ok(ColumnData::Dict {
            codes,
            dict: Arc::new(crate::column::Dictionary::from_sorted_unique(values)),
        });
    }
    let dt = data_type_from_tag(tag)?;
    let len = r.get_usize()?;
    // Fixed-width types can validate the length against the remaining bytes
    // *before* allocating, so a corrupt length cannot trigger a huge
    // allocation.
    let mut col = match dt {
        DataType::Int64 | DataType::Float64 => {
            if r.remaining() < len.saturating_mul(8) {
                return Err(corrupt("column values"));
            }
            ColumnData::with_capacity(dt, len)
        }
        DataType::Bool => {
            if r.remaining() < len {
                return Err(corrupt("column values"));
            }
            ColumnData::with_capacity(dt, len)
        }
        DataType::Utf8 => ColumnData::with_capacity(dt, len.min(1 << 20)),
    };
    match &mut col {
        ColumnData::Int64(v) => {
            for _ in 0..len {
                v.push(r.get_i64()?);
            }
        }
        ColumnData::Float64(v) => {
            for _ in 0..len {
                v.push(r.get_f64()?);
            }
        }
        ColumnData::Utf8(v) => {
            for _ in 0..len {
                v.push(r.get_str()?);
            }
        }
        ColumnData::Bool(v) => {
            for _ in 0..len {
                v.push(r.get_bool()?);
            }
        }
        // `with_capacity` only builds plain columns; Dict decoded above.
        ColumnData::Dict { .. } => {}
    }
    Ok(col)
}

/// Encode a [`RecordBatch`] (schema + columns).
pub fn encode_batch(w: &mut ByteWriter, batch: &RecordBatch) {
    encode_schema(w, batch.schema());
    w.put_u64(batch.num_rows() as u64);
    for col in batch.columns() {
        encode_column(w, col);
    }
}

/// Decode a [`RecordBatch`], re-validating the schema/column invariants via
/// [`RecordBatch::try_new`].
pub fn decode_batch(r: &mut ByteReader) -> Result<RecordBatch, StorageError> {
    let schema: SchemaRef = Arc::new(decode_schema(r)?);
    let num_rows = r.get_usize()?;
    let mut columns = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        let col = decode_column(r)?;
        if col.len() != num_rows {
            return Err(StorageError::Corrupt(format!(
                "column length {} disagrees with batch rows {num_rows}",
                col.len()
            )));
        }
        columns.push(col);
    }
    if schema.is_empty() && num_rows > 0 {
        return Err(corrupt("batch (rows without columns)"));
    }
    RecordBatch::try_new(schema, columns)
        .map_err(|e| StorageError::Corrupt(format!("decoded batch failed validation: {e}")))
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `bytes` —
/// the checksum framing every WAL record.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchBuilder;

    fn round_trip_batch(batch: &RecordBatch) -> RecordBatch {
        let mut w = ByteWriter::new();
        encode_batch(&mut w, batch);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let out = decode_batch(&mut r).unwrap();
        assert!(r.is_exhausted());
        out
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(-0.125);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
        assert!(r.get_u8().is_err(), "overrun is an error, not a panic");
    }

    #[test]
    fn batch_round_trips_all_column_types() {
        let batch = BatchBuilder::new()
            .column("i", vec![1i64, -2, 3])
            .column("f", vec![0.5f64, f64::MAX, -1.0])
            .column("s", vec!["a", "", "long string with spaces"])
            .column("b", vec![true, false, true])
            .build()
            .unwrap();
        assert_eq!(round_trip_batch(&batch), batch);
        // Empty batches round-trip too.
        let empty = RecordBatch::empty(batch.schema().clone());
        assert_eq!(round_trip_batch(&empty), empty);
    }

    #[test]
    fn truncated_bytes_decode_to_corrupt_not_panic() {
        let batch = BatchBuilder::new()
            .column("x", (0..100i64).collect::<Vec<_>>())
            .build()
            .unwrap();
        let mut w = ByteWriter::new();
        encode_batch(&mut w, &batch);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let err = decode_batch(&mut r).unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt(_)),
                "cut at {cut} must yield Corrupt, got {err}"
            );
        }
    }

    #[test]
    fn dict_batch_round_trips_encoded() {
        let batch = BatchBuilder::new()
            .column("i", vec![1i64, 2, 3, 4])
            .column("s", vec!["pear", "apple", "pear", ""])
            .build()
            .unwrap()
            .dict_encode_strings();
        assert!(batch.has_dict_columns());
        let out = round_trip_batch(&batch);
        assert!(
            out.has_dict_columns(),
            "round-trip preserves the encoding, not just the values"
        );
        assert_eq!(out, batch);
        // And the decoded column still compares equal to the raw form.
        let raw = BatchBuilder::new()
            .column("i", vec![1i64, 2, 3, 4])
            .column("s", vec!["pear", "apple", "pear", ""])
            .build()
            .unwrap();
        assert_eq!(out, raw);
    }

    #[test]
    fn truncated_dict_bytes_decode_to_corrupt_not_panic() {
        let batch = BatchBuilder::new()
            .column("s", vec!["aa", "bb", "aa", "cc", "bb"])
            .build()
            .unwrap()
            .dict_encode_strings();
        let mut w = ByteWriter::new();
        encode_batch(&mut w, &batch);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let err = decode_batch(&mut r).unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt(_)),
                "cut at {cut} must yield Corrupt, got {err}"
            );
        }
    }

    #[test]
    fn out_of_range_or_unsorted_dictionaries_are_corrupt() {
        // Code 7 with a 2-entry dictionary.
        let mut w = ByteWriter::new();
        w.put_u8(4); // TYPE_DICT_UTF8
        w.put_u64(1);
        w.put_u32(2);
        w.put_str("a");
        w.put_str("b");
        w.put_u32(7);
        let bytes = w.into_bytes();
        let err = decode_column(&mut ByteReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
        // Unsorted dictionary.
        let mut w = ByteWriter::new();
        w.put_u8(4);
        w.put_u64(1);
        w.put_u32(2);
        w.put_str("b");
        w.put_str("a");
        w.put_u32(0);
        let bytes = w.into_bytes();
        let err = decode_column(&mut ByteReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn corrupt_length_does_not_overallocate() {
        // A column claiming u64::MAX values must fail cleanly.
        let mut w = ByteWriter::new();
        encode_data_type(&mut w, DataType::Int64);
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(decode_column(&mut r).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
