//! Columnar data arrays.

use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::schema::DataType;
use crate::value::Value;

/// A single typed column of values.
///
/// Columns are append-only vectors; the engine operates on whole columns
/// where possible and falls back to row-at-a-time [`Value`]s only for group
/// keys and final results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnData {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// UTF-8 strings.
    Utf8(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn new_empty(data_type: DataType) -> Self {
        match data_type {
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Utf8 => ColumnData::Utf8(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        }
    }

    /// An empty column with pre-reserved capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Self {
        match data_type {
            DataType::Int64 => ColumnData::Int64(Vec::with_capacity(capacity)),
            DataType::Float64 => ColumnData::Float64(Vec::with_capacity(capacity)),
            DataType::Utf8 => ColumnData::Utf8(Vec::with_capacity(capacity)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(capacity)),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) => DataType::Utf8,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// `true` if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `idx` widened to a [`Value`].
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn value(&self, idx: usize) -> Value {
        match self {
            ColumnData::Int64(v) => Value::Int(v[idx]),
            ColumnData::Float64(v) => Value::Float(v[idx]),
            ColumnData::Utf8(v) => Value::Str(v[idx].clone()),
            ColumnData::Bool(v) => Value::Bool(v[idx]),
        }
    }

    /// The value at `idx` as `f64`, if the column is numeric or boolean.
    pub fn value_f64(&self, idx: usize) -> Option<f64> {
        match self {
            ColumnData::Int64(v) => Some(v[idx] as f64),
            ColumnData::Float64(v) => Some(v[idx]),
            ColumnData::Bool(v) => Some(if v[idx] { 1.0 } else { 0.0 }),
            ColumnData::Utf8(_) => None,
        }
    }

    /// Append a value, coercing numerics where it is lossless.
    pub fn push(&mut self, value: &Value) -> Result<(), StorageError> {
        match (self, value) {
            (ColumnData::Int64(v), Value::Int(x)) => v.push(*x),
            (ColumnData::Int64(v), Value::Float(x)) => v.push(*x as i64),
            (ColumnData::Float64(v), Value::Float(x)) => v.push(*x),
            (ColumnData::Float64(v), Value::Int(x)) => v.push(*x as f64),
            (ColumnData::Utf8(v), Value::Str(x)) => v.push(x.clone()),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(*x),
            (col, val) => {
                return Err(StorageError::TypeMismatch(format!(
                    "cannot push {val} into {} column",
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// A new column containing the values at the selected indices, in order.
    pub fn take(&self, indices: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float64(v) => ColumnData::Float64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Utf8(v) => {
                ColumnData::Utf8(indices.iter().map(|&i| v[i].clone()).collect())
            }
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// A new column containing rows where `mask[i]` is `true`.
    pub fn filter(&self, mask: &[bool]) -> ColumnData {
        debug_assert_eq!(mask.len(), self.len());
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(
                v.iter()
                    .zip(mask)
                    .filter_map(|(x, &keep)| keep.then_some(*x))
                    .collect(),
            ),
            ColumnData::Float64(v) => ColumnData::Float64(
                v.iter()
                    .zip(mask)
                    .filter_map(|(x, &keep)| keep.then_some(*x))
                    .collect(),
            ),
            ColumnData::Utf8(v) => ColumnData::Utf8(
                v.iter()
                    .zip(mask)
                    .filter(|&(_x, &keep)| keep).map(|(x, &_keep)| x.clone())
                    .collect(),
            ),
            ColumnData::Bool(v) => ColumnData::Bool(
                v.iter()
                    .zip(mask)
                    .filter_map(|(x, &keep)| keep.then_some(*x))
                    .collect(),
            ),
        }
    }

    /// A new column containing the rows selected by a packed mask.
    ///
    /// Equivalent to `filter(&mask.to_bools())` without materializing the
    /// boolean array; the typed loops copy straight from the set bits.
    pub fn filter_mask(&self, mask: &crate::mask::SelectionMask) -> ColumnData {
        debug_assert_eq!(mask.len(), self.len());
        let n = mask.count_selected();
        match self {
            ColumnData::Int64(v) => {
                let mut out = Vec::with_capacity(n);
                out.extend(mask.iter_selected().map(|i| v[i]));
                ColumnData::Int64(out)
            }
            ColumnData::Float64(v) => {
                let mut out = Vec::with_capacity(n);
                out.extend(mask.iter_selected().map(|i| v[i]));
                ColumnData::Float64(out)
            }
            ColumnData::Utf8(v) => {
                let mut out = Vec::with_capacity(n);
                out.extend(mask.iter_selected().map(|i| v[i].clone()));
                ColumnData::Utf8(out)
            }
            ColumnData::Bool(v) => {
                let mut out = Vec::with_capacity(n);
                out.extend(mask.iter_selected().map(|i| v[i]));
                ColumnData::Bool(out)
            }
        }
    }

    /// A zero-copy-ish slice (clones the underlying range).
    pub fn slice(&self, offset: usize, len: usize) -> ColumnData {
        let end = (offset + len).min(self.len());
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(v[offset..end].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[offset..end].to_vec()),
            ColumnData::Utf8(v) => ColumnData::Utf8(v[offset..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[offset..end].to_vec()),
        }
    }

    /// Append all values from another column of the same type.
    pub fn extend_from(&mut self, other: &ColumnData) -> Result<(), StorageError> {
        match (self, other) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend_from_slice(b),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(StorageError::TypeMismatch(format!(
                    "cannot extend {} column with {} column",
                    a.data_type(),
                    b.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Iterate values widened to [`Value`].
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Utf8(v) => v.iter().map(|s| s.len() + 24).sum(),
            ColumnData::Bool(v) => v.len(),
        }
    }
}

impl From<Vec<i64>> for ColumnData {
    fn from(v: Vec<i64>) -> Self {
        ColumnData::Int64(v)
    }
}

impl From<Vec<f64>> for ColumnData {
    fn from(v: Vec<f64>) -> Self {
        ColumnData::Float64(v)
    }
}

impl From<Vec<String>> for ColumnData {
    fn from(v: Vec<String>) -> Self {
        ColumnData::Utf8(v)
    }
}

impl From<Vec<&str>> for ColumnData {
    fn from(v: Vec<&str>) -> Self {
        ColumnData::Utf8(v.into_iter().map(str::to_string).collect())
    }
}

impl From<Vec<bool>> for ColumnData {
    fn from(v: Vec<bool>) -> Self {
        ColumnData::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = ColumnData::new_empty(DataType::Int64);
        c.push(&Value::Int(7)).unwrap();
        c.push(&Value::Float(2.9)).unwrap(); // lossy but accepted coercion
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(0), Value::Int(7));
        assert_eq!(c.value(1), Value::Int(2));
        assert!(c.push(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn filter_and_take() {
        let c: ColumnData = vec![1i64, 2, 3, 4].into();
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(f, ColumnData::Int64(vec![1, 3]));
        let t = c.take(&[3, 0]);
        assert_eq!(t, ColumnData::Int64(vec![4, 1]));
    }

    #[test]
    fn slice_clamps_to_len() {
        let c: ColumnData = vec!["a", "b", "c"].into();
        let s = c.slice(1, 10);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(0), Value::Str("b".into()));
    }

    #[test]
    fn extend_requires_same_type() {
        let mut a: ColumnData = vec![1i64].into();
        let b: ColumnData = vec![2i64, 3].into();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 3);
        let c: ColumnData = vec![1.0f64].into();
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn size_bytes_tracks_strings() {
        let c: ColumnData = vec!["hello", "world"].into();
        assert!(c.size_bytes() >= 10);
        let i: ColumnData = vec![1i64, 2].into();
        assert_eq!(i.size_bytes(), 16);
    }

    #[test]
    fn value_f64_for_each_type() {
        assert_eq!(ColumnData::from(vec![2i64]).value_f64(0), Some(2.0));
        assert_eq!(ColumnData::from(vec![2.5f64]).value_f64(0), Some(2.5));
        assert_eq!(ColumnData::from(vec![true]).value_f64(0), Some(1.0));
        assert_eq!(ColumnData::from(vec!["x"]).value_f64(0), None);
    }
}
