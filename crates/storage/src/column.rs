//! Columnar data arrays.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::schema::DataType;
use crate::value::Value;

/// An order-preserving string dictionary: the distinct values of one
/// dictionary-encoded column, **sorted and unique**, so that code order
/// equals string order (`codes[i] < codes[j]` ⇔ `strings[i] < strings[j]`).
///
/// Dictionaries are built once per sealed partition and shared behind an
/// `Arc` by every column derived from that partition (slices, filtered
/// copies, index gathers), so re-encoding never happens downstream of a
/// seal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dictionary {
    values: Vec<String>,
}

impl Dictionary {
    /// Build a dictionary from values that are already sorted and unique.
    ///
    /// # Panics
    /// Debug builds panic if the order-preserving invariant is violated.
    pub fn from_sorted_unique(values: Vec<String>) -> Self {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "dictionary values must be sorted and unique"
        );
        Self { values }
    }

    /// Dictionary-encode a string slice: returns the shared dictionary and
    /// one code per input row. Codes are assigned in sort order, preserving
    /// string order.
    pub fn encode(strings: &[String]) -> (Arc<Dictionary>, Vec<u32>) {
        let mut distinct: Vec<&str> = strings.iter().map(String::as_str).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let dict = Dictionary::from_sorted_unique(
            distinct.iter().map(|s| s.to_string()).collect(),
        );
        // Every input string is in its own dictionary, so the lower bound
        // *is* the exact code (avoids an `expect` under the crate's
        // `clippy::expect_used` lint).
        let codes = strings.iter().map(|s| dict.lower_bound(s)).collect();
        (Arc::new(dict), codes)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The string for `code`.
    ///
    /// # Panics
    /// Panics if `code` is out of bounds.
    pub fn get(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// All distinct values in sorted order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// The code of `s`, if present (binary search over the sorted values).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.values
            .binary_search_by(|v| v.as_str().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    /// The first code whose string is `>= s` (equals [`Self::len`] when every
    /// value is smaller). Because codes are order-preserving, this single
    /// boundary turns any string range predicate into a code comparison.
    pub fn lower_bound(&self, s: &str) -> u32 {
        self.values.partition_point(|v| v.as_str() < s) as u32
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.values.iter().map(|s| s.len() + 24).sum()
    }
}

/// A single typed column of values.
///
/// Columns are append-only vectors; the engine operates on whole columns
/// where possible and falls back to row-at-a-time [`Value`]s only for group
/// keys and final results.
///
/// String columns exist in two representations: plain [`ColumnData::Utf8`]
/// (the mutable, unsealed form) and [`ColumnData::Dict`] (the sealed,
/// dictionary-encoded form produced by `Table`'s seal path). Both report
/// [`DataType::Utf8`] and are logically interchangeable — encoding is a
/// storage choice, never a correctness choice — which the manual
/// [`PartialEq`] below makes literal: a `Dict` column equals the `Utf8`
/// column holding the same strings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ColumnData {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// UTF-8 strings.
    Utf8(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded UTF-8 strings: one `u32` code per row into a
    /// shared, order-preserving [`Dictionary`].
    Dict {
        /// Per-row codes into `dict`.
        codes: Vec<u32>,
        /// The shared sorted-unique dictionary.
        dict: Arc<Dictionary>,
    },
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn new_empty(data_type: DataType) -> Self {
        match data_type {
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Utf8 => ColumnData::Utf8(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        }
    }

    /// An empty column with pre-reserved capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Self {
        match data_type {
            DataType::Int64 => ColumnData::Int64(Vec::with_capacity(capacity)),
            DataType::Float64 => ColumnData::Float64(Vec::with_capacity(capacity)),
            DataType::Utf8 => ColumnData::Utf8(Vec::with_capacity(capacity)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(capacity)),
        }
    }

    /// The column's data type. Dictionary-encoded columns are `Utf8`: the
    /// encoding is invisible to schemas, projections and batch validation.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) | ColumnData::Dict { .. } => DataType::Utf8,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
        }
    }

    /// `true` if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for a dictionary-encoded string column.
    pub fn is_dict_encoded(&self) -> bool {
        matches!(self, ColumnData::Dict { .. })
    }

    /// The codes and dictionary of a dictionary-encoded column, if it is one.
    pub fn as_dict(&self) -> Option<(&[u32], &Arc<Dictionary>)> {
        match self {
            ColumnData::Dict { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Dictionary-encode a `Utf8` column (idempotent on `Dict`, identity on
    /// non-string columns). Called by `Table`'s seal path; the unsealed tail
    /// always stays `Utf8`.
    pub fn dict_encode(&self) -> ColumnData {
        match self {
            ColumnData::Utf8(v) => {
                let (dict, codes) = Dictionary::encode(v);
                ColumnData::Dict { codes, dict }
            }
            other => other.clone(),
        }
    }

    /// Decode a `Dict` column back to plain `Utf8` (identity otherwise).
    pub fn decode_dict(&self) -> ColumnData {
        match self {
            ColumnData::Dict { codes, dict } => ColumnData::Utf8(
                codes.iter().map(|&c| dict.get(c).to_string()).collect(),
            ),
            other => other.clone(),
        }
    }

    /// The value at `idx` widened to a [`Value`].
    ///
    /// This is an owned-clone site for string columns: the `Value` owns its
    /// `String`. Callers that only *inspect* the string should use
    /// [`Self::value_str`] instead.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn value(&self, idx: usize) -> Value {
        match self {
            ColumnData::Int64(v) => Value::Int(v[idx]),
            ColumnData::Float64(v) => Value::Float(v[idx]),
            ColumnData::Utf8(v) => Value::Str(v[idx].clone()),
            ColumnData::Bool(v) => Value::Bool(v[idx]),
            ColumnData::Dict { codes, dict } => Value::Str(dict.get(codes[idx]).to_string()),
        }
    }

    /// The string at `idx` borrowed from the column, if this is a string
    /// column (either representation). The allocation-free counterpart of
    /// [`Self::value`] for call sites that only inspect the value.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds on a string column.
    pub fn value_str(&self, idx: usize) -> Option<&str> {
        match self {
            ColumnData::Utf8(v) => Some(&v[idx]),
            ColumnData::Dict { codes, dict } => Some(dict.get(codes[idx])),
            _ => None,
        }
    }

    /// The value at `idx` as `f64`, if the column is numeric or boolean.
    pub fn value_f64(&self, idx: usize) -> Option<f64> {
        match self {
            ColumnData::Int64(v) => Some(v[idx] as f64),
            ColumnData::Float64(v) => Some(v[idx]),
            ColumnData::Bool(v) => Some(if v[idx] { 1.0 } else { 0.0 }),
            ColumnData::Utf8(_) | ColumnData::Dict { .. } => None,
        }
    }

    /// Append a value, coercing numerics where it is lossless.
    ///
    /// Dictionary-encoded columns are sealed and reject appends — the table
    /// append path only ever grows the unsealed (`Utf8`) tail.
    pub fn push(&mut self, value: &Value) -> Result<(), StorageError> {
        match (self, value) {
            (ColumnData::Int64(v), Value::Int(x)) => v.push(*x),
            (ColumnData::Int64(v), Value::Float(x)) => v.push(*x as i64),
            (ColumnData::Float64(v), Value::Float(x)) => v.push(*x),
            (ColumnData::Float64(v), Value::Int(x)) => v.push(*x as f64),
            (ColumnData::Utf8(v), Value::Str(x)) => v.push(x.clone()),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(*x),
            (ColumnData::Dict { .. }, val) => {
                return Err(StorageError::TypeMismatch(format!(
                    "cannot push {val} into a sealed dictionary-encoded column"
                )))
            }
            (col, val) => {
                return Err(StorageError::TypeMismatch(format!(
                    "cannot push {val} into {} column",
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// A new column containing the values at the selected indices, in order.
    ///
    /// For string columns this is an owned-clone site on `Utf8` input;
    /// `Dict` input gathers only the 4-byte codes and shares the dictionary.
    pub fn take(&self, indices: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float64(v) => ColumnData::Float64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Utf8(v) => {
                ColumnData::Utf8(indices.iter().map(|&i| v[i].clone()).collect())
            }
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Dict { codes, dict } => ColumnData::Dict {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                dict: dict.clone(),
            },
        }
    }

    /// A new column containing rows where `mask[i]` is `true`.
    pub fn filter(&self, mask: &[bool]) -> ColumnData {
        debug_assert_eq!(mask.len(), self.len());
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(
                v.iter()
                    .zip(mask)
                    .filter_map(|(x, &keep)| keep.then_some(*x))
                    .collect(),
            ),
            ColumnData::Float64(v) => ColumnData::Float64(
                v.iter()
                    .zip(mask)
                    .filter_map(|(x, &keep)| keep.then_some(*x))
                    .collect(),
            ),
            ColumnData::Utf8(v) => ColumnData::Utf8(
                v.iter()
                    .zip(mask)
                    .filter(|&(_x, &keep)| keep).map(|(x, &_keep)| x.clone())
                    .collect(),
            ),
            ColumnData::Bool(v) => ColumnData::Bool(
                v.iter()
                    .zip(mask)
                    .filter_map(|(x, &keep)| keep.then_some(*x))
                    .collect(),
            ),
            ColumnData::Dict { codes, dict } => ColumnData::Dict {
                codes: codes
                    .iter()
                    .zip(mask)
                    .filter_map(|(x, &keep)| keep.then_some(*x))
                    .collect(),
                dict: dict.clone(),
            },
        }
    }

    /// A new column containing the rows selected by a packed mask.
    ///
    /// Equivalent to `filter(&mask.to_bools())` without materializing the
    /// boolean array; the typed loops copy straight from the set bits.
    pub fn filter_mask(&self, mask: &crate::mask::SelectionMask) -> ColumnData {
        debug_assert_eq!(mask.len(), self.len());
        let n = mask.count_selected();
        match self {
            ColumnData::Int64(v) => {
                let mut out = Vec::with_capacity(n);
                out.extend(mask.iter_selected().map(|i| v[i]));
                ColumnData::Int64(out)
            }
            ColumnData::Float64(v) => {
                let mut out = Vec::with_capacity(n);
                out.extend(mask.iter_selected().map(|i| v[i]));
                ColumnData::Float64(out)
            }
            ColumnData::Utf8(v) => {
                let mut out = Vec::with_capacity(n);
                out.extend(mask.iter_selected().map(|i| v[i].clone()));
                ColumnData::Utf8(out)
            }
            ColumnData::Bool(v) => {
                let mut out = Vec::with_capacity(n);
                out.extend(mask.iter_selected().map(|i| v[i]));
                ColumnData::Bool(out)
            }
            ColumnData::Dict { codes, dict } => {
                let mut out = Vec::with_capacity(n);
                out.extend(mask.iter_selected().map(|i| codes[i]));
                ColumnData::Dict {
                    codes: out,
                    dict: dict.clone(),
                }
            }
        }
    }

    /// A zero-copy-ish slice (clones the underlying range; `Dict` slices
    /// clone only codes and share the dictionary).
    pub fn slice(&self, offset: usize, len: usize) -> ColumnData {
        let end = (offset + len).min(self.len());
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(v[offset..end].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[offset..end].to_vec()),
            ColumnData::Utf8(v) => ColumnData::Utf8(v[offset..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[offset..end].to_vec()),
            ColumnData::Dict { codes, dict } => ColumnData::Dict {
                codes: codes[offset..end].to_vec(),
                dict: dict.clone(),
            },
        }
    }

    /// Append all values from another column of the same logical type.
    ///
    /// `Dict` sources decode into `Utf8` targets (the mixed sealed/unsealed
    /// concat path); a `Dict` *target* is first decoded in place, since a
    /// grown column is no longer the sealed partition the dictionary
    /// described.
    pub fn extend_from(&mut self, other: &ColumnData) -> Result<(), StorageError> {
        if let ColumnData::Dict { .. } = self {
            *self = self.decode_dict();
        }
        match (self, other) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend_from_slice(b),
            (this @ ColumnData::Utf8(_), ColumnData::Dict { .. })
                if this.is_empty() =>
            {
                // An empty Utf8 target adopts the encoded source wholesale:
                // the single-partition concat path (one sealed partition
                // surviving zone pruning) keeps its encoding downstream
                // instead of decoding row by row.
                *this = other.clone();
            }
            (ColumnData::Utf8(a), ColumnData::Dict { codes, dict }) => {
                a.extend(codes.iter().map(|&c| dict.get(c).to_string()));
            }
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(StorageError::TypeMismatch(format!(
                    "cannot extend {} column with {} column",
                    a.data_type(),
                    b.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Iterate values widened to [`Value`].
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Utf8(v) => v.iter().map(|s| s.len() + 24).sum(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Dict { codes, dict } => codes.len() * 4 + dict.size_bytes(),
        }
    }
}

/// Logical, representation-independent equality: a `Dict` column equals the
/// `Utf8` column holding the same strings. Required because recovered tables
/// round-trip through the codec *encoded* while in-memory fixtures are often
/// raw, and batch equality must not depend on that storage choice.
impl PartialEq for ColumnData {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a == b,
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a == b,
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a == b,
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a == b,
            (
                ColumnData::Dict { codes: ca, dict: da },
                ColumnData::Dict { codes: cb, dict: db },
            ) => {
                if Arc::ptr_eq(da, db) || da == db {
                    ca == cb
                } else {
                    ca.len() == cb.len()
                        && ca
                            .iter()
                            .zip(cb)
                            .all(|(&a, &b)| da.get(a) == db.get(b))
                }
            }
            (ColumnData::Utf8(a), ColumnData::Dict { codes, dict })
            | (ColumnData::Dict { codes, dict }, ColumnData::Utf8(a)) => {
                a.len() == codes.len()
                    && a.iter().zip(codes).all(|(s, &c)| s.as_str() == dict.get(c))
            }
            _ => false,
        }
    }
}

impl From<Vec<i64>> for ColumnData {
    fn from(v: Vec<i64>) -> Self {
        ColumnData::Int64(v)
    }
}

impl From<Vec<f64>> for ColumnData {
    fn from(v: Vec<f64>) -> Self {
        ColumnData::Float64(v)
    }
}

impl From<Vec<String>> for ColumnData {
    fn from(v: Vec<String>) -> Self {
        ColumnData::Utf8(v)
    }
}

impl From<Vec<&str>> for ColumnData {
    fn from(v: Vec<&str>) -> Self {
        ColumnData::Utf8(v.into_iter().map(str::to_string).collect())
    }
}

impl From<Vec<bool>> for ColumnData {
    fn from(v: Vec<bool>) -> Self {
        ColumnData::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_utf8_target_adopts_dict_source() {
        let raw = ColumnData::Utf8(vec!["b".into(), "a".into(), "b".into()]);
        let enc = raw.dict_encode();
        assert!(enc.is_dict_encoded());

        // Empty target: adoption keeps the encoding (and shares the dict Arc).
        let mut target = ColumnData::new_empty(DataType::Utf8);
        target.extend_from(&enc).unwrap();
        assert!(target.is_dict_encoded());
        assert_eq!(target, raw);

        // Non-empty target: decoded row by row, stays Utf8.
        let mut target = ColumnData::Utf8(vec!["z".into()]);
        target.extend_from(&enc).unwrap();
        assert!(!target.is_dict_encoded());
        assert_eq!(
            target,
            ColumnData::Utf8(vec!["z".into(), "b".into(), "a".into(), "b".into()])
        );
    }

    #[test]
    fn push_and_read_back() {
        let mut c = ColumnData::new_empty(DataType::Int64);
        c.push(&Value::Int(7)).unwrap();
        c.push(&Value::Float(2.9)).unwrap(); // lossy but accepted coercion
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(0), Value::Int(7));
        assert_eq!(c.value(1), Value::Int(2));
        assert!(c.push(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn filter_and_take() {
        let c: ColumnData = vec![1i64, 2, 3, 4].into();
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(f, ColumnData::Int64(vec![1, 3]));
        let t = c.take(&[3, 0]);
        assert_eq!(t, ColumnData::Int64(vec![4, 1]));
    }

    #[test]
    fn slice_clamps_to_len() {
        let c: ColumnData = vec!["a", "b", "c"].into();
        let s = c.slice(1, 10);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(0), Value::Str("b".into()));
    }

    #[test]
    fn extend_requires_same_type() {
        let mut a: ColumnData = vec![1i64].into();
        let b: ColumnData = vec![2i64, 3].into();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 3);
        let c: ColumnData = vec![1.0f64].into();
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn size_bytes_tracks_strings() {
        let c: ColumnData = vec!["hello", "world"].into();
        assert!(c.size_bytes() >= 10);
        let i: ColumnData = vec![1i64, 2].into();
        assert_eq!(i.size_bytes(), 16);
    }

    #[test]
    fn value_f64_for_each_type() {
        assert_eq!(ColumnData::from(vec![2i64]).value_f64(0), Some(2.0));
        assert_eq!(ColumnData::from(vec![2.5f64]).value_f64(0), Some(2.5));
        assert_eq!(ColumnData::from(vec![true]).value_f64(0), Some(1.0));
        assert_eq!(ColumnData::from(vec!["x"]).value_f64(0), None);
    }

    #[test]
    fn dictionary_is_order_preserving() {
        let raw: ColumnData = vec!["pear", "apple", "pear", "", "quince"].into();
        let enc = raw.dict_encode();
        let (codes, dict) = enc.as_dict().unwrap();
        assert_eq!(dict.values(), &["", "apple", "pear", "quince"]);
        assert_eq!(codes, &[2, 1, 2, 0, 3]);
        // Code order == string order.
        for i in 0..dict.len() as u32 {
            for j in 0..dict.len() as u32 {
                assert_eq!(i.cmp(&j), dict.get(i).cmp(dict.get(j)));
            }
        }
        assert_eq!(dict.code_of("pear"), Some(2));
        assert_eq!(dict.code_of("zebra"), None);
        assert_eq!(dict.lower_bound("b"), 2);
        assert_eq!(dict.lower_bound("zzz"), 4);
    }

    #[test]
    fn dict_equals_utf8_with_same_content() {
        let raw: ColumnData = vec!["b", "a", "b"].into();
        let enc = raw.dict_encode();
        assert!(enc.is_dict_encoded());
        assert_eq!(enc, raw);
        assert_eq!(raw, enc);
        assert_eq!(enc.decode_dict(), raw);
        let other: ColumnData = vec!["b", "a", "c"].into();
        assert_ne!(enc, other);
        // Two independently built dictionaries with equal content compare equal.
        assert_eq!(raw.dict_encode(), raw.dict_encode());
    }

    #[test]
    fn dict_slice_take_filter_share_dictionary() {
        let raw: ColumnData = vec!["x", "y", "x", "z", "y"].into();
        let enc = raw.dict_encode();
        let s = enc.slice(1, 3);
        assert_eq!(s, raw.slice(1, 3));
        let t = enc.take(&[4, 0]);
        assert_eq!(t, raw.take(&[4, 0]));
        assert!(t.is_dict_encoded());
        let f = enc.filter(&[true, false, true, false, true]);
        assert_eq!(f, raw.filter(&[true, false, true, false, true]));
        let (_, d0) = enc.as_dict().unwrap();
        let (_, d1) = t.as_dict().unwrap();
        assert!(Arc::ptr_eq(d0, d1), "take must share the dictionary");
    }

    #[test]
    fn utf8_extends_from_dict_and_dict_target_decodes() {
        let mut tail: ColumnData = vec!["u1", "u2"].into();
        let sealed = ColumnData::from(vec!["a", "b"]).dict_encode();
        tail.extend_from(&sealed).unwrap();
        assert_eq!(tail, ColumnData::from(vec!["u1", "u2", "a", "b"]));

        let mut grown = sealed.clone();
        grown.extend_from(&ColumnData::from(vec!["c"])).unwrap();
        assert!(!grown.is_dict_encoded(), "a grown column decodes in place");
        assert_eq!(grown, ColumnData::from(vec!["a", "b", "c"]));
    }

    #[test]
    fn value_str_borrows_for_both_representations() {
        let raw: ColumnData = vec!["p", "q"].into();
        assert_eq!(raw.value_str(1), Some("q"));
        assert_eq!(raw.dict_encode().value_str(1), Some("q"));
        assert_eq!(ColumnData::from(vec![1i64]).value_str(0), None);
    }

    #[test]
    fn dict_rejects_push() {
        let mut enc = ColumnData::from(vec!["a"]).dict_encode();
        assert!(enc.push(&Value::Str("b".into())).is_err());
    }
}
