//! Error type for the storage layer.

use std::fmt;

/// Errors surfaced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A referenced column does not exist in the schema.
    ColumnNotFound(String),
    /// A referenced table does not exist in the catalog.
    TableNotFound(String),
    /// Column lengths within a batch disagree, or a value has the wrong type.
    TypeMismatch(String),
    /// Generic invariant violation (mismatched schemas on append, etc.).
    Invalid(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            StorageError::TableNotFound(name) => write!(f, "table not found: {name}"),
            StorageError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            StorageError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}
