//! Error type for the storage layer.

use std::fmt;

/// Errors surfaced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A referenced column does not exist in the schema.
    ColumnNotFound(String),
    /// A referenced table does not exist in the catalog.
    TableNotFound(String),
    /// Column lengths within a batch disagree, or a value has the wrong type.
    TypeMismatch(String),
    /// Generic invariant violation (mismatched schemas on append, etc.).
    Invalid(String),
    /// An underlying file operation failed (stringified `std::io::Error`, so
    /// the error type stays `Clone`/`PartialEq` for the callers that match
    /// on it).
    Io(String),
    /// Persistent data failed validation: a CRC mismatch, a truncated frame,
    /// an unknown record tag, or a decoded value that violates an invariant.
    Corrupt(String),
    /// An optimistic mutation lost its race: the table's physical layout
    /// changed (compaction, in-place tail delete) between the snapshot the
    /// caller resolved row positions against and the mutation itself.
    /// Re-resolve against a fresh snapshot and retry.
    Conflict(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            StorageError::TableNotFound(name) => write!(f, "table not found: {name}"),
            StorageError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            StorageError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
            StorageError::Io(msg) => write!(f, "I/O error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::Conflict(msg) => write!(f, "concurrent layout change: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(err: std::io::Error) -> Self {
        StorageError::Io(err.to_string())
    }
}
