//! Sparse per-partition secondary indexes over sealed partitions.
//!
//! A [`PartitionIndex`] maps every distinct value of one column inside one
//! *sealed* (immutable) partition to the compressed set of row positions that
//! hold it: a sorted run of `(key, row-ranges)` entries, ordered by
//! [`Value::total_cmp`] and keyed by the canonical row-encoded bytes from
//! [`crate::row_key`] (so `Int(2)` and `Float(2.0)` share one entry, exactly
//! as the comparison kernels treat them as equal).
//!
//! The index is *sparse* in the sense of the paper's storage layer: it exists
//! only for partitions that have sealed, and only for columns an operator
//! asked to index. The unsealed tail partition is always scanned, which is
//! what makes the design append-friendly — an append can extend the tail or
//! seal it into an immutable partition, but it can never rewrite rows a
//! sealed index describes, so published indexes are never invalidated.
//! Indexes travel inside [`crate::table::TableSnapshot`]s and are published
//! atomically with the partitions and zone maps they describe; a scan that
//! probes a snapshot's index can never disagree with the rows it reads.

use std::sync::Arc;

use crate::batch::RecordBatch;
use crate::error::StorageError;
use crate::mask::SelectionMask;
use crate::row_key::RowKeys;
use crate::value::Value;

/// One distinct key inside a [`PartitionIndex`]: the decoded value (used for
/// ordered probes), its canonical row-encoded bytes (the identity the join
/// and grouping machinery already uses), and the compressed, ascending row
/// ranges `[start, end)` holding that key.
#[derive(Debug, Clone)]
struct IndexEntry {
    /// Decoded key, the sort/probe key under [`Value::total_cmp`].
    key: Value,
    /// Canonical row-encoded bytes for the key (identity; equal bytes ⟺
    /// equal key under the engine's equality semantics).
    key_bytes: Vec<u8>,
    /// Maximal runs of consecutive rows holding the key, ascending.
    ranges: Vec<(u32, u32)>,
}

/// A sorted secondary index over one column of one immutable partition.
///
/// # Examples
///
/// ```
/// use taster_storage::batch::BatchBuilder;
/// use taster_storage::index::PartitionIndex;
/// use taster_storage::value::Value;
///
/// let part = BatchBuilder::new()
///     .column("grp", vec![3i64, 1, 3, 2, 1, 3])
///     .build()
///     .unwrap();
/// let idx = PartitionIndex::build(&part, "grp").unwrap();
/// // Rows holding grp = 3, as compressed [start, end) ranges.
/// assert_eq!(idx.probe_eq(&Value::Int(3)), vec![(0, 1), (2, 3), (5, 6)]);
/// // Range probes use the same total order as the comparison kernels:
/// // rows with grp < 3.
/// let lt3 = idx.probe_cmp(&Value::Int(3), std::cmp::Ordering::Less, false);
/// assert_eq!(lt3, vec![(1, 2), (3, 5)]);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionIndex {
    column: String,
    num_rows: usize,
    entries: Vec<IndexEntry>,
}

impl PartitionIndex {
    /// Build an index over `column` of an (immutable) partition.
    ///
    /// Cost is `O(n log n)` in the partition's rows; the result is a run of
    /// entries sorted by [`Value::total_cmp`] with equal-key rows compressed
    /// into maximal `[start, end)` ranges.
    pub fn build(partition: &RecordBatch, column: &str) -> Result<Self, StorageError> {
        let col = partition.column_by_name(column)?;
        let n = col.len();
        let mut pairs: Vec<(Value, u32)> = (0..n).map(|i| (col.value(i), i as u32)).collect();
        // Stable order: by key first, then by row, so equal-key rows come out
        // ascending and compress into maximal runs.
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut entries: Vec<IndexEntry> = Vec::new();
        for (key, row) in pairs {
            let is_new = entries
                .last()
                .is_none_or(|e| e.key.total_cmp(&key) != std::cmp::Ordering::Equal);
            if is_new {
                let key_bytes = RowKeys::encode_values(std::slice::from_ref(&key));
                entries.push(IndexEntry {
                    key,
                    key_bytes,
                    ranges: vec![(row, row + 1)],
                });
            } else if let Some(entry) = entries.last_mut() {
                match entry.ranges.last_mut() {
                    Some(last) if last.1 == row => last.1 = row + 1,
                    _ => entry.ranges.push((row, row + 1)),
                }
            }
        }
        Ok(Self {
            column: column.to_string(),
            num_rows: n,
            entries,
        })
    }

    /// The indexed column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Rows in the partition the index was built over.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of distinct keys in the partition.
    pub fn num_keys(&self) -> usize {
        self.entries.len()
    }

    /// Approximate in-memory size of the index in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| {
                std::mem::size_of::<IndexEntry>()
                    + e.key_bytes.len()
                    + e.ranges.len() * std::mem::size_of::<(u32, u32)>()
            })
            .sum()
    }

    /// Locate `key`'s entry by binary search under [`Value::total_cmp`];
    /// the match is double-checked against the canonical encoded bytes.
    fn find(&self, key: &Value) -> Option<&IndexEntry> {
        let idx = self
            .entries
            .binary_search_by(|e| e.key.total_cmp(key))
            .ok()?;
        let entry = &self.entries[idx];
        debug_assert_eq!(
            entry.key_bytes,
            RowKeys::encode_values(std::slice::from_ref(key)),
            "total_cmp equality must agree with row-key identity"
        );
        Some(entry)
    }

    /// Row ranges `[start, end)` of every row whose key equals `key` under
    /// the engine's equality semantics (`total_cmp == Equal`). Empty if the
    /// key is absent.
    pub fn probe_eq(&self, key: &Value) -> Vec<(u32, u32)> {
        self.find(key).map(|e| e.ranges.clone()).unwrap_or_default()
    }

    /// Row ranges of every row whose key lies in the interval bounded below
    /// by `lo` and above by `hi` (each bound inclusive when its flag is set;
    /// `None` leaves that side unbounded).
    fn probe_between(
        &self,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Vec<(u32, u32)> {
        let start = match lo {
            None => 0,
            Some((v, inclusive)) => self.entries.partition_point(|e| {
                let ord = e.key.total_cmp(v);
                if inclusive {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord != std::cmp::Ordering::Greater
                }
            }),
        };
        let end = match hi {
            None => self.entries.len(),
            Some((v, inclusive)) => self.entries.partition_point(|e| {
                let ord = e.key.total_cmp(v);
                if inclusive {
                    ord != std::cmp::Ordering::Greater
                } else {
                    ord == std::cmp::Ordering::Less
                }
            }),
        };
        // Each entry's ranges are sorted, but entries of different keys
        // interleave arbitrarily in row order: collect everything once and
        // coalesce in one pass instead of merging per entry (which would be
        // quadratic in the number of matched keys — painful for sparse keys,
        // where a range probe matches hundreds of single-row entries).
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for entry in &self.entries[start..end.max(start)] {
            ranges.extend_from_slice(&entry.ranges);
        }
        ranges.sort_unstable();
        coalesce_ranges(&mut ranges);
        ranges
    }

    /// Row ranges of every row whose key compares `ordering` against `key`:
    /// `Less`/`Greater` for strict bounds, with `inclusive` widening them to
    /// `<=` / `>=`. This is the physical leg of `IndexRange` access paths.
    pub fn probe_cmp(&self, key: &Value, ordering: std::cmp::Ordering, inclusive: bool) -> Vec<(u32, u32)> {
        match ordering {
            std::cmp::Ordering::Less => self.probe_between(None, Some((key, inclusive))),
            std::cmp::Ordering::Greater => self.probe_between(Some((key, inclusive)), None),
            std::cmp::Ordering::Equal => self.probe_eq(key),
        }
    }

    /// Materialize row ranges into a [`SelectionMask`] over the partition.
    pub fn mask_from_ranges(&self, ranges: &[(u32, u32)]) -> SelectionMask {
        ranges_to_mask(ranges, self.num_rows)
    }
}

/// Coalesce a run of ranges sorted by start into a disjoint union in place,
/// merging overlapping and touching neighbours.
fn coalesce_ranges(ranges: &mut Vec<(u32, u32)>) {
    let mut kept = 0usize;
    for i in 0..ranges.len() {
        let next = ranges[i];
        if kept > 0 && next.0 <= ranges[kept - 1].1 {
            ranges[kept - 1].1 = ranges[kept - 1].1.max(next.1);
        } else {
            ranges[kept] = next;
            kept += 1;
        }
    }
    ranges.truncate(kept);
}

/// Merge a sorted, disjoint run of ranges into an accumulator that is kept
/// sorted and disjoint (the union). Both inputs are ascending.
pub fn merge_ranges(acc: &mut Vec<(u32, u32)>, more: &[(u32, u32)]) {
    if more.is_empty() {
        return;
    }
    if acc.is_empty() {
        acc.extend_from_slice(more);
        return;
    }
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(acc.len() + more.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < acc.len() || j < more.len() {
        let next = if j >= more.len() || (i < acc.len() && acc[i].0 <= more[j].0) {
            let r = acc[i];
            i += 1;
            r
        } else {
            let r = more[j];
            j += 1;
            r
        };
        match out.last_mut() {
            Some(last) if next.0 <= last.1 => last.1 = last.1.max(next.1),
            _ => out.push(next),
        }
    }
    *acc = out;
}

/// Intersect two sorted, disjoint range runs.
pub fn intersect_ranges(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Total rows covered by a (disjoint) range run.
pub fn ranges_len(ranges: &[(u32, u32)]) -> usize {
    ranges.iter().map(|&(s, e)| (e - s) as usize).sum()
}

/// Materialize `[start, end)` row ranges into a [`SelectionMask`] of
/// `num_rows` bits.
pub fn ranges_to_mask(ranges: &[(u32, u32)], num_rows: usize) -> SelectionMask {
    let mut mask = SelectionMask::none(num_rows);
    for &(s, e) in ranges {
        for row in s..e.min(num_rows as u32) {
            mask.set(row as usize);
        }
    }
    mask
}

/// The secondary indexes carried by one snapshot: for each indexed column, a
/// per-partition slot that is `Some` for sealed (immutable, indexed)
/// partitions and `None` for the unsealed tail — scans fall back to a full
/// partition scan wherever the slot is `None`, so a missing index is never a
/// correctness question, only a cost one.
pub type ColumnIndexes = Vec<Option<Arc<PartitionIndex>>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchBuilder;

    fn part(vals: Vec<i64>) -> RecordBatch {
        BatchBuilder::new().column("v", vals).build().unwrap()
    }

    #[test]
    fn build_groups_and_compresses_rows() {
        let idx = PartitionIndex::build(&part(vec![3, 1, 3, 2, 1, 3]), "v").unwrap();
        assert_eq!(idx.num_keys(), 3);
        assert_eq!(idx.num_rows(), 6);
        assert_eq!(idx.probe_eq(&Value::Int(3)), vec![(0, 1), (2, 3), (5, 6)]);
        assert_eq!(idx.probe_eq(&Value::Int(1)), vec![(1, 2), (4, 5)]);
        assert_eq!(idx.probe_eq(&Value::Int(9)), Vec::<(u32, u32)>::new());
        // Consecutive equal keys compress into one run.
        let idx = PartitionIndex::build(&part(vec![7, 7, 7, 8]), "v").unwrap();
        assert_eq!(idx.probe_eq(&Value::Int(7)), vec![(0, 3)]);
    }

    #[test]
    fn probe_cmp_matches_scan_semantics() {
        let vals = vec![5i64, 1, 9, 3, 5, 7, 1];
        let idx = PartitionIndex::build(&part(vals.clone()), "v").unwrap();
        for bound in [0i64, 1, 4, 5, 9, 10] {
            for (ord, inclusive) in [
                (std::cmp::Ordering::Less, false),
                (std::cmp::Ordering::Less, true),
                (std::cmp::Ordering::Greater, false),
                (std::cmp::Ordering::Greater, true),
            ] {
                let ranges = idx.probe_cmp(&Value::Int(bound), ord, inclusive);
                let mask = idx.mask_from_ranges(&ranges);
                for (row, v) in vals.iter().enumerate() {
                    let expect = match (ord, inclusive) {
                        (std::cmp::Ordering::Less, false) => *v < bound,
                        (std::cmp::Ordering::Less, true) => *v <= bound,
                        (std::cmp::Ordering::Greater, false) => *v > bound,
                        (std::cmp::Ordering::Greater, true) => *v >= bound,
                        _ => unreachable!(),
                    };
                    assert_eq!(mask.get(row), expect, "bound={bound} ord={ord:?} inc={inclusive} row={row}");
                }
            }
        }
    }

    #[test]
    fn cross_type_numeric_keys_share_an_entry() {
        let b = BatchBuilder::new()
            .column("v", vec![2.0f64, 3.5, 2.0])
            .build()
            .unwrap();
        let idx = PartitionIndex::build(&b, "v").unwrap();
        // The engine treats Int(2) == Float(2.0); so does the index.
        assert_eq!(idx.probe_eq(&Value::Int(2)), vec![(0, 1), (2, 3)]);
        assert_eq!(idx.probe_eq(&Value::Float(2.0)), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn range_set_algebra() {
        let mut acc = vec![(0u32, 2u32), (5, 7)];
        merge_ranges(&mut acc, &[(1, 3), (7, 9), (11, 12)]);
        assert_eq!(acc, vec![(0, 3), (5, 9), (11, 12)]);
        assert_eq!(
            intersect_ranges(&[(0, 4), (6, 10)], &[(2, 7), (9, 12)]),
            vec![(2, 4), (6, 7), (9, 10)]
        );
        assert_eq!(ranges_len(&[(0, 3), (5, 9)]), 7);
        let mask = ranges_to_mask(&[(1, 3)], 4);
        assert_eq!(mask.to_bools(), vec![false, true, true, false]);
    }

    #[test]
    fn missing_column_is_an_error() {
        assert!(PartitionIndex::build(&part(vec![1]), "nope").is_err());
    }
}
