//! Simulated I/O and cluster cost model.
//!
//! The paper's numbers come from an 11-node Spark/HDFS cluster reading
//! Parquet from spinning disks; the reproduction runs over in-memory data on
//! one machine. To preserve the *shape* of the evaluation (who wins and by
//! roughly how much) the planner costs plans — and the benchmark harness
//! converts execution metrics into simulated time — with an explicit model of
//! that cluster instead of the laptop's memory bandwidth.
//!
//! The model is deliberately simple and fully documented so its assumptions
//! can be audited:
//!
//! * scanning base data costs `scan_ns_per_byte` per byte (cold HDFS read),
//! * reading a materialized synopsis from the warehouse costs
//!   `warehouse_ns_per_byte` (it is much smaller, but still persistent
//!   storage),
//! * reading a synopsis from the in-memory buffer costs `buffer_ns_per_byte`,
//! * every tuple that flows through an operator costs `cpu_ns_per_row`
//!   per operator,
//! * materializing a synopsis into the warehouse costs
//!   `materialize_ns_per_byte` (the write is off the critical path in Taster,
//!   but BlinkDB's offline phase pays it up front).

use serde::{Deserialize, Serialize};

/// Cost-model parameters expressed in nanoseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoModel {
    /// Cost of reading one byte of base-table data from cold storage.
    pub scan_ns_per_byte: f64,
    /// Cost of reading one byte of a warehouse-resident synopsis.
    pub warehouse_ns_per_byte: f64,
    /// Cost of reading one byte of a buffer-resident (in-memory) synopsis.
    pub buffer_ns_per_byte: f64,
    /// Cost of writing one byte when materializing a synopsis persistently.
    pub materialize_ns_per_byte: f64,
    /// Per-row, per-operator CPU cost.
    pub cpu_ns_per_row: f64,
    /// Fixed per-query planning/coordination overhead (driver side).
    pub per_query_overhead_ns: f64,
    /// Cost of one cold-tier *page read* measured against the real pager.
    /// Used instead of `warehouse_ns_per_byte` whenever a query actually
    /// touched persistent pages (`ExecutionMetrics::cold_pages_read > 0`),
    /// so persistent runs are charged for the I/O they truly did, including
    /// padding and page-granularity rounding the byte model cannot see.
    pub cold_page_read_ns: f64,
}

impl Default for IoModel {
    fn default() -> Self {
        // Calibrated to a commodity cluster: ~100 MB/s effective cold scan per
        // node, memory at ~10 GB/s, persistent synopsis store ~400 MB/s.
        Self {
            scan_ns_per_byte: 10.0,
            warehouse_ns_per_byte: 2.5,
            buffer_ns_per_byte: 0.1,
            materialize_ns_per_byte: 5.0,
            cpu_ns_per_row: 50.0,
            per_query_overhead_ns: 2_000_000.0,
            // One 4 KiB page at the warehouse byte rate: the two models agree
            // on a fully utilized page and diverge only on padding.
            cold_page_read_ns: 4096.0 * 2.5,
        }
    }
}

impl IoModel {
    /// Simulated cost (ns) of scanning `bytes` of base data.
    pub fn scan_cost(&self, bytes: usize) -> f64 {
        self.scan_ns_per_byte * bytes as f64
    }

    /// Simulated cost (ns) of reading `bytes` of a warehouse synopsis.
    pub fn warehouse_read_cost(&self, bytes: usize) -> f64 {
        self.warehouse_ns_per_byte * bytes as f64
    }

    /// Simulated cost (ns) of reading `bytes` of a buffered synopsis.
    pub fn buffer_read_cost(&self, bytes: usize) -> f64 {
        self.buffer_ns_per_byte * bytes as f64
    }

    /// Simulated cost (ns) of materializing `bytes` of synopsis data.
    pub fn materialize_cost(&self, bytes: usize) -> f64 {
        self.materialize_ns_per_byte * bytes as f64
    }

    /// Simulated CPU cost (ns) of pushing `rows` through one operator.
    pub fn cpu_cost(&self, rows: usize) -> f64 {
        self.cpu_ns_per_row * rows as f64
    }

    /// Cost (ns) of `pages` cold-tier page reads measured against the real
    /// pager (persistent mode only).
    pub fn cold_page_cost(&self, pages: u64) -> f64 {
        self.cold_page_read_ns * pages as f64
    }
}

/// Accumulated execution metrics for a query (or a whole workload), reported
/// by the physical operators and consumed by the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// Rows scanned from base tables.
    pub base_rows_scanned: usize,
    /// Bytes scanned from base tables.
    pub base_bytes_scanned: usize,
    /// Rows read from materialized synopses (warehouse tier).
    pub warehouse_rows_read: usize,
    /// Bytes read from materialized synopses (warehouse tier).
    pub warehouse_bytes_read: usize,
    /// Rows read from buffered (in-memory) synopses.
    pub buffer_rows_read: usize,
    /// Bytes read from buffered synopses.
    pub buffer_bytes_read: usize,
    /// Rows processed by operators above the leaves.
    pub operator_rows: usize,
    /// Bytes of synopses materialized as a byproduct of this query.
    pub bytes_materialized: usize,
    /// Base-table partitions actually scanned.
    pub partitions_scanned: usize,
    /// Base-table partitions skipped by zone-map pruning (their rows and
    /// bytes are *not* counted in `base_rows_scanned`/`base_bytes_scanned`).
    pub partitions_pruned: usize,
    /// Cold-tier pages actually read through the real pager (persistent mode
    /// only; zero for in-memory runs). When non-zero, `simulated_ns` charges
    /// the warehouse tier by pages instead of the simulated byte model.
    pub cold_pages_read: u64,
    /// Wall-clock time actually spent executing, in nanoseconds.
    pub wall_time_ns: u128,
}

impl ExecutionMetrics {
    /// Merge another metrics record into this one.
    pub fn merge(&mut self, other: &ExecutionMetrics) {
        self.base_rows_scanned += other.base_rows_scanned;
        self.base_bytes_scanned += other.base_bytes_scanned;
        self.warehouse_rows_read += other.warehouse_rows_read;
        self.warehouse_bytes_read += other.warehouse_bytes_read;
        self.buffer_rows_read += other.buffer_rows_read;
        self.buffer_bytes_read += other.buffer_bytes_read;
        self.operator_rows += other.operator_rows;
        self.bytes_materialized += other.bytes_materialized;
        self.partitions_scanned += other.partitions_scanned;
        self.partitions_pruned += other.partitions_pruned;
        self.cold_pages_read += other.cold_pages_read;
        self.wall_time_ns += other.wall_time_ns;
    }

    /// Convert the metrics into simulated execution time (ns) under a model.
    ///
    /// Materialization cost is *excluded* here because Taster performs it off
    /// the query's critical path (the buffer decouples it); harnesses that
    /// want to charge it (e.g. the BlinkDB offline phase) call
    /// [`IoModel::materialize_cost`] explicitly.
    ///
    /// When `cold_pages_read` is non-zero the warehouse tier is charged by
    /// the *measured* page count instead of the simulated byte model: the
    /// query demonstrably went to the persistent cold tier, and page-granular
    /// accounting (including padding) is strictly more faithful there.
    pub fn simulated_ns(&self, model: &IoModel) -> f64 {
        let warehouse = if self.cold_pages_read > 0 {
            model.cold_page_cost(self.cold_pages_read)
        } else {
            model.warehouse_read_cost(self.warehouse_bytes_read)
        };
        model.scan_cost(self.base_bytes_scanned)
            + warehouse
            + model.buffer_read_cost(self.buffer_bytes_read)
            + model.cpu_cost(self.operator_rows + self.base_rows_scanned)
            + model.per_query_overhead_ns
    }

    /// Simulated time in seconds.
    pub fn simulated_secs(&self, model: &IoModel) -> f64 {
        self.simulated_ns(model) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_orders_tiers_correctly() {
        let m = IoModel::default();
        assert!(m.scan_ns_per_byte > m.warehouse_ns_per_byte);
        assert!(m.warehouse_ns_per_byte > m.buffer_ns_per_byte);
    }

    #[test]
    fn simulated_time_scales_with_bytes() {
        let m = IoModel::default();
        let small = ExecutionMetrics {
            base_bytes_scanned: 1_000,
            base_rows_scanned: 10,
            ..Default::default()
        };
        let large = ExecutionMetrics {
            base_bytes_scanned: 1_000_000,
            base_rows_scanned: 10_000,
            ..Default::default()
        };
        assert!(large.simulated_ns(&m) > small.simulated_ns(&m));
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = ExecutionMetrics {
            base_rows_scanned: 1,
            base_bytes_scanned: 2,
            warehouse_rows_read: 3,
            warehouse_bytes_read: 4,
            buffer_rows_read: 5,
            buffer_bytes_read: 6,
            operator_rows: 7,
            bytes_materialized: 8,
            partitions_scanned: 9,
            partitions_pruned: 10,
            cold_pages_read: 11,
            wall_time_ns: 12,
        };
        a.merge(&a.clone());
        assert_eq!(a.base_rows_scanned, 2);
        assert_eq!(a.bytes_materialized, 16);
        assert_eq!(a.partitions_scanned, 18);
        assert_eq!(a.partitions_pruned, 20);
        assert_eq!(a.cold_pages_read, 22);
        assert_eq!(a.wall_time_ns, 24);
    }

    #[test]
    fn measured_pages_replace_simulated_warehouse_bytes() {
        let m = IoModel::default();
        let simulated = ExecutionMetrics {
            warehouse_bytes_read: 100_000,
            ..Default::default()
        };
        // Same bytes, but the pager measured 30 real page reads (padding
        // included): the page model must be charged, not the byte model.
        let measured = ExecutionMetrics {
            warehouse_bytes_read: 100_000,
            cold_pages_read: 30,
            ..Default::default()
        };
        let page_cost = m.cold_page_cost(30);
        assert_eq!(
            measured.simulated_ns(&m),
            m.per_query_overhead_ns + page_cost
        );
        assert_ne!(measured.simulated_ns(&m), simulated.simulated_ns(&m));
    }

    #[test]
    fn synopsis_read_is_cheaper_than_base_scan() {
        let m = IoModel::default();
        let scan = ExecutionMetrics {
            base_bytes_scanned: 1_000_000,
            base_rows_scanned: 10_000,
            ..Default::default()
        };
        let synopsis = ExecutionMetrics {
            buffer_bytes_read: 10_000,
            buffer_rows_read: 100,
            operator_rows: 100,
            ..Default::default()
        };
        assert!(scan.simulated_ns(&m) > 5.0 * synopsis.simulated_ns(&m));
    }
}
