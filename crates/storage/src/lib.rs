//! Columnar in-memory storage engine used as the substrate of the Taster
//! reproduction.
//!
//! The original system runs on Spark/HDFS; this crate provides the pieces of
//! that substrate Taster actually relies on:
//!
//! * typed, columnar [`RecordBatch`]es grouped into horizontally partitioned
//!   [`Table`]s (the partition count plays the role of the sampler
//!   *distribution factor* `D` from the paper),
//! * a process-wide [`Catalog`] of tables,
//! * per-table [`stats::TableStats`] (row counts, distinct counts, skew)
//!   computed lazily on first access, exactly as Taster computes statistics
//!   "on-the-fly during the first access to any table",
//! * a simulated I/O / cluster cost model ([`io_model::IoModel`]) so that the
//!   planner can cost plans and the benchmark harness can convert
//!   rows-scanned into simulated scan time, independent of the laptop the
//!   reproduction happens to run on,
//! * a durability substrate — a [`vfs`] abstraction with deterministic fault
//!   injection, a CRC-framed group-commit write-ahead log ([`wal`]), and a
//!   fixed-size page/blob store ([`pager`]) — that the engine layer composes
//!   into WAL-backed persistence and crash recovery.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod catalog;
pub mod codec;
pub mod column;
pub mod error;
pub mod index;
pub mod io_model;
pub mod mask;
pub mod pager;
pub mod partition;
pub mod row_key;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;
pub mod vfs;
pub mod wal;

pub use batch::RecordBatch;
pub use catalog::Catalog;
pub use codec::{ByteReader, ByteWriter};
pub use column::{ColumnData, Dictionary};
pub use error::StorageError;
pub use index::PartitionIndex;
pub use io_model::IoModel;
pub use mask::SelectionMask;
pub use pager::{BlobRef, Pager};
pub use row_key::{IntKeyMap, RowKeyMap, RowKeyTable, RowKeys};
pub use schema::{DataType, Field, Schema};
pub use table::{
    AppendSink, CompactReport, DeleteReport, Table, TableSnapshot, UpdateReport,
};
pub use value::Value;
pub use vfs::{FaultPlan, FaultVfs, MemVfs, StdVfs, Vfs, VfsFile};
pub use wal::{Wal, WalReplay};
