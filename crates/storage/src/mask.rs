//! Packed selection bitmasks (selection vectors).
//!
//! Predicates evaluate to a [`SelectionMask`] — one bit per row, packed into
//! `u64` words — instead of a `Vec<bool>`. Conjunction and disjunction become
//! word-wide bitwise operations, selectivity is a population count, and
//! filters materialize output batches directly from the set bits without an
//! intermediate boolean array.

/// A fixed-length bitmask selecting a subset of rows of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionMask {
    words: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    /// A mask of `len` rows, all selected.
    pub fn all(len: usize) -> Self {
        let full_words = len / 64;
        let rem = len % 64;
        let mut words = vec![u64::MAX; full_words];
        if rem > 0 {
            words.push((1u64 << rem) - 1);
        }
        Self { words, len }
    }

    /// A mask of `len` rows, none selected.
    pub fn none(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Rebuild a mask from its packed words (durability codec path). Bits
    /// beyond `len` in the last word are cleared so equality and counts stay
    /// well-defined; a word count that cannot cover `len` rows is rejected.
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Self, crate::error::StorageError> {
        if words.len() != len.div_ceil(64) {
            return Err(crate::error::StorageError::Corrupt(format!(
                "selection mask of {len} rows needs {} words, got {}",
                len.div_ceil(64),
                words.len()
            )));
        }
        let mut mask = Self { words, len };
        let rem = len % 64;
        if rem > 0 {
            if let Some(last) = mask.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        Ok(mask)
    }

    /// The packed words backing the mask (durability codec path).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Build from a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut mask = Self::none(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                mask.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        mask
    }

    /// Number of rows covered (selected or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Select row `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Deselect row `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether row `i` is selected.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of selected rows.
    pub fn count_selected(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no row is selected.
    pub fn is_none_selected(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if every row is selected.
    pub fn is_all_selected(&self) -> bool {
        self.count_selected() == self.len
    }

    /// In-place conjunction with another mask of the same length.
    pub fn and_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place `self AND NOT other` with a mask of the same length. This is
    /// the tombstone combinator: `other` marks deleted rows, and the result
    /// keeps only selected rows that are still live.
    pub fn and_not_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The complement of the mask: every unselected row becomes selected.
    /// For a tombstone mask this is the live-row mask.
    pub fn complement(&self) -> SelectionMask {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        let rem = self.len % 64;
        if rem > 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        SelectionMask {
            words,
            len: self.len,
        }
    }

    /// In-place disjunction with another mask of the same length.
    pub fn or_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Indices of the selected rows, ascending.
    pub fn selected_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_selected());
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                out.push(w * 64 + bit);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Iterate the selected row indices without materializing them.
    pub fn iter_selected(&self) -> SelectedIter<'_> {
        SelectedIter {
            mask: self,
            word_idx: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Widen to a boolean vector (compatibility with row-oriented callers).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

/// Iterator over selected indices of a [`SelectionMask`].
pub struct SelectedIter<'a> {
    mask: &'a SelectionMask,
    word_idx: usize,
    bits: u64,
}

impl Iterator for SelectedIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.mask.words.len() {
                return None;
            }
            self.bits = self.mask.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_none_and_counts() {
        for len in [0, 1, 63, 64, 65, 130] {
            let a = SelectionMask::all(len);
            assert_eq!(a.count_selected(), len, "len={len}");
            assert!(a.is_all_selected());
            let n = SelectionMask::none(len);
            assert_eq!(n.count_selected(), 0);
            assert!(n.is_none_selected());
        }
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut m = SelectionMask::none(130);
        for i in [0, 63, 64, 65, 129] {
            m.set(i);
        }
        assert_eq!(m.selected_indices(), vec![0, 63, 64, 65, 129]);
        assert_eq!(m.iter_selected().collect::<Vec<_>>(), vec![0, 63, 64, 65, 129]);
        assert!(m.get(64) && !m.get(1));
    }

    #[test]
    fn bitwise_combinators_match_boolean_logic() {
        let a = SelectionMask::from_bools(&[true, true, false, false]);
        let b = SelectionMask::from_bools(&[true, false, true, false]);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.to_bools(), vec![true, false, false, false]);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.to_bools(), vec![true, true, true, false]);
    }

    #[test]
    fn clear_and_not_and_complement() {
        let mut m = SelectionMask::all(130);
        m.clear(0);
        m.clear(129);
        assert!(!m.get(0) && !m.get(129) && m.get(64));
        assert_eq!(m.count_selected(), 128);

        let mut sel = SelectionMask::all(130);
        let mut tomb = SelectionMask::none(130);
        tomb.set(5);
        tomb.set(64);
        sel.and_not_with(&tomb);
        assert_eq!(sel.count_selected(), 128);
        assert!(!sel.get(5) && !sel.get(64) && sel.get(6));

        // Complement of the tombstone is the live mask; tail bits past `len`
        // never leak into counts.
        let live = tomb.complement();
        assert_eq!(live.count_selected(), 128);
        assert!(!live.get(5) && live.get(129));
        assert_eq!(live.complement(), tomb);
    }

    #[test]
    fn words_roundtrip_and_reject_bad_lengths() {
        let bools: Vec<bool> = (0..77).map(|i| i % 5 == 0).collect();
        let m = SelectionMask::from_bools(&bools);
        let back = SelectionMask::from_words(m.words().to_vec(), m.len()).unwrap();
        assert_eq!(back, m);
        assert!(SelectionMask::from_words(vec![0u64; 3], 77).is_err());
        // Stray bits beyond `len` are scrubbed on reconstruction.
        let scrubbed = SelectionMask::from_words(vec![u64::MAX, u64::MAX], 65).unwrap();
        assert_eq!(scrubbed.count_selected(), 65);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bools: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let m = SelectionMask::from_bools(&bools);
        assert_eq!(m.to_bools(), bools);
        assert_eq!(m.count_selected(), bools.iter().filter(|&&b| b).count());
    }
}
