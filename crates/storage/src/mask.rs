//! Packed selection bitmasks (selection vectors).
//!
//! Predicates evaluate to a [`SelectionMask`] — one bit per row, packed into
//! `u64` words — instead of a `Vec<bool>`. Conjunction and disjunction become
//! word-wide bitwise operations, selectivity is a population count, and
//! filters materialize output batches directly from the set bits without an
//! intermediate boolean array.

/// A fixed-length bitmask selecting a subset of rows of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionMask {
    words: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    /// A mask of `len` rows, all selected.
    pub fn all(len: usize) -> Self {
        let full_words = len / 64;
        let rem = len % 64;
        let mut words = vec![u64::MAX; full_words];
        if rem > 0 {
            words.push((1u64 << rem) - 1);
        }
        Self { words, len }
    }

    /// A mask of `len` rows, none selected.
    pub fn none(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut mask = Self::none(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                mask.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        mask
    }

    /// Number of rows covered (selected or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Select row `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether row `i` is selected.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of selected rows.
    pub fn count_selected(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no row is selected.
    pub fn is_none_selected(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if every row is selected.
    pub fn is_all_selected(&self) -> bool {
        self.count_selected() == self.len
    }

    /// In-place conjunction with another mask of the same length.
    pub fn and_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place disjunction with another mask of the same length.
    pub fn or_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Indices of the selected rows, ascending.
    pub fn selected_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_selected());
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                out.push(w * 64 + bit);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Iterate the selected row indices without materializing them.
    pub fn iter_selected(&self) -> SelectedIter<'_> {
        SelectedIter {
            mask: self,
            word_idx: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Widen to a boolean vector (compatibility with row-oriented callers).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

/// Iterator over selected indices of a [`SelectionMask`].
pub struct SelectedIter<'a> {
    mask: &'a SelectionMask,
    word_idx: usize,
    bits: u64,
}

impl Iterator for SelectedIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.mask.words.len() {
                return None;
            }
            self.bits = self.mask.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_none_and_counts() {
        for len in [0, 1, 63, 64, 65, 130] {
            let a = SelectionMask::all(len);
            assert_eq!(a.count_selected(), len, "len={len}");
            assert!(a.is_all_selected());
            let n = SelectionMask::none(len);
            assert_eq!(n.count_selected(), 0);
            assert!(n.is_none_selected());
        }
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut m = SelectionMask::none(130);
        for i in [0, 63, 64, 65, 129] {
            m.set(i);
        }
        assert_eq!(m.selected_indices(), vec![0, 63, 64, 65, 129]);
        assert_eq!(m.iter_selected().collect::<Vec<_>>(), vec![0, 63, 64, 65, 129]);
        assert!(m.get(64) && !m.get(1));
    }

    #[test]
    fn bitwise_combinators_match_boolean_logic() {
        let a = SelectionMask::from_bools(&[true, true, false, false]);
        let b = SelectionMask::from_bools(&[true, false, true, false]);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.to_bools(), vec![true, false, false, false]);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.to_bools(), vec![true, true, true, false]);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bools: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let m = SelectionMask::from_bools(&bools);
        assert_eq!(m.to_bools(), bools);
        assert_eq!(m.count_selected(), bools.iter().filter(|&&b| b).count());
    }
}
