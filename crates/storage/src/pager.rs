//! Fixed-size page store with a blob interface.
//!
//! The pager is the cold tier's physical layer: sealed partitions and
//! synopsis payloads are written as **blobs** — byte strings stored across a
//! run of contiguous fixed-size pages — and referenced by compact
//! [`BlobRef`]s that the WAL records inline. The protocol between the two is
//! write-ordered: a blob is fully written and synced *before* the WAL commit
//! that references it, so a crash can at worst leave unreferenced (garbage)
//! pages, never a referenced-but-torn blob.
//!
//! Page 0 is a header page carrying magic, format version and the page size;
//! allocation is append-only (the next free page is derived from the file
//! length, so no allocation metadata can be corrupted by a crash).
//!
//! Every blob read counts the pages it touched in a shared counter
//! ([`Pager::pages_read`]) — the real measurement the cost model's cold-tier
//! path is derived from when persistence is enabled (replacing the simulated
//! byte model used for in-memory runs).

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::codec::{ByteReader, ByteWriter};
use crate::error::StorageError;
use crate::vfs::{Vfs, VfsFile};

const MAGIC: &[u8; 8] = b"TASTRPG1";
/// Default page size: 4 KiB, the classic unit of torn-write atomicity.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Reference to a blob stored in the pager: its first page and exact byte
/// length. Encoded into WAL records (16 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobRef {
    /// First page of the blob's contiguous page run.
    pub first_page: u64,
    /// Exact blob length in bytes.
    pub len: u64,
}

impl BlobRef {
    /// Encode into a [`ByteWriter`].
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.first_page);
        w.put_u64(self.len);
    }

    /// Decode from a [`ByteReader`].
    pub fn decode(r: &mut ByteReader) -> Result<Self, StorageError> {
        Ok(Self {
            first_page: r.get_u64()?,
            len: r.get_u64()?,
        })
    }
}

struct PagerInner {
    file: Arc<dyn VfsFile>,
    /// Next page to allocate (append-only).
    next_page: u64,
}

/// A page store over one [`VfsFile`]. Cheap to share: writes serialize on an
/// internal lock, reads go straight to the (positional) file.
#[derive(Clone)]
pub struct Pager {
    inner: Arc<Mutex<PagerInner>>,
    file: Arc<dyn VfsFile>,
    page_size: usize,
    pages_read: Arc<AtomicU64>,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("page_size", &self.page_size)
            .field("pages_read", &self.pages_read.load(Ordering::Relaxed))
            .finish()
    }
}

impl Pager {
    /// Open (creating if absent) a page store at `path` with the default page
    /// size. An existing store's header is validated; its recorded page size
    /// wins over the default.
    pub fn open(vfs: &dyn Vfs, path: &Path) -> Result<Self, StorageError> {
        Self::open_with_page_size(vfs, path, DEFAULT_PAGE_SIZE)
    }

    /// Open with an explicit page size (used by tests exercising small
    /// pages; existing stores keep the size they were created with).
    pub fn open_with_page_size(
        vfs: &dyn Vfs,
        path: &Path,
        page_size: usize,
    ) -> Result<Self, StorageError> {
        let page_size = page_size.max(64);
        let file = vfs.open(path)?;
        let len = file.len()?;
        let page_size = if len == 0 {
            // Fresh store: write the header page.
            let mut header = ByteWriter::new();
            header.put_bytes(MAGIC);
            header.put_u32(page_size as u32);
            let mut page = header.into_bytes();
            page.resize(page_size, 0);
            file.write_at(0, &page)?;
            file.sync()?;
            page_size
        } else {
            // Existing store: validate the header and adopt its page size.
            let mut header = vec![0u8; 64.min(len as usize)];
            let read = file.read_at(0, &mut header)?;
            header.truncate(read);
            let mut r = ByteReader::new(&header);
            let magic = r.get_bytes()?;
            if magic != MAGIC {
                return Err(StorageError::Corrupt(
                    "page store header magic mismatch".to_string(),
                ));
            }
            let recorded = r.get_u32()? as usize;
            if recorded < 64 {
                return Err(StorageError::Corrupt(format!(
                    "page store header claims page size {recorded}"
                )));
            }
            recorded
        };
        let next_page = file.len()?.div_ceil(page_size as u64).max(1);
        Ok(Self {
            inner: Arc::new(Mutex::new(PagerInner {
                file: file.clone(),
                next_page,
            })),
            file,
            page_size,
            pages_read: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The store's page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages a blob of `len` bytes occupies.
    pub fn pages_for(&self, len: u64) -> u64 {
        len.div_ceil(self.page_size as u64).max(1)
    }

    /// Total pages read through [`read_blob`](Self::read_blob) since the
    /// pager was opened — the real cold-tier I/O measurement.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Write `data` as a new blob across freshly allocated contiguous pages.
    /// The blob is **not** synced; callers batch blob writes and call
    /// [`sync`](Self::sync) once before committing the WAL records that
    /// reference them.
    pub fn write_blob(&self, data: &[u8]) -> Result<BlobRef, StorageError> {
        let pages = self.pages_for(data.len() as u64);
        let mut inner = self.inner.lock();
        let first_page = inner.next_page;
        let offset = first_page * self.page_size as u64;
        // Pad to whole pages so the file length stays page-aligned and the
        // next allocation lands on a fresh page.
        let padded_len = (pages * self.page_size as u64) as usize;
        let mut padded = Vec::with_capacity(padded_len);
        padded.extend_from_slice(data);
        padded.resize(padded_len, 0);
        inner.file.write_at(offset, &padded)?;
        inner.next_page += pages;
        Ok(BlobRef {
            first_page,
            len: data.len() as u64,
        })
    }

    /// Read a blob back, counting the pages touched.
    pub fn read_blob(&self, blob: BlobRef) -> Result<Vec<u8>, StorageError> {
        let offset = blob.first_page * self.page_size as u64;
        let len = usize::try_from(blob.len)
            .map_err(|_| StorageError::Corrupt("blob length overflows usize".to_string()))?;
        let mut data = vec![0u8; len];
        let read = self.file.read_at(offset, &mut data)?;
        if read < len {
            return Err(StorageError::Corrupt(format!(
                "blob at page {} truncated: {read} of {len} bytes",
                blob.first_page
            )));
        }
        self.pages_read
            .fetch_add(self.pages_for(blob.len), Ordering::Relaxed);
        Ok(data)
    }

    /// Durably flush all written blobs.
    pub fn sync(&self) -> Result<(), StorageError> {
        self.file.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn pager(vfs: &MemVfs, page_size: usize) -> Pager {
        Pager::open_with_page_size(vfs, Path::new("pages"), page_size).unwrap()
    }

    #[test]
    fn blobs_round_trip_and_count_pages() {
        let vfs = MemVfs::new();
        let p = pager(&vfs, 128);
        let small = p.write_blob(b"tiny").unwrap();
        let big_data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let big = p.write_blob(&big_data).unwrap();
        p.sync().unwrap();

        assert_eq!(p.read_blob(small).unwrap(), b"tiny");
        assert_eq!(p.read_blob(big).unwrap(), big_data);
        // tiny = 1 page, big = ceil(1000/128) = 8 pages.
        assert_eq!(p.pages_read(), 9);
        assert_eq!(p.pages_for(big.len), 8);
    }

    #[test]
    fn blobs_never_share_pages() {
        let vfs = MemVfs::new();
        let p = pager(&vfs, 128);
        let a = p.write_blob(&[0xAA; 100]).unwrap();
        let b = p.write_blob(&[0xBB; 100]).unwrap();
        assert_ne!(a.first_page, b.first_page);
        assert_eq!(b.first_page, a.first_page + 1);
        assert_eq!(p.read_blob(a).unwrap(), vec![0xAA; 100]);
    }

    #[test]
    fn reopen_resumes_allocation_after_existing_blobs() {
        let vfs = MemVfs::new();
        let first = {
            let p = pager(&vfs, 128);
            let blob = p.write_blob(&[7u8; 300]).unwrap();
            p.sync().unwrap();
            blob
        };
        let p = Pager::open_with_page_size(&vfs, Path::new("pages"), 4096).unwrap();
        assert_eq!(p.page_size(), 128, "existing page size wins");
        let second = p.write_blob(&[9u8; 10]).unwrap();
        assert!(second.first_page > first.first_page + 2);
        assert_eq!(p.read_blob(first).unwrap(), vec![7u8; 300]);
        assert_eq!(p.read_blob(second).unwrap(), vec![9u8; 10]);
    }

    #[test]
    fn header_corruption_is_detected() {
        let vfs = MemVfs::new();
        let _ = pager(&vfs, 128);
        let mut bytes = vfs.contents(Path::new("pages"));
        bytes[5] ^= 0xFF; // clobber the magic
        vfs.set_contents(Path::new("pages"), bytes);
        let err = Pager::open_with_page_size(&vfs, Path::new("pages"), 128).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn truncated_blob_reads_are_corrupt_not_panics() {
        let vfs = MemVfs::new();
        let p = pager(&vfs, 128);
        let blob = p.write_blob(&[1u8; 200]).unwrap();
        // Chop the file mid-blob.
        let mut bytes = vfs.contents(Path::new("pages"));
        bytes.truncate(bytes.len() - 150);
        vfs.set_contents(Path::new("pages"), bytes);
        assert!(matches!(
            p.read_blob(blob),
            Err(StorageError::Corrupt(_))
        ));
    }
}
