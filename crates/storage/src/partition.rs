//! Horizontal partitioning helpers.
//!
//! The paper's samplers are *partitionable*: each Spark worker samples its own
//! partition and partial results are merged. We model that with a simple
//! round-robin/range split of a batch into `D` partitions (the *distribution
//! factor* in Section II of the paper).

use crate::batch::RecordBatch;

/// Split a batch into `parts` contiguous partitions of (almost) equal size.
///
/// The final partition absorbs any remainder. Requesting more partitions than
/// rows yields some empty partitions, which downstream operators treat as
/// empty inputs.
pub fn split_batch(batch: &RecordBatch, parts: usize) -> Vec<RecordBatch> {
    let parts = parts.max(1);
    let n = batch.num_rows();
    if n == 0 {
        return vec![batch.clone()];
    }
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut offset = 0;
    while offset < n {
        let len = chunk.min(n - offset);
        out.push(batch.slice(offset, len));
        offset += len;
    }
    out
}

/// Number of rows across a set of partitions.
pub fn total_rows(partitions: &[RecordBatch]) -> usize {
    partitions.iter().map(RecordBatch::num_rows).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchBuilder;

    fn batch(n: usize) -> RecordBatch {
        BatchBuilder::new()
            .column("id", (0..n as i64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn split_preserves_all_rows() {
        let b = batch(103);
        for parts in [1, 2, 3, 7, 11, 103, 200] {
            let ps = split_batch(&b, parts);
            assert_eq!(total_rows(&ps), 103, "parts={parts}");
        }
    }

    #[test]
    fn split_of_empty_batch_is_single_empty_partition() {
        let b = batch(0);
        let ps = split_batch(&b, 4);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].num_rows(), 0);
    }

    #[test]
    fn partitions_are_contiguous_and_ordered() {
        let b = batch(10);
        let ps = split_batch(&b, 3);
        let mut seen = Vec::new();
        for p in &ps {
            for i in 0..p.num_rows() {
                seen.push(p.row(i)[0].as_i64().unwrap());
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
