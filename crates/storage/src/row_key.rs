//! Compact row-encoded keys for hash joins and grouped aggregation.
//!
//! The row-at-a-time executor built a `Vec<Value>` per row to use as a hash
//! key — one heap allocation (plus one per string) for every tuple flowing
//! through a join build, join probe or group-by. This module replaces those
//! with a single byte buffer per batch: every row's key columns are encoded
//! back-to-back into one `Vec<u8>` with a per-row offset table, and hash
//! tables over the keys ([`RowKeyMap`], [`RowKeyTable`]) store integer offsets
//! into that buffer instead of owning keys. The samplers and sketches in
//! `taster-synopses` key their per-group state (SpaceSaving, count-min,
//! reservoirs) by the same encoding, so "group identity" means exactly one
//! thing everywhere in the system.
//!
//! The encoding is injective and *normalizing*: two keys encode to the same
//! bytes iff the corresponding `Vec<Value>` keys compare equal under
//! [`Value`]'s semantics. In particular `Int(2)` and `Float(2.0)` — which are
//! equal and hash identically — produce identical encodings, so mixed
//! int/float join keys behave exactly as they did with `Value` keys.

use crate::column::ColumnData;
use crate::value::Value;

/// Type tags; kept aligned with `Value::hash` so the normalization story is
/// identical in both places.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_FLOAT: u8 = 4;

/// Append one value's canonical encoding to `buf`.
#[inline]
fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(x) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float(x) => encode_f64(buf, *x),
        Value::Str(s) => encode_str(buf, s),
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Null => buf.push(TAG_NULL),
    }
}

/// Canonical key form of an `f64` under [`Value`] equality. Every key
/// encoding (byte keys here, composite string keys in `taster-synopses`)
/// derives its float handling from this one function so the normalization
/// rules cannot silently diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloatKey {
    /// Compares equal to this integer under `Value` semantics; key as an int.
    Int(i64),
    /// Fractional / out-of-range / -0.0; key by the raw IEEE bits.
    Bits(u64),
}

/// Normalize a float for keying: integral floats map to the Int form
/// (Int(2) == Float(2.0)). -0.0 is excluded: total_cmp orders it below 0.0,
/// so it must not merge with Int(0). The bounds and the saturating cast
/// deliberately mirror `Value::hash` — in particular Float(2^63) saturates
/// onto Int(i64::MAX), matching Value::total_cmp, which compares Int(a) to
/// floats through the lossy `a as f64` cast and therefore calls the two
/// equal.
#[inline]
pub fn float_key(x: f64) -> FloatKey {
    if x.fract() == 0.0
        && x >= i64::MIN as f64
        && x <= i64::MAX as f64
        && !(x == 0.0 && x.is_sign_negative())
    {
        FloatKey::Int(x as i64)
    } else {
        FloatKey::Bits(x.to_bits())
    }
}

#[inline]
fn encode_f64(buf: &mut Vec<u8>, x: f64) {
    match float_key(x) {
        FloatKey::Int(i) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        FloatKey::Bits(b) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&b.to_le_bytes());
        }
    }
}

#[inline]
fn encode_str(buf: &mut Vec<u8>, s: &str) {
    buf.push(TAG_STR);
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Offsets are stored as `u32` to halve the offset table; fail loudly rather
/// than wrap if a batch's keys ever exceed 4 GiB.
#[inline]
#[allow(clippy::expect_used)] // deliberate loud failure, not a recoverable error
fn checked_offset(len: usize) -> u32 {
    u32::try_from(len).expect("row-key buffer exceeded u32 offset range (4 GiB per batch)")
}

/// First 8 bytes of `bytes` as an array; caller guarantees `bytes.len() >= 8`
/// (always via `split_at(8)` / `chunks_exact(8)`).
#[inline]
fn word(bytes: &[u8]) -> [u8; 8] {
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[..8]);
    w
}

/// The encoded keys of every row of a batch: one flat byte buffer plus a
/// row-offset table. Buffers are reusable across batches via
/// [`RowKeys::clear`] + [`RowKeys::encode_columns`].
#[derive(Debug, Default, Clone)]
pub struct RowKeys {
    buf: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` is row i's key; length is `rows + 1`.
    offsets: Vec<u32>,
}

impl RowKeys {
    /// An empty, reusable key buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode the keys of `num_rows` rows drawn from `cols` (in order).
    pub fn encode_columns(cols: &[&ColumnData], num_rows: usize) -> Self {
        Self::encode_columns_range(cols, 0..num_rows)
    }

    /// Encode the keys of rows `range` drawn from `cols`. Local row `i` of
    /// the result corresponds to batch row `range.start + i` — the morsel
    /// aggregation path uses this to key a sub-range without slicing columns.
    pub fn encode_columns_range(cols: &[&ColumnData], range: std::ops::Range<usize>) -> Self {
        let mut keys = Self::new();
        keys.reencode_columns_range(cols, range);
        keys
    }

    /// Re-encode into this buffer, reusing its allocations.
    pub fn reencode_columns(&mut self, cols: &[&ColumnData], num_rows: usize) {
        self.reencode_columns_range(cols, 0..num_rows);
    }

    /// Range variant of [`RowKeys::reencode_columns`].
    pub fn reencode_columns_range(&mut self, cols: &[&ColumnData], range: std::ops::Range<usize>) {
        self.clear();
        // Fast path for the dominant group-by/join shape — a single Int64 key
        // column — where the generic per-row column dispatch is pure
        // overhead.
        if let [ColumnData::Int64(v)] = cols {
            self.buf.reserve(range.len() * 9);
            self.offsets.reserve(range.len() + 1);
            self.offsets.push(0);
            for row in range {
                self.buf.push(TAG_INT);
                self.buf.extend_from_slice(&v[row].to_le_bytes());
                self.offsets.push(checked_offset(self.buf.len()));
            }
            return;
        }
        // Dictionary columns must encode to exactly the canonical `TAG_STR`
        // bytes a raw string column produces: key identity is
        // representation-independent (each sealed partition has its own
        // dictionary, so codes can never leak into cross-partition keys).
        // Instead, each code's encoding is computed once per column here and
        // memcpy'd per row — full-string length/format work happens
        // `dict.len()` times, not `rows` times.
        let dict_caches: Vec<Option<(Vec<u8>, Vec<u32>)>> =
            if cols.iter().any(|c| c.is_dict_encoded()) {
                cols.iter()
                    .map(|col| match col {
                        ColumnData::Dict { dict, .. } => {
                            let mut bytes = Vec::new();
                            let mut offs = Vec::with_capacity(dict.len() + 1);
                            offs.push(0u32);
                            for s in dict.values() {
                                encode_str(&mut bytes, s);
                                offs.push(checked_offset(bytes.len()));
                            }
                            Some((bytes, offs))
                        }
                        _ => None,
                    })
                    .collect()
            } else {
                Vec::new()
            };
        // Reserve assuming fixed-width columns (9 bytes each); strings grow
        // the buffer as needed.
        self.buf.reserve(range.len() * cols.len() * 9);
        self.offsets.reserve(range.len() + 1);
        self.offsets.push(0);
        for row in range {
            for (ci, col) in cols.iter().enumerate() {
                match col {
                    ColumnData::Int64(v) => {
                        self.buf.push(TAG_INT);
                        self.buf.extend_from_slice(&v[row].to_le_bytes());
                    }
                    ColumnData::Float64(v) => encode_f64(&mut self.buf, v[row]),
                    ColumnData::Utf8(v) => encode_str(&mut self.buf, &v[row]),
                    ColumnData::Bool(v) => {
                        self.buf.push(TAG_BOOL);
                        self.buf.push(u8::from(v[row]));
                    }
                    ColumnData::Dict { codes, dict } => {
                        if let Some((bytes, offs)) =
                            dict_caches.get(ci).and_then(Option::as_ref)
                        {
                            let c = codes[row] as usize;
                            self.buf.extend_from_slice(
                                &bytes[offs[c] as usize..offs[c + 1] as usize],
                            );
                        } else {
                            encode_str(&mut self.buf, dict.get(codes[row]));
                        }
                    }
                }
            }
            self.offsets.push(checked_offset(self.buf.len()));
        }
    }

    /// Encode a single ad-hoc key (e.g. a probe key built from `Value`s).
    pub fn encode_values(values: &[Value]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(values.len() * 9);
        for v in values {
            encode_value(&mut buf, v);
        }
        buf
    }

    /// Forget all rows, keeping allocations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.offsets.clear();
    }

    /// Number of encoded rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The encoded key of row `i`.
    #[inline]
    pub fn key(&self, i: usize) -> &[u8] {
        &self.buf[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Decode an encoded key back into `Value`s (used to materialize group
    /// keys once per group, not once per row).
    pub fn decode(mut key: &[u8]) -> Vec<Value> {
        let mut out = Vec::new();
        while let Some((&tag, rest)) = key.split_first() {
            match tag {
                TAG_NULL => {
                    out.push(Value::Null);
                    key = rest;
                }
                TAG_BOOL => {
                    out.push(Value::Bool(rest[0] != 0));
                    key = &rest[1..];
                }
                TAG_INT => {
                    let (bytes, tail) = rest.split_at(8);
                    out.push(Value::Int(i64::from_le_bytes(word(bytes))));
                    key = tail;
                }
                TAG_FLOAT => {
                    let (bytes, tail) = rest.split_at(8);
                    out.push(Value::Float(f64::from_bits(u64::from_le_bytes(word(
                        bytes,
                    )))));
                    key = tail;
                }
                TAG_STR => {
                    let (len_bytes, tail) = rest.split_at(4);
                    let mut len = [0u8; 4];
                    len.copy_from_slice(len_bytes);
                    let len = u32::from_le_bytes(len) as usize;
                    let (s, tail) = tail.split_at(len);
                    out.push(Value::Str(String::from_utf8_lossy(s).into_owned()));
                    key = tail;
                }
                _ => unreachable!("corrupt row-key tag {tag}"),
            }
        }
        out
    }
}

/// Word-at-a-time multiply-mix hash over the key bytes. Keys here are short
/// (9 bytes per fixed-width column), so consuming 8-byte chunks instead of
/// single bytes matters; quality only needs to feed a power-of-two
/// open-addressed table.
#[inline]
pub fn hash_key(key: &[u8]) -> u64 {
    const K: u64 = 0x9e3779b97f4a7c15;
    let mut h: u64 = key.len() as u64 ^ K;
    let mut chunks = key.chunks_exact(8);
    for c in &mut chunks {
        let x = u64::from_le_bytes(word(c));
        h = (h ^ x).wrapping_mul(K);
        h ^= h >> 29;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut x = 0u64;
        for (i, &b) in rem.iter().enumerate() {
            x |= (b as u64) << (8 * i);
        }
        h = (h ^ x).wrapping_mul(K);
    }
    // Final avalanche so low bits (the table index) depend on every byte.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^ (h >> 33)
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Open-addressed map from encoded row keys to dense ids `0..n`, with zero
/// allocations per row: slots store the id plus a representative row index
/// whose bytes (in the backing [`RowKeys`]) are the canonical key.
#[derive(Debug)]
pub struct RowKeyMap {
    /// Slot -> dense id, or `EMPTY_SLOT`.
    slots: Vec<u32>,
    /// Dense id -> (hash, representative row).
    entries: Vec<(u64, u32)>,
    mask: usize,
}

impl RowKeyMap {
    /// A map pre-sized for roughly `expected` distinct keys.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        Self {
            slots: vec![EMPTY_SLOT; cap],
            entries: Vec::with_capacity(expected),
            mask: cap - 1,
        }
    }

    /// Number of distinct keys inserted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Representative row (into the backing `RowKeys`) for each dense id.
    pub fn representatives(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&(_, row)| row as usize)
    }

    /// Dense id for `keys.key(row)`, inserting a new id if unseen.
    #[inline]
    pub fn get_or_insert(&mut self, keys: &RowKeys, row: usize) -> u32 {
        let key = keys.key(row);
        let hash = hash_key(key);
        let mut slot = hash as usize & self.mask;
        loop {
            let id = self.slots[slot];
            if id == EMPTY_SLOT {
                let new_id = self.entries.len() as u32;
                self.slots[slot] = new_id;
                self.entries.push((hash, row as u32));
                if self.entries.len() * 2 > self.slots.len() {
                    self.grow(keys);
                }
                return new_id;
            }
            let (h, rep) = self.entries[id as usize];
            if h == hash && keys.key(rep as usize) == key {
                return id;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Dense id for an ad-hoc encoded key, if present.
    #[inline]
    pub fn get(&self, keys: &RowKeys, key: &[u8]) -> Option<u32> {
        let hash = hash_key(key);
        let mut slot = hash as usize & self.mask;
        loop {
            let id = self.slots[slot];
            if id == EMPTY_SLOT {
                return None;
            }
            let (h, rep) = self.entries[id as usize];
            if h == hash && keys.key(rep as usize) == key {
                return Some(id);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self, _keys: &RowKeys) {
        let cap = self.slots.len() * 2;
        self.mask = cap - 1;
        self.slots.clear();
        self.slots.resize(cap, EMPTY_SLOT);
        for (id, &(hash, _)) in self.entries.iter().enumerate() {
            let mut slot = hash as usize & self.mask;
            while self.slots[slot] != EMPTY_SLOT {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = id as u32;
        }
    }
}

/// Open-addressed map from raw `i64` keys to dense ids — the fast path for
/// the single-`Int64`-key group-by/join shape, skipping byte encoding
/// entirely. Equality semantics match the encoded path because an `Int64`
/// column can only ever produce `TAG_INT` encodings.
#[derive(Debug)]
pub struct IntKeyMap {
    /// Slot -> dense id, or `EMPTY_SLOT`.
    slots: Vec<u32>,
    /// Dense id -> key.
    entries: Vec<i64>,
    mask: usize,
}

#[inline]
fn mix_i64(x: i64) -> u64 {
    let mut h = x as u64 ^ 0x9e3779b97f4a7c15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^ (h >> 33)
}

impl IntKeyMap {
    /// A map pre-sized for roughly `expected` distinct keys.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        Self {
            slots: vec![EMPTY_SLOT; cap],
            entries: Vec::with_capacity(expected),
            mask: cap - 1,
        }
    }

    /// Number of distinct keys inserted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct keys, indexed by dense id.
    pub fn keys(&self) -> &[i64] {
        &self.entries
    }

    /// Dense id for `key`, inserting a new id if unseen.
    #[inline]
    pub fn get_or_insert(&mut self, key: i64) -> u32 {
        let mut slot = mix_i64(key) as usize & self.mask;
        loop {
            let id = self.slots[slot];
            if id == EMPTY_SLOT {
                let new_id = self.entries.len() as u32;
                self.slots[slot] = new_id;
                self.entries.push(key);
                if self.entries.len() * 2 > self.slots.len() {
                    self.grow();
                }
                return new_id;
            }
            if self.entries[id as usize] == key {
                return id;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.mask = cap - 1;
        self.slots.clear();
        self.slots.resize(cap, EMPTY_SLOT);
        for (id, &key) in self.entries.iter().enumerate() {
            let mut slot = mix_i64(key) as usize & self.mask;
            while self.slots[slot] != EMPTY_SLOT {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = id as u32;
        }
    }
}

/// A join build table: encoded build-side keys plus, per distinct key, the
/// chain of build rows carrying it. Probing allocates nothing.
#[derive(Debug)]
pub struct RowKeyTable {
    keys: RowKeys,
    map: RowKeyMap,
    /// Dense id -> first build row with that key, or `EMPTY_SLOT`.
    heads: Vec<u32>,
    /// Build row -> next build row with the same key, or `EMPTY_SLOT`.
    next: Vec<u32>,
}

impl RowKeyTable {
    /// Build from the key columns of the build side.
    pub fn build(cols: &[&ColumnData], num_rows: usize) -> Self {
        let keys = RowKeys::encode_columns(cols, num_rows);
        let mut map = RowKeyMap::with_capacity(num_rows.min(1 << 20));
        let mut heads: Vec<u32> = Vec::new();
        let mut next = vec![EMPTY_SLOT; num_rows];
        // Insert rows back-to-front so the O(1) chain prepend leaves every
        // chain in ascending build-row order — probes then yield matches in
        // the same order a sequential scan of the build side would.
        for row in (0..num_rows).rev() {
            let id = map.get_or_insert(&keys, row) as usize;
            if id == heads.len() {
                heads.push(row as u32);
            } else {
                next[row] = heads[id];
                heads[id] = row as u32;
            }
        }
        Self {
            keys,
            map,
            heads,
            next,
        }
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.heads.len()
    }

    /// Iterate the build rows matching the encoded probe key.
    #[inline]
    pub fn probe<'a>(&'a self, probe_keys: &RowKeys, probe_row: usize) -> MatchIter<'a> {
        let key = probe_keys.key(probe_row);
        let head = self
            .map
            .get(&self.keys, key)
            .map_or(EMPTY_SLOT, |id| self.heads[id as usize]);
        MatchIter { table: self, cur: head }
    }
}

/// Iterator over build rows matching one probe key.
pub struct MatchIter<'a> {
    table: &'a RowKeyTable,
    cur: u32,
}

impl Iterator for MatchIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.cur == EMPTY_SLOT {
            return None;
        }
        let row = self.cur as usize;
        self.cur = self.table.next[row];
        Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> (ColumnData, ColumnData) {
        (
            ColumnData::Int64(vec![1, 2, 1, 3, 2, 1]),
            ColumnData::Utf8(vec!["a", "b", "a", "c", "b", "a"].into_iter().map(String::from).collect()),
        )
    }

    #[test]
    fn encoding_matches_value_equality() {
        let ints = ColumnData::Int64(vec![2]);
        let floats = ColumnData::Float64(vec![2.0]);
        let ki = RowKeys::encode_columns(&[&ints], 1);
        let kf = RowKeys::encode_columns(&[&floats], 1);
        assert_eq!(ki.key(0), kf.key(0), "Int(2) and Float(2.0) must encode equal");
        let frac = RowKeys::encode_columns(&[&ColumnData::Float64(vec![2.5])], 1);
        assert_ne!(ki.key(0), frac.key(0));
    }

    #[test]
    fn float_edge_cases_stay_distinct() {
        // -0.0 orders below 0.0 under total_cmp, so it must not share an
        // encoding with Int(0)/Float(0.0).
        let k = RowKeys::encode_columns(&[&ColumnData::Float64(vec![0.0, -0.0])], 2);
        assert_ne!(k.key(0), k.key(1));
        let zero_int = RowKeys::encode_columns(&[&ColumnData::Int64(vec![0])], 1);
        assert_eq!(k.key(0), zero_int.key(0));
        // Float(2^63) compares Equal to Int(i64::MAX) under Value::total_cmp
        // (the Int side is cast through f64), so the encodings must merge,
        // exactly as the old HashMap<Vec<Value>> keys did.
        let big = RowKeys::encode_columns(
            &[&ColumnData::Float64(vec![9_223_372_036_854_775_808.0])],
            1,
        );
        let max_int = RowKeys::encode_columns(&[&ColumnData::Int64(vec![i64::MAX])], 1);
        assert_eq!(
            Value::Int(i64::MAX),
            Value::Float(9_223_372_036_854_775_808.0),
            "premise: Value equality is lossy at 2^63"
        );
        assert_eq!(big.key(0), max_int.key(0));
        // i64::MIN as f64 is exact and representable, so it does normalize.
        let min_f = RowKeys::encode_columns(&[&ColumnData::Float64(vec![i64::MIN as f64])], 1);
        let min_i = RowKeys::encode_columns(&[&ColumnData::Int64(vec![i64::MIN])], 1);
        assert_eq!(min_f.key(0), min_i.key(0));
    }

    #[test]
    fn dict_columns_encode_identically_to_utf8() {
        let strings = ["pear", "apple", "", "pear", "quince", "apple"];
        let raw = ColumnData::Utf8(strings.iter().map(|s| s.to_string()).collect());
        let dict = raw.dict_encode();
        assert!(dict.is_dict_encoded());
        let kr = RowKeys::encode_columns(&[&raw], strings.len());
        let kd = RowKeys::encode_columns(&[&dict], strings.len());
        for row in 0..strings.len() {
            assert_eq!(kr.key(row), kd.key(row), "row {row}");
        }
        // Mixed key columns (dict + int) stay canonical too.
        let ids = ColumnData::Int64(vec![1, 2, 3, 4, 5, 6]);
        let mr = RowKeys::encode_columns(&[&raw, &ids], strings.len());
        let md = RowKeys::encode_columns(&[&dict, &ids], strings.len());
        for row in 0..strings.len() {
            assert_eq!(mr.key(row), md.key(row), "row {row}");
        }
    }

    #[test]
    fn string_lengths_are_delimited() {
        let a = RowKeys::encode_values(&[Value::Str("ab".into()), Value::Str("c".into())]);
        let b = RowKeys::encode_values(&[Value::Str("a".into()), Value::Str("bc".into())]);
        assert_ne!(a, b);
    }

    #[test]
    fn decode_roundtrips() {
        let vals = vec![
            Value::Int(-5),
            Value::Str("hello".into()),
            Value::Bool(true),
            Value::Float(2.25),
            Value::Null,
        ];
        let enc = RowKeys::encode_values(&vals);
        assert_eq!(RowKeys::decode(&enc), vals);
    }

    #[test]
    fn group_ids_are_dense_and_consistent() {
        let (a, b) = cols();
        let keys = RowKeys::encode_columns(&[&a, &b], 6);
        let mut map = RowKeyMap::with_capacity(4);
        let ids: Vec<u32> = (0..6).map(|r| map.get_or_insert(&keys, r)).collect();
        assert_eq!(ids, vec![0, 1, 0, 2, 1, 0]);
        assert_eq!(map.len(), 3);
        let reps: Vec<usize> = map.representatives().collect();
        assert_eq!(reps, vec![0, 1, 3]);
    }

    #[test]
    fn map_survives_growth() {
        let col = ColumnData::Int64((0..10_000).collect());
        let keys = RowKeys::encode_columns(&[&col], 10_000);
        let mut map = RowKeyMap::with_capacity(8);
        for r in 0..10_000 {
            assert_eq!(map.get_or_insert(&keys, r), r as u32);
        }
        for r in 0..10_000 {
            assert_eq!(map.get_or_insert(&keys, r), r as u32, "lookup after growth");
        }
    }

    #[test]
    fn int_key_map_matches_generic_map() {
        let vals: Vec<i64> = (0..5_000).map(|i| (i * 37) % 100 - 50).collect();
        let col = ColumnData::Int64(vals.clone());
        let keys = RowKeys::encode_columns(&[&col], vals.len());
        let mut generic = RowKeyMap::with_capacity(8);
        let mut fast = IntKeyMap::with_capacity(8);
        for (r, &v) in vals.iter().enumerate() {
            assert_eq!(generic.get_or_insert(&keys, r), fast.get_or_insert(v));
        }
        assert_eq!(generic.len(), fast.len());
        assert_eq!(fast.keys().len(), fast.len());
    }

    #[test]
    fn join_table_probe_finds_all_matches() {
        let build = ColumnData::Int64(vec![1, 2, 1, 3, 1]);
        let table = RowKeyTable::build(&[&build], 5);
        assert_eq!(table.num_keys(), 3);
        let probe = RowKeys::encode_columns(&[&ColumnData::Int64(vec![1, 4])], 2);
        let matches: Vec<usize> = table.probe(&probe, 0).collect();
        assert_eq!(matches, vec![0, 2, 4], "chains stay in build-row order");
        assert_eq!(table.probe(&probe, 1).count(), 0);
    }
}
