//! Schemas describing the layout of tables and record batches.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::StorageError;

/// Primitive column types supported by the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Boolean.
    Bool,
}

impl DataType {
    /// `true` for Int64/Float64.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// Width in bytes used by the cost model; strings use an assumed average
    /// width because the model predates seeing the data.
    pub fn estimated_width(self) -> usize {
        match self {
            DataType::Int64 | DataType::Float64 => 8,
            DataType::Utf8 => 24,
            DataType::Bool => 1,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Utf8 => "UTF8",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// One named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of fields describing a batch or table.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle; batches of the same table share one allocation.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Create a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Empty schema (zero columns).
    pub fn empty() -> Self {
        Self { fields: vec![] }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize, StorageError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::ColumnNotFound(name.to_string()))
    }

    /// The field with the given name.
    pub fn field_by_name(&self, name: &str) -> Result<&Field, StorageError> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// The field at the given position.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// `true` if a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// All column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A new schema keeping only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, StorageError> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            fields.push(self.field_by_name(name)?.clone());
        }
        Ok(Schema::new(fields))
    }

    /// A new schema with `field` appended (e.g. the sampler weight column).
    pub fn with_field(&self, field: Field) -> Schema {
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema::new(fields)
    }

    /// Estimated row width in bytes, used by the cost model.
    pub fn estimated_row_width(&self) -> usize {
        self.fields
            .iter()
            .map(|f| f.data_type.estimated_width())
            .sum::<usize>()
            .max(1)
    }

    /// Merge two schemas (used when joining), prefixing duplicated names with
    /// the side marker so joined outputs stay unambiguous.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in right.fields() {
            if self.contains(&f.name) {
                fields.push(Field::new(format!("right.{}", f.name), f.data_type));
            } else {
                fields.push(f.clone());
            }
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .fields
            .iter()
            .map(|fl| format!("{}:{}", fl.name, fl.data_type))
            .collect();
        write!(f, "[{}]", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
            Field::new("c", DataType::Utf8),
        ])
    }

    #[test]
    fn index_and_lookup() {
        let s = schema();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("zzz").is_err());
        assert!(s.contains("c"));
        assert_eq!(s.len(), 3);
        assert_eq!(s.column_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn projection_preserves_order_of_request() {
        let s = schema();
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.column_names(), vec!["c", "a"]);
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn join_disambiguates_duplicates() {
        let s = schema();
        let j = s.join(&schema());
        assert_eq!(j.len(), 6);
        assert!(j.contains("right.a"));
    }

    #[test]
    fn row_width_is_positive() {
        assert!(schema().estimated_row_width() >= 8 + 8 + 24);
        assert_eq!(Schema::empty().estimated_row_width(), 1);
    }
}
