//! Table and column statistics.
//!
//! Taster stores "statistics of the dataset (distribution of values, number
//! of distinct values), which are calculated on-the-fly during the first
//! access to any table" (Section III). The planner uses these to pick between
//! uniform and distinct samplers, to derive sampling probabilities, and to
//! decide whether a predicate column is skewed enough to require
//! stratification.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::batch::RecordBatch;
use crate::column::ColumnData;
use crate::value::Value;

/// Per-column statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Number of distinct values observed.
    pub distinct_count: usize,
    /// Minimum value (None for empty columns).
    pub min: Option<Value>,
    /// Maximum value (None for empty columns).
    pub max: Option<Value>,
    /// Frequency of the most common value.
    pub max_frequency: usize,
    /// Frequency of the least common value.
    pub min_frequency: usize,
    /// Mean of the column if numeric.
    pub mean: Option<f64>,
    /// Population variance of the column if numeric.
    pub variance: Option<f64>,
}

impl ColumnStats {
    /// Skew ratio between the most and least frequent value.
    ///
    /// A ratio near 1 means the value distribution is (close to) uniform; the
    /// planner treats columns above [`TableStats::SKEW_THRESHOLD`] as skewed
    /// and adds them to the stratification set when pushing a synopsis below
    /// a filter on them (Section IV-A).
    pub fn skew_ratio(&self) -> f64 {
        if self.min_frequency == 0 {
            return f64::INFINITY;
        }
        self.max_frequency as f64 / self.min_frequency as f64
    }

    /// Coefficient of variation (stddev / |mean|) for numeric columns, used by
    /// the planner to size samples for a relative-error target.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        let mean = self.mean?;
        let var = self.variance?;
        if mean.abs() < f64::EPSILON {
            return None;
        }
        Some(var.sqrt() / mean.abs())
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    /// Total row count.
    pub row_count: usize,
    /// Total size in bytes (approximate, in-memory).
    pub size_bytes: usize,
    /// Column statistics keyed by column name.
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Columns whose max/min frequency ratio exceeds this are considered
    /// skewed for the purposes of stratification decisions.
    pub const SKEW_THRESHOLD: f64 = 4.0;

    /// Compute statistics over a set of partitions (one streaming pass).
    pub fn compute(partitions: &[RecordBatch]) -> TableStats {
        let mut builder = TableStatsBuilder::new();
        for batch in partitions {
            builder.update(batch);
        }
        builder.snapshot()
    }

    /// Statistics for one column, if present.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Number of distinct values in a column (0 when unknown).
    pub fn distinct_count(&self, name: &str) -> usize {
        self.column(name).map_or(0, |c| c.distinct_count)
    }

    /// `true` if the column's value distribution is skewed.
    pub fn is_skewed(&self, name: &str) -> bool {
        self.column(name)
            .is_some_and(|c| c.skew_ratio() > Self::SKEW_THRESHOLD)
    }

    /// Number of distinct combinations across a set of columns, approximated
    /// by the product of per-column distinct counts capped by the row count.
    pub fn distinct_combinations(&self, names: &[String]) -> usize {
        if names.is_empty() {
            return 1;
        }
        let mut product: u128 = 1;
        for name in names {
            let d = self.distinct_count(name).max(1) as u128;
            product = product.saturating_mul(d);
        }
        product.min(self.row_count.max(1) as u128) as usize
    }
}

/// Min/max zone for one column of one partition.
///
/// Zone maps are the pruning metadata of `exec_scan`: a partition whose
/// `[min, max]` interval cannot satisfy a conjunct of the scan filter is
/// skipped without touching its rows. Bounds use [`Value::total_cmp`]
/// ordering, the same ordering predicates evaluate with, so pruning can never
/// disagree with the filter itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnZone {
    /// Smallest value in the partition.
    pub min: Value,
    /// Largest value in the partition.
    pub max: Value,
    /// For dictionary-encoded string columns, the `[min, max]` *code* range
    /// backing the string bounds (`min`/`max` are those codes decoded).
    /// Because the dictionary is order-preserving, an executor holding the
    /// partition's dictionary can bound-check a literal's code against this
    /// range without touching strings. `None` for raw columns and for zones
    /// widened across appends (only the unsealed Utf8 tail ever widens, so
    /// sealed dict partitions keep their range).
    pub code_range: Option<(u32, u32)>,
}

impl ColumnZone {
    fn of(col: &ColumnData) -> Option<ColumnZone> {
        if col.is_empty() {
            return None;
        }
        let mut code_range = None;
        // Typed min/max loops; no Value widening per row.
        let (min, max) = match col {
            ColumnData::Int64(v) => {
                let min = *v.iter().min()?;
                let max = *v.iter().max()?;
                (Value::Int(min), Value::Int(max))
            }
            ColumnData::Float64(v) => {
                let mut min = v[0];
                let mut max = v[0];
                for &x in &v[1..] {
                    if x.total_cmp(&min).is_lt() {
                        min = x;
                    }
                    if x.total_cmp(&max).is_gt() {
                        max = x;
                    }
                }
                (Value::Float(min), Value::Float(max))
            }
            ColumnData::Utf8(v) => {
                let min = v.iter().min()?.clone();
                let max = v.iter().max()?.clone();
                (Value::Str(min), Value::Str(max))
            }
            ColumnData::Dict { codes, dict } => {
                // Code order == string order, so min/max over the dense u32
                // codes decode straight into the string bounds.
                let lo = *codes.iter().min()?;
                let hi = *codes.iter().max()?;
                code_range = Some((lo, hi));
                (
                    Value::Str(dict.get(lo).to_string()),
                    Value::Str(dict.get(hi).to_string()),
                )
            }
            ColumnData::Bool(v) => {
                let any_true = v.iter().any(|&b| b);
                let any_false = v.iter().any(|&b| !b);
                (Value::Bool(!any_false), Value::Bool(any_true))
            }
        };
        Some(ColumnZone {
            min,
            max,
            code_range,
        })
    }

    /// `true` if `value` lies within `[min, max]`.
    pub fn contains(&self, value: &Value) -> bool {
        self.min.total_cmp(value).is_le() && self.max.total_cmp(value).is_ge()
    }

    /// Widen this zone so it also covers `other` (append path: the zone of a
    /// grown partition is the union of the old zone and the appended slice's
    /// zone — no rescan of the existing rows).
    pub fn widen(&mut self, other: &ColumnZone) {
        if other.min.total_cmp(&self.min).is_lt() {
            self.min = other.min.clone();
        }
        if other.max.total_cmp(&self.max).is_gt() {
            self.max = other.max.clone();
        }
        // Code ranges union only when both sides carry one: two zones of the
        // same partition's slices share its order-preserving dictionary, so
        // their code intervals are comparable (the compaction re-seal path
        // widens such sibling slices). A raw side (unsealed Utf8 tail) has no
        // codes, so the union degrades to `None` — permanently disabling
        // code pruning used to happen even for dict-vs-dict widening.
        self.code_range = match (self.code_range, other.code_range) {
            (Some((alo, ahi)), Some((blo, bhi))) => Some((alo.min(blo), ahi.max(bhi))),
            _ => None,
        };
    }
}

/// Zone maps for one partition: per-column min/max plus the row count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionZones {
    /// Rows in the partition.
    pub num_rows: usize,
    /// Zones keyed by column name (absent for empty partitions).
    pub columns: HashMap<String, ColumnZone>,
}

impl PartitionZones {
    /// Compute zones for one partition in a single typed pass per column.
    pub fn compute(batch: &RecordBatch) -> PartitionZones {
        let mut columns = HashMap::with_capacity(batch.num_columns());
        for (field, col) in batch.schema().fields().iter().zip(batch.columns()) {
            if let Some(zone) = ColumnZone::of(col) {
                columns.insert(field.name.clone(), zone);
            }
        }
        PartitionZones {
            num_rows: batch.num_rows(),
            columns,
        }
    }

    /// The zone for a column, if the partition has rows in it.
    pub fn column(&self, name: &str) -> Option<&ColumnZone> {
        self.columns.get(name)
    }

    /// Extend these zones with the zones of a slice appended to the same
    /// partition: per-column bounds widen, the row count grows. An empty
    /// partition (no column zones) adopts the slice's zones wholesale.
    pub fn extend_with(&mut self, appended: &PartitionZones) {
        self.num_rows += appended.num_rows;
        for (name, zone) in &appended.columns {
            match self.columns.get_mut(name) {
                Some(existing) => existing.widen(zone),
                None => {
                    self.columns.insert(name.clone(), zone.clone());
                }
            }
        }
    }
}

/// Streaming accumulator behind [`TableStats`]: retains the per-column
/// frequency maps and moment sums so statistics can be **extended** with new
/// rows instead of recomputed from scratch — the ingestion path feeds every
/// appended batch through the table's resident builder
/// (see [`crate::table::Table::stats`]).
#[derive(Debug, Default)]
pub struct TableStatsBuilder {
    row_count: usize,
    size_bytes: usize,
    per_column: HashMap<String, ColumnAccumulator>,
}

impl TableStatsBuilder {
    /// An empty builder (zero rows seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one batch into the statistics.
    pub fn update(&mut self, batch: &RecordBatch) {
        self.row_count += batch.num_rows();
        self.size_bytes += batch.size_bytes();
        for (field, col) in batch.schema().fields().iter().zip(batch.columns()) {
            let acc = self
                .per_column
                .entry(field.name.clone())
                .or_insert_with(|| ColumnAccumulator::new(field.name.clone()));
            acc.update(col);
        }
    }

    /// Total rows folded in so far — the resume point for incremental
    /// catch-up after appends.
    pub fn rows_seen(&self) -> usize {
        self.row_count
    }

    /// Materialize the current statistics without consuming the builder, so
    /// further batches can still be folded in later.
    pub fn snapshot(&self) -> TableStats {
        let columns = self
            .per_column
            .iter()
            .map(|(name, acc)| (name.clone(), acc.stats()))
            .collect();
        TableStats {
            row_count: self.row_count,
            size_bytes: self.size_bytes,
            columns,
        }
    }
}

#[derive(Debug)]
struct ColumnAccumulator {
    name: String,
    frequencies: HashMap<Value, usize>,
    min: Option<Value>,
    max: Option<Value>,
    count: usize,
    sum: f64,
    sum_sq: f64,
    numeric: bool,
}

impl ColumnAccumulator {
    fn new(name: String) -> Self {
        Self {
            name,
            frequencies: HashMap::new(),
            min: None,
            max: None,
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            numeric: true,
        }
    }

    fn update(&mut self, col: &ColumnData) {
        // Dictionary fast path: histogram the dense codes, then fold each
        // *distinct* value in exactly once — no per-row `Value`
        // materialization, no per-row hash-map probe.
        if let ColumnData::Dict { codes, dict } = col {
            if codes.is_empty() {
                return;
            }
            self.count += codes.len();
            self.numeric = false;
            let mut counts = vec![0usize; dict.len()];
            for &c in codes {
                counts[c as usize] += 1;
            }
            for (code, &n) in counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let v = Value::Str(dict.get(code as u32).to_string());
                match &self.min {
                    Some(m) if v >= *m => {}
                    _ => self.min = Some(v.clone()),
                }
                match &self.max {
                    Some(m) if v <= *m => {}
                    _ => self.max = Some(v.clone()),
                }
                *self.frequencies.entry(v).or_insert(0) += n;
            }
            return;
        }
        for i in 0..col.len() {
            let v = col.value(i);
            match (v.as_f64(), v.is_null()) {
                (Some(x), _) => {
                    self.sum += x;
                    self.sum_sq += x * x;
                }
                (None, false) => self.numeric = false,
                _ => {}
            }
            self.count += 1;
            match &self.min {
                Some(m) if v >= *m => {}
                _ => self.min = Some(v.clone()),
            }
            match &self.max {
                Some(m) if v <= *m => {}
                _ => self.max = Some(v.clone()),
            }
            *self.frequencies.entry(v).or_insert(0) += 1;
        }
    }

    fn stats(&self) -> ColumnStats {
        let max_frequency = self.frequencies.values().copied().max().unwrap_or(0);
        let min_frequency = self.frequencies.values().copied().min().unwrap_or(0);
        let (mean, variance) = if self.numeric && self.count > 0 {
            let mean = self.sum / self.count as f64;
            let var = (self.sum_sq / self.count as f64 - mean * mean).max(0.0);
            (Some(mean), Some(var))
        } else {
            (None, None)
        };
        ColumnStats {
            name: self.name.clone(),
            distinct_count: self.frequencies.len(),
            min: self.min.clone(),
            max: self.max.clone(),
            max_frequency,
            min_frequency,
            mean,
            variance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchBuilder;

    fn sample_batch() -> RecordBatch {
        BatchBuilder::new()
            .column("k", vec![1i64, 1, 1, 1, 2, 3])
            .column("v", vec![10.0f64, 10.0, 10.0, 10.0, 20.0, 30.0])
            .column("s", vec!["a", "a", "b", "b", "b", "c"])
            .build()
            .unwrap()
    }

    #[test]
    fn distinct_counts_and_minmax() {
        let stats = TableStats::compute(&[sample_batch()]);
        assert_eq!(stats.row_count, 6);
        assert_eq!(stats.distinct_count("k"), 3);
        assert_eq!(stats.distinct_count("s"), 3);
        let k = stats.column("k").unwrap();
        assert_eq!(k.min, Some(Value::Int(1)));
        assert_eq!(k.max, Some(Value::Int(3)));
    }

    #[test]
    fn skew_detection() {
        let stats = TableStats::compute(&[sample_batch()]);
        // k: frequencies 4/1/1 => ratio 4, not strictly greater than threshold
        assert!(!stats.is_skewed("k"));
        let skewed = BatchBuilder::new()
            .column("k", vec![1i64; 50].into_iter().chain(vec![2i64]).collect::<Vec<_>>())
            .build()
            .unwrap();
        let stats = TableStats::compute(&[skewed]);
        assert!(stats.is_skewed("k"));
    }

    #[test]
    fn numeric_moments() {
        let stats = TableStats::compute(&[sample_batch()]);
        let v = stats.column("v").unwrap();
        assert!((v.mean.unwrap() - 15.0).abs() < 1e-9);
        assert!(v.variance.unwrap() > 0.0);
        assert!(v.coefficient_of_variation().unwrap() > 0.0);
        assert!(stats.column("s").unwrap().mean.is_none());
    }

    #[test]
    fn distinct_combinations_is_capped_by_rows() {
        let stats = TableStats::compute(&[sample_batch()]);
        let combos = stats.distinct_combinations(&["k".to_string(), "s".to_string()]);
        assert!(combos <= stats.row_count);
        assert_eq!(stats.distinct_combinations(&[]), 1);
    }

    #[test]
    fn zone_maps_cover_every_typed_column() {
        let z = PartitionZones::compute(&sample_batch());
        assert_eq!(z.num_rows, 6);
        assert_eq!(z.column("k").unwrap().min, Value::Int(1));
        assert_eq!(z.column("k").unwrap().max, Value::Int(3));
        assert_eq!(z.column("v").unwrap().max, Value::Float(30.0));
        assert_eq!(z.column("s").unwrap().min, Value::Str("a".into()));
        assert!(z.column("k").unwrap().contains(&Value::Int(2)));
        assert!(!z.column("k").unwrap().contains(&Value::Int(4)));
        assert!(z.column("missing").is_none());
    }

    #[test]
    fn dict_zones_carry_code_ranges_and_match_raw_bounds() {
        let raw = PartitionZones::compute(&sample_batch());
        let enc = PartitionZones::compute(&sample_batch().dict_encode_strings());
        let (r, e) = (raw.column("s").unwrap(), enc.column("s").unwrap());
        assert_eq!((&e.min, &e.max), (&r.min, &r.max));
        assert_eq!(e.code_range, Some((0, 2)), "dict {{a,b,c}} spans codes 0..=2");
        assert!(r.code_range.is_none(), "raw strings have no codes");
        assert!(enc.column("k").unwrap().code_range.is_none());
        // Widening with a raw (code-less) zone drops the code range: the raw
        // side has no dictionary to compare codes against.
        let mut widened = e.clone();
        widened.widen(r);
        assert!(widened.code_range.is_none());
        assert_eq!(widened.min, e.min);
    }

    /// Two zones over slices of the same dict-encoded partition share its
    /// dictionary, so widening must union their code ranges instead of
    /// dropping them (the compaction re-seal path hits this for every sealed
    /// string partition).
    #[test]
    fn widening_dict_siblings_unions_code_ranges() {
        let enc = sample_batch().dict_encode_strings();
        let lo = PartitionZones::compute(&enc.slice(0, 2)); // "a","a" -> code 0
        let hi = PartitionZones::compute(&enc.slice(2, 4)); // "b".."c" -> codes 1..=2
        let (zl, zh) = (lo.column("s").unwrap(), hi.column("s").unwrap());
        assert_eq!(zl.code_range, Some((0, 0)));
        assert_eq!(zh.code_range, Some((1, 2)));
        let mut widened = zl.clone();
        widened.widen(zh);
        assert_eq!(widened.code_range, Some((0, 2)));
        assert_eq!(widened.min, Value::Str("a".into()));
        assert_eq!(widened.max, Value::Str("c".into()));
        // Union is symmetric.
        let mut other = zh.clone();
        other.widen(zl);
        assert_eq!(other.code_range, Some((0, 2)));
    }

    #[test]
    fn stats_over_encoded_batch_match_raw() {
        let raw = TableStats::compute(&[sample_batch()]);
        let enc = TableStats::compute(&[sample_batch().dict_encode_strings()]);
        assert_eq!(enc.row_count, raw.row_count);
        assert_eq!(enc.distinct_count("s"), raw.distinct_count("s"));
        let (r, e) = (raw.column("s").unwrap(), enc.column("s").unwrap());
        assert_eq!(e.min, r.min);
        assert_eq!(e.max, r.max);
        assert_eq!(e.max_frequency, r.max_frequency);
        assert_eq!(e.min_frequency, r.min_frequency);
        assert!(e.mean.is_none());
    }

    #[test]
    fn distinct_combinations_saturates_instead_of_wrapping() {
        let mut stats = TableStats::compute(&[sample_batch()]);
        stats.row_count = usize::MAX;
        let names: Vec<String> = (0..5).map(|i| format!("wide{i}")).collect();
        for name in &names {
            let mut c = stats.column("s").unwrap().clone();
            c.name = name.clone();
            c.distinct_count = usize::MAX / 2;
            stats.columns.insert(name.clone(), c);
        }
        // Five ~2^63 factors overflow even u128; saturating arithmetic must
        // land on the row-count cap, never wrap to a tiny cardinality.
        assert_eq!(stats.distinct_combinations(&names), usize::MAX);
    }

    #[test]
    fn zone_maps_of_empty_partition_have_no_columns() {
        let b = sample_batch();
        let empty = b.filter(&[false; 6]);
        let z = PartitionZones::compute(&empty);
        assert_eq!(z.num_rows, 0);
        assert!(z.columns.is_empty());
    }

    #[test]
    fn incremental_builder_matches_batch_recompute() {
        let b = sample_batch();
        let parts = crate::partition::split_batch(&b, 3);
        let mut builder = TableStatsBuilder::new();
        builder.update(&parts[0]);
        let partial = builder.snapshot();
        assert_eq!(partial.row_count, parts[0].num_rows());
        // Folding in the remaining partitions must land exactly on the
        // from-scratch statistics — snapshot() does not consume the builder.
        builder.update(&parts[1]);
        builder.update(&parts[2]);
        assert_eq!(builder.rows_seen(), 6);
        let incremental = builder.snapshot();
        let scratch = TableStats::compute(&[b]);
        assert_eq!(incremental.row_count, scratch.row_count);
        assert_eq!(incremental.distinct_count("k"), scratch.distinct_count("k"));
        assert_eq!(
            incremental.column("v").unwrap().mean,
            scratch.column("v").unwrap().mean
        );
        assert_eq!(
            incremental.column("k").unwrap().max_frequency,
            scratch.column("k").unwrap().max_frequency
        );
    }

    #[test]
    fn zone_widening_covers_appended_slice() {
        let b = sample_batch();
        let mut z = PartitionZones::compute(&b.slice(0, 3));
        let tail = PartitionZones::compute(&b.slice(3, 3));
        z.extend_with(&tail);
        let whole = PartitionZones::compute(&b);
        assert_eq!(z.num_rows, whole.num_rows);
        for name in ["k", "v", "s"] {
            assert_eq!(z.column(name), whole.column(name), "column {name}");
        }
        // An empty partition's zones adopt the appended slice wholesale.
        let mut empty = PartitionZones::compute(&b.filter(&[false; 6]));
        empty.extend_with(&whole);
        assert_eq!(empty.column("k"), whole.column("k"));
        assert_eq!(empty.num_rows, 6);
    }

    #[test]
    fn stats_over_multiple_partitions_match_single_batch() {
        let b = sample_batch();
        let parts = crate::partition::split_batch(&b, 3);
        let whole = TableStats::compute(&[b]);
        let split = TableStats::compute(&parts);
        assert_eq!(whole.row_count, split.row_count);
        assert_eq!(whole.distinct_count("k"), split.distinct_count("k"));
    }
}
