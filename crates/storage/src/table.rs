//! Partitioned tables with an online append path and tombstone deletes.
//!
//! A [`Table`] publishes its data as immutable [`TableSnapshot`]s: the
//! partition list, the zone maps derived from exactly those partitions, and
//! the per-partition tombstone bitmaps all travel together, so a scan that
//! prunes against a snapshot's zones can never disagree with the rows it
//! reads. [`Table::append`] installs a new snapshot copy-on-write —
//! partitions are `Arc`-shared, only the grown tail partition is rewritten —
//! which makes appends safe to run concurrently with scans, samplers and
//! synopsis builds holding older snapshots.
//!
//! Deletes follow the same discipline ([`Table::delete_rows`]): sealed
//! partitions stay byte-for-byte immutable and grow a [`SelectionMask`]
//! tombstone *beside* them (set bit = deleted row), while the unsealed tail —
//! which is mutable by construction — deletes in place. Zone maps and
//! secondary indexes over tombstoned partitions become supersets of the live
//! rows; the scan layer re-filters through the tombstone, so they stay
//! correct without rebuilds. [`Table::compact`] re-seals partitions whose
//! dead fraction crossed a threshold: the live rows are materialized, the
//! tombstone slot drops back to `None`, and zones/indexes are rebuilt for
//! exactly the compacted slots.

use parking_lot::{Mutex, RwLock};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::batch::RecordBatch;
use crate::error::StorageError;
use crate::index::{ColumnIndexes, PartitionIndex};
use crate::mask::SelectionMask;
use crate::partition::split_batch;
use crate::schema::SchemaRef;
use crate::stats::{PartitionZones, TableStats, TableStatsBuilder};

/// An immutable, internally consistent view of a table: the partitions, the
/// zone maps computed from exactly those partitions, and the tombstones
/// marking rows deleted from sealed partitions.
///
/// Snapshots are what scans, samplers and synopsis builders operate on; a
/// concurrent [`Table::append`] or [`Table::delete_rows`] publishes a *new*
/// snapshot and never mutates one that has been handed out. Zone maps are
/// computed lazily per snapshot (first pruning scan pays) and maintained
/// incrementally across appends: when the parent snapshot had zones, the
/// child widens the tail zone with the appended slice instead of rescanning.
#[derive(Debug)]
pub struct TableSnapshot {
    schema: SchemaRef,
    partitions: Vec<Arc<RecordBatch>>,
    /// Parallel to `partitions`: `Some(mask)` marks deleted rows of a sealed
    /// partition (set bit = dead). The unsealed tail always carries `None` —
    /// it deletes in place — and so do sealed partitions with no deletes.
    tombstones: Vec<Option<Arc<SelectionMask>>>,
    zones: OnceLock<Vec<PartitionZones>>,
    /// Sparse secondary indexes, one per-partition slot vector per indexed
    /// column. Slots are `Some` only for sealed partitions; the unsealed
    /// tail is always `None` and is scanned. Like `zones`, the indexes are
    /// published atomically with the partitions they describe. Index slots
    /// over tombstoned partitions are supersets of the live rows; probes are
    /// re-filtered through the tombstone by the scan layer.
    indexes: HashMap<String, ColumnIndexes>,
    version: u64,
    /// Physical-layout epoch: bumped only by mutations that move rows to
    /// different global positions (compaction, in-place tail deletes).
    /// Appends and sealed-partition tombstone sets carry it forward — they
    /// keep every existing row at its position. Optimistic mutators resolve
    /// positions against a snapshot and apply them with
    /// [`Table::delete_rows_at`] / [`Table::update_rows_at`], which fail
    /// with [`StorageError::Conflict`] if the epoch moved.
    layout: u64,
    num_rows: usize,
    deleted_rows: usize,
    size_bytes: usize,
}

impl TableSnapshot {
    fn new(
        schema: SchemaRef,
        partitions: Vec<Arc<RecordBatch>>,
        tombstones: Vec<Option<Arc<SelectionMask>>>,
        version: u64,
    ) -> Self {
        debug_assert_eq!(partitions.len(), tombstones.len());
        let num_rows = partitions.iter().map(|p| p.num_rows()).sum();
        let size_bytes = partitions.iter().map(|p| p.size_bytes()).sum();
        let deleted_rows = tombstones
            .iter()
            .flatten()
            .map(|t| t.count_selected())
            .sum();
        Self {
            schema,
            partitions,
            tombstones,
            zones: OnceLock::new(),
            indexes: HashMap::new(),
            version,
            layout: 0,
            num_rows,
            deleted_rows,
            size_bytes,
        }
    }

    /// The snapshot's partitions (physical rows, including tombstoned ones).
    pub fn partitions(&self) -> &[Arc<RecordBatch>] {
        &self.partitions
    }

    /// Per-partition tombstone slots, parallel to
    /// [`partitions`](Self::partitions). `None` means every physical row of
    /// that partition is live.
    pub fn tombstones(&self) -> &[Option<Arc<SelectionMask>>] {
        &self.tombstones
    }

    /// The tombstone mask of partition `i`, if it has any deleted rows.
    pub fn tombstone(&self, i: usize) -> Option<&Arc<SelectionMask>> {
        self.tombstones.get(i).and_then(|t| t.as_ref())
    }

    /// `true` if any row of the snapshot is tombstoned.
    pub fn has_tombstones(&self) -> bool {
        self.deleted_rows > 0
    }

    /// Rows marked deleted but still physically present.
    pub fn deleted_rows(&self) -> usize {
        self.deleted_rows
    }

    /// Live (non-tombstoned) rows.
    pub fn live_rows(&self) -> usize {
        self.num_rows - self.deleted_rows
    }

    /// Zone maps for every partition, computed on first access and cached in
    /// the snapshot. Always consistent with [`partitions`](Self::partitions):
    /// both live in the same immutable snapshot. Over a tombstoned partition
    /// the zone is a *superset* of the live rows' bounds — safe for pruning
    /// (never prunes a live row), pessimistic for cost.
    pub fn zones(&self) -> &[PartitionZones] {
        self.zones.get_or_init(|| {
            self.partitions
                .iter()
                .map(|p| PartitionZones::compute(p))
                .collect()
        })
    }

    /// Per-partition secondary index slots for `column`, if an index was
    /// created for it ([`Table::create_index`]). The returned slice is
    /// parallel to [`partitions`](Self::partitions); a `None` slot (the
    /// unsealed tail, or a partition sealed before indexing caught up) must
    /// be scanned instead of probed. Probe results over a tombstoned
    /// partition include dead rows and must be re-filtered through
    /// [`tombstone`](Self::tombstone).
    pub fn index(&self, column: &str) -> Option<&[Option<Arc<PartitionIndex>>]> {
        self.indexes.get(column).map(|v| v.as_slice())
    }

    /// Columns with a secondary index in this snapshot (sorted).
    pub fn indexed_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self.indexes.keys().cloned().collect();
        cols.sort();
        cols
    }

    /// Approximate in-memory size of all secondary indexes, in bytes.
    pub fn index_size_bytes(&self) -> usize {
        self.indexes
            .values()
            .flatten()
            .flatten()
            .map(|idx| idx.size_bytes())
            .sum()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total *physical* rows in the snapshot, including tombstoned ones.
    /// This is the positional domain of [`rows_from`](Self::rows_from); use
    /// [`live_rows`](Self::live_rows) for the queryable count.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Monotonic snapshot version (bumped by every append, delete, index
    /// publication and compaction).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The physical-layout epoch of this snapshot. Row positions resolved
    /// against it remain valid in any later snapshot with the *same* epoch
    /// (appends only add rows at the end; sealed tombstone sets keep
    /// positions); a different epoch means compaction or an in-place tail
    /// delete moved rows.
    pub fn layout_epoch(&self) -> u64 {
        self.layout
    }

    /// The schema shared by all partitions.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The live rows of every partition: borrowed as-is when the partition
    /// has no tombstone, filtered down to the survivors when it does. The
    /// result is parallel to [`partitions`](Self::partitions) (empty
    /// partitions are kept), so partition-granular consumers — samplers,
    /// synopsis builds, compaction-free scans — see the same shape either
    /// way without deep-copying untouched partitions.
    pub fn live_batches(&self) -> Vec<Cow<'_, RecordBatch>> {
        self.partitions
            .iter()
            .zip(&self.tombstones)
            .map(|(p, t)| match t {
                Some(t) if !t.is_none_selected() => {
                    Cow::Owned(p.filter_mask(&t.complement()))
                }
                _ => Cow::Borrowed(p.as_ref()),
            })
            .collect()
    }

    /// All *live* rows concatenated into one batch.
    pub fn to_batch(&self) -> Result<RecordBatch, StorageError> {
        if self.partitions.is_empty() {
            return Ok(RecordBatch::empty(self.schema.clone()));
        }
        if !self.has_tombstones() {
            let refs: Vec<&RecordBatch> = self.partitions.iter().map(|p| p.as_ref()).collect();
            return RecordBatch::concat_refs(&refs);
        }
        let live = self.live_batches();
        let refs: Vec<&RecordBatch> = live.iter().map(|c| &**c).collect();
        RecordBatch::concat_refs(&refs)
    }

    /// Count of `(dict-encoded, plain-utf8)` string-bearing partitions in
    /// this snapshot, for explain output. Partitions without string columns
    /// count toward neither; a snapshot of a string table normally reports
    /// every sealed partition as dict and at most the unsealed tail as raw.
    pub fn encoding_counts(&self) -> (usize, usize) {
        let mut dict = 0usize;
        let mut raw = 0usize;
        for p in &self.partitions {
            if p.has_dict_columns() {
                dict += 1;
            } else if p.has_plain_utf8() {
                raw += 1;
            }
        }
        (dict, raw)
    }

    /// The rows at *physical* global positions `start..` as a sequence of
    /// batches (partition suffixes). Appends only ever extend the tail, so
    /// as long as no delete or compaction intervened, physical position `k`
    /// refers to the same row in every snapshot that contains it. This is
    /// the delta-read used by incremental synopsis refresh and stats
    /// catch-up; mutations break the positional contract, which callers
    /// detect through [`Table::deletes_logged`] and answer with a rebuild
    /// from [`live_batches`](Self::live_batches).
    pub fn rows_from(&self, start: usize) -> Vec<RecordBatch> {
        let mut out = Vec::new();
        let mut offset = 0usize;
        for p in &self.partitions {
            let end = offset + p.num_rows();
            if end > start {
                if offset >= start {
                    out.push(p.as_ref().clone());
                } else {
                    out.push(p.slice(start - offset, end - start));
                }
            }
            offset = end;
        }
        out
    }
}

/// What one [`Table::append`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// Rows appended.
    pub rows: usize,
    /// `true` if the (unsealed) tail partition was extended in place.
    pub extended_tail: bool,
    /// Number of new partitions created for the overflow.
    pub new_partitions: usize,
    /// The snapshot version the append produced.
    pub version: u64,
}

/// What one [`Table::delete_rows`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeleteReport {
    /// Rows newly deleted (requested positions that were live; already-dead
    /// positions are skipped idempotently).
    pub rows_deleted: usize,
    /// The snapshot version after the delete (unchanged if nothing was live).
    pub version: u64,
}

/// What one [`Table::update_rows`] call did: a delete plus a re-append
/// published as two individually consistent snapshots under one mutation
/// lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// Rows deleted by the update.
    pub rows_deleted: usize,
    /// Replacement rows appended.
    pub rows_appended: usize,
    /// The snapshot version after both halves.
    pub version: u64,
}

/// What one [`Table::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Partitions whose live rows were re-materialized.
    pub partitions_compacted: usize,
    /// Tombstoned rows physically dropped.
    pub rows_dropped: usize,
    /// The snapshot version after compaction (unchanged if nothing
    /// qualified).
    pub version: u64,
}

/// Cached statistics plus the streaming builder that produced them, so later
/// appends only fold in the delta rows.
#[derive(Debug)]
struct StatsCache {
    builder: TableStatsBuilder,
    stats: Arc<TableStats>,
    version: u64,
    /// Physical row watermark the builder has consumed: the resume point for
    /// `rows_from` catch-up. Distinct from `builder.rows_seen()`, which
    /// counts *live* rows when the builder was rebuilt over a tombstoned
    /// snapshot.
    physical_rows: usize,
}

/// Write-ahead hook invoked by the [`Table`] mutation paths **before** a new
/// snapshot is published.
///
/// A durability layer implements this to log the mutation (and make it
/// durable) while the table's mutation lock is held, giving WAL-before-data
/// ordering: if the sink returns an error the mutation is aborted and the
/// table is unchanged; if the process crashes after the sink succeeded but
/// before the snapshot swap, replaying the log reapplies it — the recovered
/// table is always a prefix of acknowledged mutations.
pub trait AppendSink: Send + Sync {
    /// Durably record `batch` as the next append to table `table`.
    fn log_append(&self, table: &str, batch: &RecordBatch) -> Result<(), StorageError>;

    /// Durably record the deletion of the *physical* global positions
    /// `positions` (sorted, deduplicated, all live at log time) from table
    /// `table`. Replay applies them with [`Table::delete_rows`] in log
    /// order, so positions resolve against the same physical layout they
    /// were logged against. Defaults to a no-op for in-memory sinks.
    fn log_delete(&self, table: &str, positions: &[usize]) -> Result<(), StorageError> {
        let _ = (table, positions);
        Ok(())
    }

    /// Durably record a physical rewrite of the whole table — the compaction
    /// path. `partitions` and `tombstones` are the complete post-rewrite
    /// state; `deletes_logged` is the table's mutation counter to restore on
    /// recovery. Later delete records replay against this layout. Defaults
    /// to a no-op for in-memory sinks.
    fn log_rewrite(
        &self,
        table: &str,
        seal_rows: usize,
        partitions: &[Arc<RecordBatch>],
        tombstones: &[Option<Arc<SelectionMask>>],
        deletes_logged: u64,
    ) -> Result<(), StorageError> {
        let _ = (table, seal_rows, partitions, tombstones, deletes_logged);
        Ok(())
    }
}

/// A named, horizontally partitioned table supporting online appends,
/// tombstone deletes, updates and threshold-driven compaction.
///
/// Statistics are computed lazily on first access (mirroring Taster, which
/// collects dataset statistics "during the first access to any table") and
/// maintained **incrementally** thereafter: an append does not invalidate the
/// statistics wholesale, the resident [`TableStatsBuilder`] absorbs exactly
/// the new rows on the next [`stats`](Table::stats) call. Deletes and
/// compaction *do* invalidate them — tombstoned rows must drop out of the
/// cost model — and the rebuild runs over the live rows only.
///
/// # Examples
///
/// Appends extend the unsealed tail partition, seal overflow into new
/// partitions, and bump the snapshot version — scans planned against an older
/// snapshot keep reading exactly the rows they planned over:
///
/// ```
/// use taster_storage::batch::BatchBuilder;
/// use taster_storage::Table;
///
/// let seed = BatchBuilder::new()
///     .column("id", (0..100i64).collect::<Vec<_>>())
///     .build()
///     .unwrap();
/// // 4 partitions of 25 rows; partitions seal at 25 rows.
/// let t = Table::from_batch("t", seed, 4).unwrap();
/// let before = t.snapshot();
///
/// let more = BatchBuilder::new()
///     .column("id", (100..160i64).collect::<Vec<_>>())
///     .build()
///     .unwrap();
/// let report = t.append(&more).unwrap();
/// assert_eq!(report.rows, 60);
/// assert_eq!(report.new_partitions, 3); // 60 overflow rows → 3 × 25-row cap
///
/// assert_eq!(t.num_rows(), 160);
/// assert_eq!(before.num_rows(), 100, "old snapshot is untouched");
/// assert!(t.snapshot().version() > before.version());
///
/// // Deleting sealed rows tombstones them; live counts and query surfaces
/// // (`to_batch`, scans) exclude them immediately.
/// t.delete_rows(&[0, 1, 2]).unwrap();
/// assert_eq!(t.num_rows(), 160, "physical rows stay until compaction");
/// assert_eq!(t.live_rows(), 157);
/// ```
pub struct Table {
    name: String,
    schema: SchemaRef,
    /// Rows at which a partition seals; appends extend the tail partition up
    /// to this bound and then start new partitions.
    seal_rows: usize,
    current: RwLock<Arc<TableSnapshot>>,
    /// Serializes mutators (append / delete / update / compact) so the heavy
    /// work (tail clone, zone computation, live materialization) happens
    /// *outside* the `current` write lock: readers taking snapshots only
    /// ever block on the final pointer swap.
    append_lock: Mutex<()>,
    stats: RwLock<Option<StatsCache>>,
    /// Optional write-ahead hook consulted (under the mutation lock) before
    /// a new snapshot is published.
    append_sink: RwLock<Option<Arc<dyn AppendSink>>>,
    /// Monotonic count of row mutations that invalidated positional resume:
    /// tombstoned/tail-deleted rows plus rows physically dropped by
    /// compaction. Never reset — synopsis metadata records the value at
    /// build time and any advance signals "rebuild from live rows".
    deletes_logged: AtomicU64,
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("schema", &self.schema)
            .field("seal_rows", &self.seal_rows)
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl Table {
    fn build(
        name: String,
        schema: SchemaRef,
        mut partitions: Vec<Arc<RecordBatch>>,
        seal_rows: usize,
    ) -> Self {
        let seal_rows = seal_rows.max(1);
        // Seal-time dictionary encoding: every partition that is born sealed
        // (non-tail, or tail at its seal bound) gets its string columns
        // dictionary-encoded; the mutable unsealed tail stays Utf8 — the same
        // contract as index-at-seal. Recovered partitions that are already
        // encoded (the codec round-trips dictionaries) are left as-is.
        let last = partitions.len().saturating_sub(1);
        for (i, slot) in partitions.iter_mut().enumerate() {
            let sealed = i < last || slot.num_rows() >= seal_rows;
            if sealed && slot.has_plain_utf8() {
                *slot = Arc::new(slot.dict_encode_strings());
            }
        }
        let tombstones = vec![None; partitions.len()];
        Self {
            name,
            schema: schema.clone(),
            seal_rows,
            current: RwLock::new(Arc::new(TableSnapshot::new(schema, partitions, tombstones, 0))),
            append_lock: Mutex::new(()),
            stats: RwLock::new(None),
            append_sink: RwLock::new(None),
            deletes_logged: AtomicU64::new(0),
        }
    }

    /// Create a table from a single batch, splitting it into `partitions`
    /// chunks (the distribution factor `D`). Partitions seal at the resulting
    /// chunk size, so appends keep roughly the same partition granularity.
    pub fn from_batch(
        name: impl Into<String>,
        batch: RecordBatch,
        partitions: usize,
    ) -> Result<Self, StorageError> {
        let schema = batch.schema().clone();
        let seal_rows = batch.num_rows().div_ceil(partitions.max(1)).max(1);
        let parts = split_batch(&batch, partitions)
            .into_iter()
            .map(Arc::new)
            .collect();
        Ok(Self::build(name.into(), schema, parts, seal_rows))
    }

    /// Create a table directly from pre-built partitions (they must share a
    /// schema). Partitions seal at the size of the largest one.
    pub fn from_partitions(
        name: impl Into<String>,
        partitions: Vec<RecordBatch>,
    ) -> Result<Self, StorageError> {
        let seal = partitions.iter().map(RecordBatch::num_rows).max().unwrap_or(1);
        Self::from_partitions_with_seal(name, partitions, seal)
    }

    /// Like [`from_partitions`](Self::from_partitions) but with an explicit
    /// partition seal size, so a recovered table reproduces the append
    /// behaviour of the table it was checkpointed from (whose tail partition
    /// may have been smaller than its seal bound).
    pub fn from_partitions_with_seal(
        name: impl Into<String>,
        partitions: Vec<RecordBatch>,
        seal_rows: usize,
    ) -> Result<Self, StorageError> {
        let Some(first) = partitions.first() else {
            return Err(StorageError::Invalid(
                "a table needs at least one (possibly empty) partition".to_string(),
            ));
        };
        let schema = first.schema().clone();
        for p in &partitions {
            if p.schema().as_ref() != schema.as_ref() {
                return Err(StorageError::Invalid(
                    "all partitions of a table must share a schema".to_string(),
                ));
            }
        }
        let parts = partitions.into_iter().map(Arc::new).collect();
        Ok(Self::build(name.into(), schema, parts, seal_rows))
    }

    /// Recovery constructor: rebuild a table from checkpointed partitions
    /// *plus* their tombstone masks and the mutation counter, preserving the
    /// physical layout so that delete records logged after the checkpoint
    /// replay against the positions they were written for.
    pub fn from_recovered(
        name: impl Into<String>,
        partitions: Vec<RecordBatch>,
        tombstones: Vec<Option<SelectionMask>>,
        seal_rows: usize,
        deletes_logged: u64,
    ) -> Result<Self, StorageError> {
        if tombstones.len() != partitions.len() {
            return Err(StorageError::Corrupt(format!(
                "{} tombstone slots for {} partitions",
                tombstones.len(),
                partitions.len()
            )));
        }
        let rows: Vec<usize> = partitions.iter().map(RecordBatch::num_rows).collect();
        let table = Self::from_partitions_with_seal(name, partitions, seal_rows)?;
        let last = rows.len().saturating_sub(1);
        let mut slots: Vec<Option<Arc<SelectionMask>>> = Vec::with_capacity(tombstones.len());
        for (i, t) in tombstones.into_iter().enumerate() {
            match t {
                Some(t) => {
                    if t.len() != rows[i] {
                        return Err(StorageError::Corrupt(format!(
                            "tombstone of {} rows over partition {} of {} rows",
                            t.len(),
                            i,
                            rows[i]
                        )));
                    }
                    let sealed = i < last || rows[i] >= table.seal_rows;
                    if !sealed && !t.is_none_selected() {
                        return Err(StorageError::Corrupt(
                            "unsealed tail partition cannot carry a tombstone mask".to_string(),
                        ));
                    }
                    slots.push(if t.is_none_selected() {
                        None
                    } else {
                        Some(Arc::new(t))
                    });
                }
                None => slots.push(None),
            }
        }
        {
            // Re-publish the freshly built snapshot (which dict-encoded any
            // raw sealed partitions) with the recovered tombstones attached.
            let mut cur = table.current.write();
            let snap = TableSnapshot::new(table.schema.clone(), cur.partitions.clone(), slots, 0);
            *cur = Arc::new(snap);
        }
        table.deletes_logged.store(deletes_logged, Ordering::Relaxed);
        Ok(table)
    }

    /// Create an empty, append-only table (one empty partition) for
    /// pure-streaming ingestion. `seal_rows` is the partition size appends
    /// fill up to before starting a new partition.
    pub fn empty(name: impl Into<String>, schema: SchemaRef, seal_rows: usize) -> Self {
        let parts = vec![Arc::new(RecordBatch::empty(schema.clone()))];
        Self::build(name.into(), schema, parts, seal_rows)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The current snapshot: partitions, zone maps and tombstones, consistent
    /// with each other. Readers that look at partitions *and* zones or
    /// tombstones (e.g. a pruning scan) must take one snapshot and use all
    /// sides of it — two separate calls could straddle a mutation.
    pub fn snapshot(&self) -> Arc<TableSnapshot> {
        self.current.read().clone()
    }

    /// The partition seal size (rows) governing the append path.
    pub fn seal_rows(&self) -> usize {
        self.seal_rows
    }

    /// Attach (or replace) the write-ahead [`AppendSink`] consulted by every
    /// subsequent mutation. Pass-through for in-memory tables; the
    /// durability layer installs one when persistence is enabled.
    pub fn set_append_sink(&self, sink: Option<Arc<dyn AppendSink>>) {
        *self.append_sink.write() = sink;
    }

    /// Current snapshot version (0 for a freshly created table; +1 per
    /// mutation).
    pub fn version(&self) -> u64 {
        self.current.read().version()
    }

    /// Number of partitions (distribution factor `D`) in the current
    /// snapshot.
    pub fn num_partitions(&self) -> usize {
        self.current.read().num_partitions()
    }

    /// Total number of *physical* rows in the current snapshot (tombstoned
    /// rows included; see [`live_rows`](Self::live_rows)).
    pub fn num_rows(&self) -> usize {
        self.current.read().num_rows()
    }

    /// Live (non-tombstoned) rows in the current snapshot.
    pub fn live_rows(&self) -> usize {
        self.current.read().live_rows()
    }

    /// Rows tombstoned but not yet compacted away in the current snapshot.
    pub fn deleted_rows(&self) -> usize {
        self.current.read().deleted_rows()
    }

    /// Monotonic mutation counter: total rows ever deleted (tombstoned or
    /// removed from the tail in place) plus rows physically dropped by
    /// compaction. Synopsis metadata compares the value recorded at build
    /// time against this to decide between incremental append catch-up and
    /// a rebuild from live rows — any advance means physical positions may
    /// have shifted or coverage shrank.
    pub fn deletes_logged(&self) -> u64 {
        self.deletes_logged.load(Ordering::Relaxed)
    }

    /// Approximate total size in bytes of the current snapshot.
    pub fn size_bytes(&self) -> usize {
        self.current.read().size_bytes()
    }

    /// All live rows concatenated into one batch (used by small dimension
    /// tables and by tests; fact tables are normally consumed
    /// partition-by-partition).
    pub fn to_batch(&self) -> Result<RecordBatch, StorageError> {
        self.snapshot().to_batch()
    }

    /// Append a batch of rows.
    ///
    /// The unsealed tail partition is extended up to
    /// [`seal_rows`](Self::seal_rows); overflow rows seal into new partitions
    /// of at most `seal_rows` rows each. Zone maps are maintained
    /// incrementally — the grown tail's zone widens with the appended slice's
    /// zone, new partitions get fresh zones — and the new (partitions, zones)
    /// pair is published atomically as one snapshot, so a concurrent pruning
    /// scan either sees the old data with the old zones or the new data with
    /// the new zones, never a stale mix.
    pub fn append(&self, batch: &RecordBatch) -> Result<AppendReport, StorageError> {
        // Mutators serialize on their own mutex; the snapshot read inside is
        // therefore stable (only mutators replace it), and all the heavy
        // work runs without holding the `current` write lock — readers block
        // only on the final pointer swap.
        let _appender = self.append_lock.lock();
        self.append_locked(batch)
    }

    /// The body of [`append`](Self::append); callers must hold
    /// `append_lock`. Split out so [`update_rows`](Self::update_rows) can
    /// run delete + append under a single lock acquisition (the mutex is not
    /// reentrant).
    fn append_locked(&self, batch: &RecordBatch) -> Result<AppendReport, StorageError> {
        if batch.schema().as_ref() != self.schema.as_ref() {
            return Err(StorageError::Invalid(format!(
                "append to table '{}' with a different schema",
                self.name
            )));
        }
        let old = self.snapshot();
        if batch.num_rows() == 0 {
            return Ok(AppendReport {
                rows: 0,
                extended_tail: false,
                new_partitions: 0,
                version: old.version(),
            });
        }

        // WAL-before-data: make the batch durable before any in-memory state
        // changes. A sink failure aborts the append with the table unchanged;
        // a crash after this point is repaired by log replay.
        let sink = self.append_sink.read().clone();
        if let Some(sink) = sink {
            sink.log_append(&self.name, batch)?;
        }

        let mut partitions = old.partitions.clone();
        let mut tombstones = old.tombstones.clone();
        // Maintain zones only if the parent snapshot had computed them;
        // otherwise the child recomputes lazily on first pruning scan.
        let mut zones = old.zones.get().cloned();

        let mut offset = 0usize;
        let mut extended_tail = false;
        // `last_mut` (not `last` + indexed writeback) keeps the borrow local
        // and avoids any unwrap on the tail slot.
        if let Some(tail_slot) = partitions.last_mut() {
            if tail_slot.num_rows() < self.seal_rows {
                // Invariant: an unsealed tail never carries a tombstone (it
                // deletes in place), so extending it cannot desync a mask.
                debug_assert!(tombstones.last().is_none_or(|t| t.is_none()));
                let take = (self.seal_rows - tail_slot.num_rows()).min(batch.num_rows());
                let slice = batch.slice(0, take);
                let mut grown = tail_slot.as_ref().clone();
                grown.append(&slice)?;
                if let Some(tail_zone) = zones.as_mut().and_then(|z| z.last_mut()) {
                    tail_zone.extend_with(&PartitionZones::compute(&slice));
                }
                *tail_slot = Arc::new(grown);
                offset = take;
                extended_tail = true;
            }
        }
        let mut new_partitions = 0usize;
        while offset < batch.num_rows() {
            let len = self.seal_rows.min(batch.num_rows() - offset);
            let part = batch.slice(offset, len);
            if let Some(zones) = zones.as_mut() {
                zones.push(PartitionZones::compute(&part));
            }
            partitions.push(Arc::new(part));
            tombstones.push(None);
            offset += len;
            new_partitions += 1;
        }

        // Seal-time dictionary encoding, mirroring the index contract below:
        // any partition that sealed during *this* append re-encodes its
        // string columns before indexes build over it and the snapshot
        // publishes. The new unsealed tail stays Utf8 so later appends can
        // keep extending it in place. Zones were computed from the raw
        // slices above, which is equivalent — encoding never changes values.
        let old_n = old.partitions.len();
        if old_n > 0 {
            let tail = &mut partitions[old_n - 1];
            if tail.num_rows() >= self.seal_rows && tail.has_plain_utf8() {
                *tail = Arc::new(tail.dict_encode_strings());
            }
        }
        for part in &mut partitions[old_n..] {
            if part.num_rows() >= self.seal_rows && part.has_plain_utf8() {
                *part = Arc::new(part.dict_encode_strings());
            }
        }

        // Seal-time index maintenance: sealed partitions are immutable, so
        // their index slots are carried forward `Arc`-shared; any partition
        // that sealed during *this* append (the grown tail reaching
        // `seal_rows`, or overflow partitions of exactly `seal_rows` rows)
        // gets its index built now. The new unsealed tail keeps a `None`
        // slot and is always scanned — appends therefore never invalidate a
        // published index.
        let mut indexes = old.indexes.clone();
        for (col, slots) in indexes.iter_mut() {
            if old_n > 0 && slots.len() == old_n {
                let tail = &partitions[old_n - 1];
                if slots[old_n - 1].is_none() && tail.num_rows() >= self.seal_rows {
                    slots[old_n - 1] = PartitionIndex::build(tail, col).ok().map(Arc::new);
                }
            }
            for part in &partitions[old_n..] {
                slots.push(if part.num_rows() >= self.seal_rows {
                    PartitionIndex::build(part, col).ok().map(Arc::new)
                } else {
                    None
                });
            }
        }

        let mut snap =
            TableSnapshot::new(self.schema.clone(), partitions, tombstones, old.version() + 1);
        snap.indexes = indexes;
        snap.layout = old.layout; // appends never move existing rows
        if let Some(zones) = zones {
            let _ = snap.zones.set(zones);
        }
        let version = snap.version();
        *self.current.write() = Arc::new(snap);
        Ok(AppendReport {
            rows: batch.num_rows(),
            extended_tail,
            new_partitions,
            version,
        })
    }

    /// Delete the rows at the given *physical* global positions.
    ///
    /// Positions are resolved against the current snapshot: rows in sealed
    /// partitions are tombstoned (the partition's bytes never change; a
    /// [`SelectionMask`] beside it marks them dead), rows in the unsealed
    /// tail are removed in place (the tail is mutable by construction, its
    /// zone is recomputed). Already-dead positions are skipped idempotently;
    /// a position past the end is an error and nothing is deleted. The new
    /// tombstones publish atomically with the partitions as one snapshot —
    /// a concurrent scan sees either all of this delete or none of it.
    ///
    /// # Examples
    ///
    /// ```
    /// use taster_storage::batch::BatchBuilder;
    /// use taster_storage::Table;
    ///
    /// let b = BatchBuilder::new()
    ///     .column("id", (0..100i64).collect::<Vec<_>>())
    ///     .build()
    ///     .unwrap();
    /// let t = Table::from_batch("t", b, 4).unwrap();
    /// let r = t.delete_rows(&[10, 11, 12]).unwrap();
    /// assert_eq!(r.rows_deleted, 3);
    /// assert_eq!(t.live_rows(), 97);
    /// // The sealed partition still holds 25 physical rows...
    /// assert_eq!(t.snapshot().partitions()[0].num_rows(), 25);
    /// // ...but query surfaces exclude the tombstoned ones.
    /// assert_eq!(t.to_batch().unwrap().num_rows(), 97);
    /// ```
    pub fn delete_rows(&self, positions: &[usize]) -> Result<DeleteReport, StorageError> {
        let _appender = self.append_lock.lock();
        self.delete_locked(positions)
    }

    /// [`delete_rows`](Self::delete_rows), guarded against concurrent layout
    /// changes: fails with [`StorageError::Conflict`] — deleting nothing —
    /// if the current snapshot's [`layout_epoch`](TableSnapshot::layout_epoch)
    /// differs from `expected_layout`. Callers that resolved `positions`
    /// against a snapshot (rather than receiving them from the caller) must
    /// use this and retry on conflict: between resolution and application a
    /// compaction or in-place tail delete may have moved rows, and applying
    /// the stale positions would silently delete the wrong rows.
    pub fn delete_rows_at(
        &self,
        positions: &[usize],
        expected_layout: u64,
    ) -> Result<DeleteReport, StorageError> {
        let _appender = self.append_lock.lock();
        self.check_layout(expected_layout)?;
        self.delete_locked(positions)
    }

    /// Callers must hold `append_lock` so the epoch cannot move after the
    /// check passes.
    fn check_layout(&self, expected: u64) -> Result<(), StorageError> {
        let now = self.current.read().layout_epoch();
        if now != expected {
            return Err(StorageError::Conflict(format!(
                "table '{}' layout epoch advanced {expected} -> {now} since position resolution",
                self.name
            )));
        }
        Ok(())
    }

    /// The body of [`delete_rows`](Self::delete_rows); callers must hold
    /// `append_lock`.
    fn delete_locked(&self, positions: &[usize]) -> Result<DeleteReport, StorageError> {
        let old = self.snapshot();
        let total = old.num_rows();
        let mut sorted: Vec<usize> = positions.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&max) = sorted.last() {
            if max >= total {
                return Err(StorageError::Invalid(format!(
                    "delete position {max} out of range for table '{}' with {total} physical rows",
                    self.name
                )));
            }
        }

        // Resolve positions to (partition, local) pairs, dropping the ones
        // that are already tombstoned so re-deletes are idempotent.
        let mut per_part: Vec<Vec<usize>> = vec![Vec::new(); old.partitions.len()];
        let mut effective: Vec<usize> = Vec::with_capacity(sorted.len());
        let mut part = 0usize;
        let mut offset = 0usize;
        for &pos in &sorted {
            while pos >= offset + old.partitions[part].num_rows() {
                offset += old.partitions[part].num_rows();
                part += 1;
            }
            let local = pos - offset;
            if old.tombstones[part].as_ref().is_some_and(|t| t.get(local)) {
                continue;
            }
            per_part[part].push(local);
            effective.push(pos);
        }
        if effective.is_empty() {
            return Ok(DeleteReport {
                rows_deleted: 0,
                version: old.version(),
            });
        }

        // WAL-before-data, same contract as appends: the logged positions
        // are exactly the effective (live) ones, so replay is idempotent
        // and order-faithful.
        let sink = self.append_sink.read().clone();
        if let Some(sink) = sink {
            sink.log_delete(&self.name, &effective)?;
        }

        let last = old.partitions.len() - 1;
        let mut partitions = old.partitions.clone();
        let mut tombstones = old.tombstones.clone();
        let mut zones = old.zones.get().cloned();
        let mut tail_rewritten = false;
        for (i, locals) in per_part.iter().enumerate() {
            if locals.is_empty() {
                continue;
            }
            let rows = partitions[i].num_rows();
            let sealed = i < last || rows >= self.seal_rows;
            if sealed {
                // Immutable partition: clone-and-set the tombstone mask.
                let mut mask = tombstones[i]
                    .as_ref()
                    .map(|t| t.as_ref().clone())
                    .unwrap_or_else(|| SelectionMask::none(rows));
                for &l in locals {
                    mask.set(l);
                }
                tombstones[i] = Some(Arc::new(mask));
            } else {
                // Unsealed tail: delete in place. The tail is the last
                // partition, so no later physical positions shift.
                debug_assert!(tombstones[i].is_none());
                let mut keep = SelectionMask::all(rows);
                for &l in locals {
                    keep.clear(l);
                }
                partitions[i] = Arc::new(partitions[i].filter_mask(&keep));
                if let Some(z) = zones.as_mut() {
                    z[i] = PartitionZones::compute(&partitions[i]);
                }
                tail_rewritten = true;
            }
        }

        let mut snap =
            TableSnapshot::new(self.schema.clone(), partitions, tombstones, old.version() + 1);
        // Indexes carry forward Arc-shared: sealed slots are supersets of
        // the live rows (scans re-filter through the tombstone), the tail
        // slot is `None` by the seal contract.
        snap.indexes = old.indexes.clone();
        // Tombstone sets keep every physical row in place; an in-place tail
        // delete shifts the tail's trailing rows and invalidates resolved
        // positions.
        snap.layout = old.layout + u64::from(tail_rewritten);
        if let Some(zones) = zones {
            let _ = snap.zones.set(zones);
        }
        let version = snap.version();
        *self.current.write() = Arc::new(snap);
        // Deleted rows must drop out of the cost model: discard the stats
        // cache so the next `stats()` call rebuilds over live rows.
        *self.stats.write() = None;
        self.deletes_logged
            .fetch_add(effective.len() as u64, Ordering::Relaxed);
        Ok(DeleteReport {
            rows_deleted: effective.len(),
            version,
        })
    }

    /// Update rows: delete the given *physical* global positions and append
    /// `replacement` — the classic delete + re-append decomposition, run
    /// under a single mutation-lock acquisition. The two halves publish as
    /// two individually consistent snapshots: a concurrent reader sees the
    /// table before the update, after the delete, or after both — never a
    /// torn state. The replacement rows land at the end of the table like
    /// any append (updates do not preserve row positions).
    pub fn update_rows(
        &self,
        positions: &[usize],
        replacement: &RecordBatch,
    ) -> Result<UpdateReport, StorageError> {
        if replacement.schema().as_ref() != self.schema.as_ref() {
            return Err(StorageError::Invalid(format!(
                "update of table '{}' with a different replacement schema",
                self.name
            )));
        }
        let _appender = self.append_lock.lock();
        let deleted = self.delete_locked(positions)?;
        let appended = self.append_locked(replacement)?;
        Ok(UpdateReport {
            rows_deleted: deleted.rows_deleted,
            rows_appended: appended.rows,
            version: appended.version.max(deleted.version),
        })
    }

    /// [`update_rows`](Self::update_rows) with the same layout-epoch guard
    /// as [`delete_rows_at`](Self::delete_rows_at): fails with
    /// [`StorageError::Conflict`] — touching nothing — if the layout moved
    /// since `positions` (and `replacement`) were resolved.
    pub fn update_rows_at(
        &self,
        positions: &[usize],
        replacement: &RecordBatch,
        expected_layout: u64,
    ) -> Result<UpdateReport, StorageError> {
        if replacement.schema().as_ref() != self.schema.as_ref() {
            return Err(StorageError::Invalid(format!(
                "update of table '{}' with a different replacement schema",
                self.name
            )));
        }
        let _appender = self.append_lock.lock();
        self.check_layout(expected_layout)?;
        let deleted = self.delete_locked(positions)?;
        let appended = self.append_locked(replacement)?;
        Ok(UpdateReport {
            rows_deleted: deleted.rows_deleted,
            rows_appended: appended.rows,
            version: appended.version.max(deleted.version),
        })
    }

    /// Re-seal partitions whose dead fraction reached `dead_fraction`
    /// (0.0 compacts any partition with at least one tombstoned row).
    ///
    /// For each qualifying partition the live rows are materialized into a
    /// fresh batch (dictionary encoding is preserved by the codes-domain
    /// filter, raw string columns re-encode), the tombstone slot returns to
    /// `None`, and the partition's zone map and secondary-index slots are
    /// rebuilt — exact bounds again, dict `code_range` restored. The
    /// trailing partition is never compacted: shrinking it below the seal
    /// bound would re-open it to in-place appends. The whole rewrite
    /// publishes as one snapshot, so no reader observes a half-compacted
    /// table, and the rewrite is logged through
    /// [`AppendSink::log_rewrite`] *before* publication so later delete
    /// records replay against the compacted layout.
    pub fn compact(&self, dead_fraction: f64) -> Result<CompactReport, StorageError> {
        let _appender = self.append_lock.lock();
        let old = self.snapshot();
        let n = old.partitions.len();
        if n == 0 {
            return Ok(CompactReport {
                partitions_compacted: 0,
                rows_dropped: 0,
                version: old.version(),
            });
        }
        let last = n - 1;
        let targets: Vec<usize> = (0..last)
            .filter(|&i| {
                old.tombstones[i].as_ref().is_some_and(|t| {
                    let dead = t.count_selected();
                    dead > 0
                        && dead as f64 >= dead_fraction * old.partitions[i].num_rows() as f64
                })
            })
            .collect();
        if targets.is_empty() {
            return Ok(CompactReport {
                partitions_compacted: 0,
                rows_dropped: 0,
                version: old.version(),
            });
        }

        let mut partitions = old.partitions.clone();
        let mut tombstones = old.tombstones.clone();
        let mut zones = old.zones.get().cloned();
        let mut rows_dropped = 0usize;
        for &i in &targets {
            let Some(tomb) = tombstones[i].take() else {
                continue;
            };
            rows_dropped += tomb.count_selected();
            let live = partitions[i].filter_mask(&tomb.complement());
            // Codes-domain filtering keeps dict columns encoded; a sealed
            // partition that was still raw (recovered pre-encoding data)
            // re-encodes here, matching the seal contract.
            let live = if live.has_plain_utf8() {
                live.dict_encode_strings()
            } else {
                live
            };
            if let Some(z) = zones.as_mut() {
                z[i] = PartitionZones::compute(&live);
            }
            partitions[i] = Arc::new(live);
        }
        let mut indexes = old.indexes.clone();
        for (col, slots) in indexes.iter_mut() {
            for &i in &targets {
                slots[i] = PartitionIndex::build(&partitions[i], col).ok().map(Arc::new);
            }
        }

        // Compaction shifts physical positions, so it advances the mutation
        // counter like a delete: synopses that resumed positionally must
        // rebuild. The rewrite record carries the post-compaction counter
        // for recovery.
        let deletes_logged = self.deletes_logged.load(Ordering::Relaxed) + rows_dropped as u64;
        let sink = self.append_sink.read().clone();
        if let Some(sink) = sink {
            sink.log_rewrite(
                &self.name,
                self.seal_rows,
                &partitions,
                &tombstones,
                deletes_logged,
            )?;
        }

        let mut snap =
            TableSnapshot::new(self.schema.clone(), partitions, tombstones, old.version() + 1);
        snap.indexes = indexes;
        snap.layout = old.layout + 1; // compaction moves rows: new epoch
        if let Some(zones) = zones {
            let _ = snap.zones.set(zones);
        }
        let version = snap.version();
        *self.current.write() = Arc::new(snap);
        *self.stats.write() = None;
        self.deletes_logged.store(deletes_logged, Ordering::Relaxed);
        Ok(CompactReport {
            partitions_compacted: targets.len(),
            rows_dropped,
            version,
        })
    }

    /// Create a sparse secondary index on `column`.
    ///
    /// Indexes are built for every currently *sealed* partition (a partition
    /// holding at least [`seal_rows`](Self::seal_rows) rows, plus every
    /// non-tail partition, which can never grow again); the unsealed tail is
    /// left unindexed and is always scanned. The indexed snapshot is
    /// published atomically, and subsequent [`append`](Self::append)s
    /// maintain the index at seal time: partitions sealed by an append are
    /// indexed inside that append, sealed partitions carry their index
    /// forward `Arc`-shared. Idempotent — indexing an already indexed
    /// column re-publishes without rebuilding sealed slots.
    ///
    /// # Examples
    ///
    /// ```
    /// use taster_storage::batch::BatchBuilder;
    /// use taster_storage::value::Value;
    /// use taster_storage::Table;
    ///
    /// let b = BatchBuilder::new()
    ///     .column("id", (0..100i64).collect::<Vec<_>>())
    ///     .build()
    ///     .unwrap();
    /// let t = Table::from_batch("t", b, 4).unwrap();
    /// t.create_index("id").unwrap();
    /// let snap = t.snapshot();
    /// let slots = snap.index("id").unwrap();
    /// // Partition 1 holds ids 25..50: probing 30 hits exactly one row.
    /// let hits = slots[1].as_ref().unwrap().probe_eq(&Value::Int(30));
    /// assert_eq!(hits, vec![(5, 6)]);
    /// ```
    pub fn create_index(&self, column: &str) -> Result<(), StorageError> {
        // Validate against the schema up front so the append path can treat
        // per-partition build failures as impossible.
        self.schema.index_of(column)?;
        let _appender = self.append_lock.lock();
        let old = self.snapshot();
        if old.indexes.contains_key(column) {
            return Ok(());
        }
        let last = old.partitions.len().saturating_sub(1);
        let slots: ColumnIndexes = old
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let sealed = i < last || p.num_rows() >= self.seal_rows;
                if sealed {
                    PartitionIndex::build(p, column).ok().map(Arc::new)
                } else {
                    None
                }
            })
            .collect();
        let mut snap = TableSnapshot::new(
            self.schema.clone(),
            old.partitions.clone(),
            old.tombstones.clone(),
            old.version() + 1,
        );
        snap.indexes = old.indexes.clone();
        snap.indexes.insert(column.to_string(), slots);
        snap.layout = old.layout;
        if let Some(zones) = old.zones.get().cloned() {
            let _ = snap.zones.set(zones);
        }
        *self.current.write() = Arc::new(snap);
        Ok(())
    }

    /// Columns with a secondary index in the current snapshot (sorted).
    pub fn indexed_columns(&self) -> Vec<String> {
        self.current.read().indexed_columns()
    }

    /// Table statistics, computed on first call and maintained incrementally:
    /// after appends, only the not-yet-seen suffix of rows is folded into the
    /// resident streaming builder (appends never rewrite existing row
    /// positions, so the cached physical watermark is a valid resume point).
    /// Deletes and compaction discard the cache; the rebuild runs over the
    /// snapshot's *live* rows, so tombstoned rows drop out of the cost model.
    pub fn stats(&self) -> Arc<TableStats> {
        if let Some(cache) = self.stats.read().as_ref() {
            if cache.version == self.current.read().version() {
                return cache.stats.clone();
            }
        }
        let mut guard = self.stats.write();
        // Re-take the snapshot *under* the write lock: a thread that raced
        // in with an older snapshot must not fold a shorter suffix and move
        // the cache version backwards (which would de-cache fresh stats and
        // force re-materialization on every subsequent call).
        let snap = self.snapshot();
        let cache = guard.get_or_insert_with(|| StatsCache {
            builder: TableStatsBuilder::new(),
            stats: Arc::new(TableStats::compute(&[])),
            version: u64::MAX,
            physical_rows: 0,
        });
        if cache.version == u64::MAX {
            // Fresh build (first access, or post-delete/compaction rebuild):
            // feed the live rows only, then resume physically from the end
            // of the snapshot.
            for live in snap.live_batches() {
                cache.builder.update(&live);
            }
            cache.physical_rows = snap.num_rows();
            cache.stats = Arc::new(cache.builder.snapshot());
            cache.version = snap.version();
        } else if cache.version < snap.version() {
            // Append catch-up: everything past the watermark was appended
            // (mutations reset the cache), so the suffix is all live.
            for delta in snap.rows_from(cache.physical_rows) {
                cache.builder.update(&delta);
            }
            cache.physical_rows = snap.num_rows();
            cache.stats = Arc::new(cache.builder.snapshot());
            cache.version = snap.version();
        }
        cache.stats.clone()
    }

    /// `true` once statistics have been computed (used by tests asserting the
    /// lazy, first-access behaviour).
    pub fn stats_computed(&self) -> bool {
        self.stats.read().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchBuilder;
    use crate::value::Value;

    fn batch(range: std::ops::Range<i64>) -> RecordBatch {
        BatchBuilder::new()
            .column("id", range.clone().collect::<Vec<_>>())
            .column("grp", range.map(|i| i % 5).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn from_batch_partitions_rows() {
        let t = Table::from_batch("t", batch(0..100), 8).unwrap();
        assert_eq!(t.num_partitions(), 8);
        assert_eq!(t.num_rows(), 100);
        assert_eq!(t.to_batch().unwrap().num_rows(), 100);
        assert_eq!(t.seal_rows(), 13); // ceil(100 / 8)
        assert_eq!(t.version(), 0);
    }

    #[test]
    fn stats_are_lazy_and_cached() {
        let t = Table::from_batch("t", batch(0..50), 4).unwrap();
        assert!(!t.stats_computed());
        let s1 = t.stats();
        assert!(t.stats_computed());
        let s2 = t.stats();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(s1.distinct_count("grp"), 5);
    }

    #[test]
    fn zones_are_cached_and_reflect_contiguous_split() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        let snap = t.snapshot();
        let z = snap.zones();
        assert_eq!(z.len(), 4);
        // Contiguous split: partition 0 holds ids 0..25, partition 3 75..100.
        assert_eq!(z[0].column("id").unwrap().max, Value::Int(24));
        assert_eq!(z[3].column("id").unwrap().min, Value::Int(75));
        // Second access hits the snapshot-cached zones (same allocation).
        assert!(std::ptr::eq(z.as_ptr(), snap.zones().as_ptr()));
    }

    #[test]
    fn partitions_must_share_schema() {
        let a = batch(0..10);
        let b = BatchBuilder::new()
            .column("other", vec![1.0f64])
            .build()
            .unwrap();
        assert!(Table::from_partitions("t", vec![a, b]).is_err());
        assert!(Table::from_partitions("t", vec![]).is_err());
    }

    #[test]
    fn append_extends_tail_then_seals_new_partitions() {
        // 100 rows over 4 partitions => seal at 25, all partitions full.
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        let r = t.append(&batch(100..110)).unwrap();
        assert_eq!(r.rows, 10);
        assert!(!r.extended_tail, "full tail cannot be extended");
        assert_eq!(r.new_partitions, 1);
        assert_eq!(t.num_rows(), 110);
        assert_eq!(t.num_partitions(), 5);

        // The new tail has 10 of 25 rows: the next append extends it.
        let r = t.append(&batch(110..140)).unwrap();
        assert!(r.extended_tail);
        assert_eq!(r.new_partitions, 1); // 15 rows into the tail, 15 sealed
        assert_eq!(t.num_rows(), 140);
        assert_eq!(t.num_partitions(), 6);
        assert_eq!(t.version(), 2);

        // Row order is append order: global positions are stable.
        let all = t.to_batch().unwrap();
        for i in 0..140 {
            assert_eq!(all.row(i)[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn append_rejects_schema_mismatch_and_ignores_empty() {
        let t = Table::from_batch("t", batch(0..10), 2).unwrap();
        let wrong = BatchBuilder::new()
            .column("x", vec![1.0f64])
            .build()
            .unwrap();
        assert!(t.append(&wrong).is_err());
        let empty = batch(0..10).filter(&[false; 10]);
        let r = t.append(&empty).unwrap();
        assert_eq!(r.rows, 0);
        assert_eq!(r.version, 0, "empty append does not bump the version");
    }

    #[test]
    fn layout_epoch_guards_stale_positions() {
        // 100 rows over 4 sealed partitions of 25.
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        assert_eq!(t.snapshot().layout_epoch(), 0);

        // Appends and sealed tombstone-sets keep every row in place: the
        // epoch carries forward and positions resolved earlier still apply.
        t.append(&batch(100..110)).unwrap();
        t.delete_rows(&[0, 1]).unwrap();
        assert_eq!(t.snapshot().layout_epoch(), 0);
        t.delete_rows_at(&[2], 0).unwrap();

        // An in-place tail delete shifts the tail's rows: new epoch, stale
        // positions rejected with Conflict (and nothing deleted).
        t.delete_rows(&[105]).unwrap(); // tail holds 10 of 25 rows: unsealed
        let epoch = t.snapshot().layout_epoch();
        assert_eq!(epoch, 1);
        let live_before = t.live_rows();
        assert!(matches!(
            t.delete_rows_at(&[3], 0),
            Err(StorageError::Conflict(_))
        ));
        assert_eq!(t.live_rows(), live_before, "rejected delete touched rows");

        // Compaction moves rows too: epoch bumps again, both checked
        // mutators reject the stale epoch, the fresh one applies.
        t.delete_rows(&(0..25).collect::<Vec<_>>()).unwrap();
        let r = t.compact(0.5).unwrap();
        assert!(r.partitions_compacted > 0);
        assert_eq!(t.snapshot().layout_epoch(), epoch + 1);
        assert!(matches!(
            t.update_rows_at(&[0], &batch(200..201), epoch),
            Err(StorageError::Conflict(_))
        ));
        t.delete_rows_at(&[0], epoch + 1).unwrap();
    }

    #[test]
    fn append_updates_zones_incrementally_and_atomically() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        // Force zone computation on the current snapshot.
        assert_eq!(t.snapshot().zones().len(), 4);
        t.append(&batch(100..130)).unwrap();
        let snap = t.snapshot();
        // The child snapshot inherited zones without recomputation (they were
        // installed eagerly by the append): the tail zone covers the new ids.
        assert!(snap.zones.get().is_some(), "append carried zones forward");
        let z = snap.zones();
        assert_eq!(z.len(), snap.num_partitions());
        let tail = z.last().unwrap();
        assert!(tail.column("id").unwrap().contains(&Value::Int(129)));
        // Every row is covered by its partition's zone.
        for (p, pz) in snap.partitions().iter().zip(z) {
            assert_eq!(p.num_rows(), pz.num_rows);
            for i in 0..p.num_rows() {
                let v = p.row(i)[0].clone();
                assert!(pz.column("id").unwrap().contains(&v));
            }
        }
    }

    #[test]
    fn old_snapshots_survive_appends_unchanged() {
        let t = Table::from_batch("t", batch(0..40), 2).unwrap();
        let before = t.snapshot();
        t.append(&batch(40..80)).unwrap();
        assert_eq!(before.num_rows(), 40);
        assert_eq!(before.version(), 0);
        assert_eq!(t.snapshot().num_rows(), 80);
        // Untouched partitions are shared, not copied.
        assert!(Arc::ptr_eq(
            &before.partitions()[0],
            &t.snapshot().partitions()[0]
        ));
    }

    #[test]
    fn stats_catch_up_incrementally_after_append() {
        let t = Table::from_batch("t", batch(0..50), 4).unwrap();
        let s1 = t.stats();
        assert_eq!(s1.row_count, 50);
        t.append(&batch(50..90)).unwrap();
        let s2 = t.stats();
        assert_eq!(s2.row_count, 90);
        assert_eq!(s2.distinct_count("id"), 90);
        // Matches a from-scratch computation over the grown table.
        let scratch =
            TableStats::compute(&[t.to_batch().unwrap()]);
        assert_eq!(s2.distinct_count("grp"), scratch.distinct_count("grp"));
        assert_eq!(
            s2.column("id").unwrap().max,
            scratch.column("id").unwrap().max
        );
    }

    #[test]
    fn rows_from_returns_exactly_the_suffix() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        t.append(&batch(100..130)).unwrap();
        let snap = t.snapshot();
        for start in [0usize, 10, 25, 99, 100, 115, 130] {
            let suffix = snap.rows_from(start);
            let rows: usize = suffix.iter().map(RecordBatch::num_rows).sum();
            assert_eq!(rows, 130 - start, "start={start}");
            if let Some(first) = suffix.first() {
                assert_eq!(first.row(0)[0], Value::Int(start as i64));
            }
        }
        assert!(snap.rows_from(130).is_empty());
    }

    #[test]
    fn from_partitions_with_seal_controls_append_granularity() {
        let parts = vec![batch(0..25), batch(25..40)];
        let t = Table::from_partitions_with_seal("t", parts, 25).unwrap();
        assert_eq!(t.seal_rows(), 25);
        // Tail holds 15 of 25 rows: the next append extends it first.
        let r = t.append(&batch(40..60)).unwrap();
        assert!(r.extended_tail);
        assert_eq!(r.new_partitions, 1); // 10 into the tail, 10 sealed
        assert_eq!(t.num_partitions(), 3);
    }

    #[test]
    fn failing_append_sink_aborts_append_before_publish() {
        struct Failing;
        impl AppendSink for Failing {
            fn log_append(&self, _: &str, _: &RecordBatch) -> Result<(), StorageError> {
                Err(StorageError::Io("disk full".to_string()))
            }
        }
        let t = Table::from_batch("t", batch(0..10), 2).unwrap();
        t.set_append_sink(Some(Arc::new(Failing)));
        let err = t.append(&batch(10..20)).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert_eq!(t.num_rows(), 10, "failed append leaves the table unchanged");
        assert_eq!(t.version(), 0);
        // Detaching the sink restores the in-memory append path.
        t.set_append_sink(None);
        assert!(t.append(&batch(10..20)).is_ok());
        assert_eq!(t.num_rows(), 20);
    }

    #[test]
    fn append_sink_sees_batch_before_snapshot_publishes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting {
            rows: AtomicUsize,
        }
        impl AppendSink for Counting {
            fn log_append(&self, table: &str, batch: &RecordBatch) -> Result<(), StorageError> {
                assert_eq!(table, "t");
                self.rows.fetch_add(batch.num_rows(), Ordering::SeqCst);
                Ok(())
            }
        }
        let sink = Arc::new(Counting {
            rows: AtomicUsize::new(0),
        });
        let t = Table::from_batch("t", batch(0..10), 2).unwrap();
        t.set_append_sink(Some(sink.clone()));
        t.append(&batch(10..30)).unwrap();
        t.append(&batch(30..35)).unwrap();
        assert_eq!(sink.rows.load(Ordering::SeqCst), 25);
        // Empty appends are no-ops and never reach the sink.
        let empty = batch(0..10).filter(&[false; 10]);
        t.append(&empty).unwrap();
        assert_eq!(sink.rows.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn create_index_covers_sealed_partitions_only() {
        // 100 rows over 4 partitions => seal at 25, all partitions sealed.
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        let v0 = t.version();
        t.create_index("id").unwrap();
        assert_eq!(t.indexed_columns(), vec!["id".to_string()]);
        assert_eq!(t.version(), v0 + 1, "index publication is a new snapshot");
        let snap = t.snapshot();
        let slots = snap.index("id").unwrap();
        assert_eq!(slots.len(), 4);
        assert!(slots.iter().all(Option::is_some));
        assert!(snap.index_size_bytes() > 0);
        assert!(snap.index("grp").is_none(), "only requested columns indexed");
        // Probing partition 2 (ids 50..75) for id = 60 hits local row 10.
        let hits = slots[2].as_ref().unwrap().probe_eq(&Value::Int(60));
        assert_eq!(hits, vec![(10, 11)]);
        // Idempotent.
        t.create_index("id").unwrap();
        assert_eq!(t.indexed_columns(), vec!["id".to_string()]);
        // Unknown columns are rejected.
        assert!(t.create_index("nope").is_err());
    }

    #[test]
    fn append_maintains_indexes_at_seal_time() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        t.create_index("id").unwrap();
        // 30 appended rows: 25 seal a new partition, 5 form an unsealed tail.
        t.append(&batch(100..130)).unwrap();
        let snap = t.snapshot();
        let slots = snap.index("id").unwrap();
        assert_eq!(slots.len(), snap.num_partitions());
        assert!(slots[4].is_some(), "partition sealed by the append is indexed");
        assert!(slots[5].is_none(), "unsealed tail is never indexed");
        // Old sealed slots are carried forward, not rebuilt.
        let before = t.snapshot();
        t.append(&batch(130..140)).unwrap();
        let after = t.snapshot();
        let (b, a) = (before.index("id").unwrap(), after.index("id").unwrap());
        for i in 0..4 {
            assert!(Arc::ptr_eq(
                b[i].as_ref().unwrap(),
                a[i].as_ref().unwrap()
            ));
        }
        // The tail grew 5 -> 15 rows, still unsealed.
        assert!(a[5].is_none());
        // Growing the tail to its seal bound builds its index in the append.
        t.append(&batch(140..150)).unwrap();
        let snap = t.snapshot();
        let slots = snap.index("id").unwrap();
        let tail_idx = slots[5].as_ref().expect("tail sealed at 25 rows");
        assert_eq!(tail_idx.num_rows(), 25);
        assert_eq!(tail_idx.probe_eq(&Value::Int(149)), vec![(24, 25)]);
    }

    #[test]
    fn indexes_ride_snapshot_publication() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        t.create_index("id").unwrap();
        let old = t.snapshot();
        t.append(&batch(100..200)).unwrap();
        // The pre-append snapshot still describes exactly its own rows.
        let slots = old.index("id").unwrap();
        assert_eq!(slots.len(), old.num_partitions());
        assert!(slots[3]
            .as_ref()
            .unwrap()
            .probe_eq(&Value::Int(99))
            .len()
            == 1);
        // And the new snapshot's index covers the new sealed partitions.
        let new = t.snapshot();
        let slots = new.index("id").unwrap();
        assert_eq!(slots.len(), new.num_partitions());
        let covered: usize = slots
            .iter()
            .flatten()
            .map(|i| i.num_rows())
            .sum();
        assert_eq!(covered, 200, "200 rows in sealed partitions are indexed");
    }

    fn str_batch(range: std::ops::Range<i64>) -> RecordBatch {
        const CATS: [&str; 4] = ["apple", "fig", "pear", "quince"];
        BatchBuilder::new()
            .column("id", range.clone().collect::<Vec<_>>())
            .column(
                "cat",
                range
                    .map(|i| CATS[(i % 4) as usize].to_string())
                    .collect::<Vec<_>>(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn string_partitions_dict_encode_at_seal() {
        // 100 rows over 4 partitions: everything is sealed, so everything
        // dictionary-encodes at construction.
        let t = Table::from_batch("t", str_batch(0..100), 4).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.encoding_counts(), (4, 0));
        for p in snap.partitions() {
            assert!(p.column(1).is_dict_encoded());
            assert!(!p.column(0).is_dict_encoded(), "numeric columns untouched");
        }
        // Logical content is unchanged by encoding.
        let all = t.to_batch().unwrap();
        assert_eq!(all.row(1)[1], Value::Str("fig".to_string()));
        assert_eq!(all.num_rows(), 100);
    }

    #[test]
    fn append_keeps_tail_raw_and_encodes_at_seal() {
        let t = Table::from_batch("t", str_batch(0..100), 4).unwrap();
        // 30 appended rows: 25 seal a new partition (encoded), 5 form an
        // unsealed Utf8 tail.
        t.append(&str_batch(100..130)).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.encoding_counts(), (5, 1));
        assert!(snap.partitions()[4].column(1).is_dict_encoded());
        assert!(!snap.partitions()[5].column(1).is_dict_encoded());
        // Growing the tail to its seal bound encodes it inside the append.
        t.append(&str_batch(130..150)).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.encoding_counts(), (6, 0));
        assert!(snap.partitions()[5].column(1).is_dict_encoded());
        // Row order and values survive the mixed raw/encoded history.
        let all = t.to_batch().unwrap();
        for i in 0..150 {
            assert_eq!(all.row(i)[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn index_over_encoded_partition_probes_strings() {
        let t = Table::from_batch("t", str_batch(0..100), 4).unwrap();
        t.create_index("cat").unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.encoding_counts().0, 4);
        let slots = snap.index("cat").unwrap();
        // Partition 0 holds rows 0..25; "apple" appears at local rows 0,4,8...
        let hits = slots[0].as_ref().unwrap().probe_eq(&Value::Str("apple".into()));
        let covered: usize = hits.iter().map(|(lo, hi)| (hi - lo) as usize).sum();
        assert_eq!(covered, 7, "25 rows, every 4th is apple");
    }

    #[test]
    fn empty_table_accepts_streaming_appends() {
        let schema = batch(0..1).schema().clone();
        let t = Table::empty("stream", schema, 16);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.to_batch().unwrap().num_rows(), 0);
        let r = t.append(&batch(0..40)).unwrap();
        assert!(r.extended_tail, "empty tail partition is unsealed");
        assert_eq!(t.num_rows(), 40);
        assert_eq!(t.num_partitions(), 3); // 16 + 16 + 8
        assert_eq!(t.stats().distinct_count("grp"), 5);
    }

    // --- deletes, updates, compaction -----------------------------------

    fn dead_mask(len: usize, set: &[usize]) -> SelectionMask {
        let mut m = SelectionMask::none(len);
        for &i in set {
            m.set(i);
        }
        m
    }

    fn ids_of(all: &RecordBatch) -> Vec<i64> {
        (0..all.num_rows())
            .map(|i| match all.row(i)[0] {
                Value::Int(v) => v,
                ref v => panic!("unexpected {v:?}"),
            })
            .collect()
    }

    #[test]
    fn delete_tombstones_sealed_and_filters_tail_in_place() {
        // 4 × 25 sealed partitions + a 10-row unsealed tail.
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        t.append(&batch(100..110)).unwrap();
        let v0 = t.version();
        // Rows 3, 30 (sealed) and 105 (tail, local 5).
        let r = t.delete_rows(&[3, 30, 105]).unwrap();
        assert_eq!(r.rows_deleted, 3);
        assert_eq!(t.version(), v0 + 1);
        let snap = t.snapshot();
        // Sealed partitions keep their physical rows, tombstoned beside.
        assert_eq!(snap.partitions()[0].num_rows(), 25);
        assert!(snap.tombstone(0).unwrap().get(3));
        assert!(snap.tombstone(1).unwrap().get(5)); // 30 - 25
        // The tail shrank in place and carries no tombstone.
        assert_eq!(snap.partitions()[4].num_rows(), 9);
        assert!(snap.tombstone(4).is_none());
        assert_eq!(snap.num_rows(), 109);
        assert_eq!(snap.deleted_rows(), 2);
        assert_eq!(snap.live_rows(), 107);
        // Query surfaces exclude all three.
        let ids = ids_of(&snap.to_batch().unwrap());
        assert!(!ids.contains(&3) && !ids.contains(&30) && !ids.contains(&105));
        assert_eq!(ids.len(), 107);
    }

    #[test]
    fn delete_is_idempotent_and_validates_range() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        assert!(t.delete_rows(&[100]).is_err(), "past-the-end rejected");
        assert_eq!(t.version(), 0, "failed delete publishes nothing");
        let r = t.delete_rows(&[7, 7, 9]).unwrap();
        assert_eq!(r.rows_deleted, 2);
        assert_eq!(t.deletes_logged(), 2);
        // Re-deleting dead rows is a no-op without a version bump.
        let v = t.version();
        let r = t.delete_rows(&[7, 9]).unwrap();
        assert_eq!(r.rows_deleted, 0);
        assert_eq!(t.version(), v);
        assert_eq!(t.deletes_logged(), 2);
        // Mixed live/dead deletes count only the live ones.
        let r = t.delete_rows(&[7, 8]).unwrap();
        assert_eq!(r.rows_deleted, 1);
        assert_eq!(t.live_rows(), 97);
    }

    #[test]
    fn old_snapshots_survive_deletes_unchanged() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        let before = t.snapshot();
        t.delete_rows(&[0, 1, 2]).unwrap();
        assert!(!before.has_tombstones());
        assert_eq!(before.live_rows(), 100);
        assert_eq!(t.snapshot().live_rows(), 97);
        // The partitions themselves are shared, never rewritten.
        assert!(Arc::ptr_eq(
            &before.partitions()[0],
            &t.snapshot().partitions()[0]
        ));
    }

    #[test]
    fn update_rows_is_delete_plus_append() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        // Replace rows 10..15 with re-keyed rows 200..205.
        let positions: Vec<usize> = (10..15).collect();
        let r = t.update_rows(&positions, &batch(200..205)).unwrap();
        assert_eq!(r.rows_deleted, 5);
        assert_eq!(r.rows_appended, 5);
        assert_eq!(t.version(), 2, "delete and append each publish once");
        assert_eq!(t.live_rows(), 100);
        assert_eq!(t.num_rows(), 105);
        let ids = ids_of(&t.to_batch().unwrap());
        assert!(!ids.contains(&12));
        assert!(ids.contains(&203), "replacement rows appended at the end");
        // Schema mismatches are rejected before any half runs.
        let wrong = BatchBuilder::new().column("x", vec![1.0f64]).build().unwrap();
        assert!(t.update_rows(&[0], &wrong).is_err());
        assert_eq!(t.live_rows(), 100);
    }

    #[test]
    fn compact_drops_dead_rows_and_rebuilds_metadata() {
        let t = Table::from_batch("t", str_batch(0..100), 4).unwrap();
        t.create_index("id").unwrap();
        // Kill 13 of 25 rows in partition 0, 2 of 25 in partition 1.
        let mut doomed: Vec<usize> = (0..25).filter(|i| i % 2 == 0).collect();
        doomed.extend([30, 31]);
        t.delete_rows(&doomed).unwrap();
        let logged = t.deletes_logged();
        let before = t.snapshot();
        assert_eq!(before.deleted_rows(), 15);
        // Threshold 0.5: only partition 0 (13/25 dead) qualifies.
        let r = t.compact(0.5).unwrap();
        assert_eq!(r.partitions_compacted, 1);
        assert_eq!(r.rows_dropped, 13);
        assert_eq!(t.deletes_logged(), logged + 13);
        let snap = t.snapshot();
        assert_eq!(snap.partitions()[0].num_rows(), 12);
        assert!(snap.tombstone(0).is_none(), "compacted slot is clean");
        assert!(snap.tombstone(1).is_some(), "below-threshold slot remains");
        assert_eq!(snap.deleted_rows(), 2);
        assert_eq!(snap.live_rows(), 85);
        // Dict encoding survives the codes-domain filter.
        assert!(snap.partitions()[0].column(1).is_dict_encoded());
        // The rebuilt zone has exact bounds over the survivors (odd ids).
        let z = &snap.zones()[0];
        assert_eq!(z.column("id").unwrap().min, Value::Int(1));
        assert_eq!(z.column("id").unwrap().max, Value::Int(23));
        // The rebuilt index slot covers exactly the live rows.
        let slots = snap.index("id").unwrap();
        assert_eq!(slots[0].as_ref().unwrap().num_rows(), 12);
        assert!(slots[0].as_ref().unwrap().probe_eq(&Value::Int(0)).is_empty());
        // Untouched sealed slots are carried forward Arc-shared.
        assert!(Arc::ptr_eq(
            before.index("id").unwrap()[2].as_ref().unwrap(),
            slots[2].as_ref().unwrap()
        ));
        // Answers are unchanged by compaction.
        let ids = ids_of(&snap.to_batch().unwrap());
        let expect: Vec<i64> = (0..100i64)
            .filter(|i| !doomed.contains(&(*i as usize)))
            .collect();
        assert_eq!(ids, expect);
        // A second compaction at the same threshold finds nothing new.
        let r = t.compact(0.5).unwrap();
        assert_eq!(r.partitions_compacted, 0);
        assert_eq!(r.version, snap.version());
    }

    #[test]
    fn compact_never_touches_the_trailing_partition() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        // Partition 3 (rows 75..100) is trailing; delete most of it.
        t.delete_rows(&(75..95).collect::<Vec<_>>()).unwrap();
        let r = t.compact(0.0).unwrap();
        assert_eq!(r.partitions_compacted, 0, "trailing partition is skipped");
        assert_eq!(t.snapshot().partitions()[3].num_rows(), 25);
        // Once an append rotates a new tail in, the old one compacts.
        t.append(&batch(100..130)).unwrap();
        let r = t.compact(0.0).unwrap();
        assert_eq!(r.partitions_compacted, 1);
        assert_eq!(r.rows_dropped, 20);
        assert_eq!(t.snapshot().partitions()[3].num_rows(), 5);
        assert_eq!(t.live_rows(), 110);
    }

    #[test]
    fn stats_rebuild_excludes_deleted_rows() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        assert_eq!(t.stats().row_count, 100);
        t.delete_rows(&(0..20).collect::<Vec<_>>()).unwrap();
        let s = t.stats();
        assert_eq!(s.row_count, 80, "tombstoned rows drop out of the stats");
        assert_eq!(s.column("id").unwrap().min, Some(Value::Int(20)));
        // Appends after the rebuild catch up incrementally again.
        t.append(&batch(100..130)).unwrap();
        let s = t.stats();
        assert_eq!(s.row_count, 110);
        assert_eq!(s.column("id").unwrap().max, Some(Value::Int(129)));
        // Compaction invalidates too and the rebuild agrees with scratch.
        t.compact(0.0).unwrap();
        let s = t.stats();
        let scratch = TableStats::compute(&[t.to_batch().unwrap()]);
        assert_eq!(s.row_count, scratch.row_count);
        assert_eq!(s.distinct_count("id"), scratch.distinct_count("id"));
    }

    #[test]
    fn mutation_sinks_observe_deletes_and_rewrites() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Recording {
            deletes: Mutex<Vec<Vec<usize>>>,
            rewrites: AtomicUsize,
            rewrite_deletes_logged: AtomicUsize,
        }
        impl AppendSink for Recording {
            fn log_append(&self, _: &str, _: &RecordBatch) -> Result<(), StorageError> {
                Ok(())
            }
            fn log_delete(&self, table: &str, positions: &[usize]) -> Result<(), StorageError> {
                assert_eq!(table, "t");
                self.deletes.lock().push(positions.to_vec());
                Ok(())
            }
            fn log_rewrite(
                &self,
                table: &str,
                seal_rows: usize,
                partitions: &[Arc<RecordBatch>],
                tombstones: &[Option<Arc<SelectionMask>>],
                deletes_logged: u64,
            ) -> Result<(), StorageError> {
                assert_eq!(table, "t");
                assert_eq!(seal_rows, 25);
                assert_eq!(partitions.len(), tombstones.len());
                self.rewrites.fetch_add(1, Ordering::SeqCst);
                self.rewrite_deletes_logged
                    .store(deletes_logged as usize, Ordering::SeqCst);
                Ok(())
            }
        }
        let sink = Arc::new(Recording::default());
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        t.set_append_sink(Some(sink.clone()));
        // Only the effective (live) positions reach the log.
        t.delete_rows(&[5, 6]).unwrap();
        t.delete_rows(&[6, 7]).unwrap();
        assert_eq!(*sink.deletes.lock(), vec![vec![5, 6], vec![7]]);
        // A delete with no live positions never reaches the sink.
        t.delete_rows(&[5]).unwrap();
        assert_eq!(sink.deletes.lock().len(), 2);
        // Compaction logs one rewrite carrying the advanced counter.
        t.compact(0.0).unwrap();
        assert_eq!(sink.rewrites.load(Ordering::SeqCst), 1);
        assert_eq!(sink.rewrite_deletes_logged.load(Ordering::SeqCst), 6);
        assert_eq!(t.deletes_logged(), 6);
        // A failing delete sink aborts before anything publishes.
        struct Failing;
        impl AppendSink for Failing {
            fn log_append(&self, _: &str, _: &RecordBatch) -> Result<(), StorageError> {
                Ok(())
            }
            fn log_delete(&self, _: &str, _: &[usize]) -> Result<(), StorageError> {
                Err(StorageError::Io("disk full".to_string()))
            }
        }
        let live = t.live_rows();
        let v = t.version();
        t.set_append_sink(Some(Arc::new(Failing)));
        assert!(t.delete_rows(&[40]).is_err());
        assert_eq!(t.live_rows(), live);
        assert_eq!(t.version(), v);
    }

    #[test]
    fn from_recovered_restores_tombstones_and_counter() {
        let parts = vec![batch(0..25), batch(25..50), batch(50..60)];
        let tombs = vec![Some(dead_mask(25, &[1, 24])), None, None];
        let t = Table::from_recovered("t", parts.clone(), tombs, 25, 7).unwrap();
        assert_eq!(t.deletes_logged(), 7);
        assert_eq!(t.num_rows(), 60);
        assert_eq!(t.live_rows(), 58);
        assert!(t.snapshot().tombstone(0).unwrap().get(24));
        assert_eq!(t.to_batch().unwrap().num_rows(), 58);
        // Mask length must match the partition.
        let bad = vec![Some(SelectionMask::none(10)), None, None];
        assert!(Table::from_recovered("t", parts.clone(), bad, 25, 0).is_err());
        // The unsealed tail (10 < 25 rows) cannot carry live tombstones.
        let bad = vec![None, None, Some(dead_mask(10, &[3]))];
        assert!(Table::from_recovered("t", parts.clone(), bad, 25, 0).is_err());
        // Slot-count mismatches are corrupt.
        assert!(Table::from_recovered("t", parts, vec![None], 25, 0).is_err());
    }

    #[test]
    fn live_batches_borrow_untouched_partitions() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        t.delete_rows(&[30]).unwrap();
        let snap = t.snapshot();
        let live = snap.live_batches();
        assert_eq!(live.len(), 4);
        assert!(matches!(live[0], Cow::Borrowed(_)));
        assert!(matches!(live[1], Cow::Owned(_)));
        assert_eq!(live[1].num_rows(), 24);
        let total: usize = live.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, snap.live_rows());
    }
}
