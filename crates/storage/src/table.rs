//! Partitioned tables.

use parking_lot::RwLock;
use std::sync::Arc;

use crate::batch::RecordBatch;
use crate::error::StorageError;
use crate::partition::split_batch;
use crate::schema::SchemaRef;
use crate::stats::{PartitionZones, TableStats};

/// A named, horizontally partitioned table.
///
/// Statistics are computed lazily on first access (mirroring Taster, which
/// collects dataset statistics "during the first access to any table") and
/// cached thereafter.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    partitions: Vec<RecordBatch>,
    stats: RwLock<Option<Arc<TableStats>>>,
    zones: RwLock<Option<Arc<Vec<PartitionZones>>>>,
}

impl Table {
    /// Create a table from a single batch, splitting it into `partitions`
    /// chunks (the distribution factor `D`).
    pub fn from_batch(
        name: impl Into<String>,
        batch: RecordBatch,
        partitions: usize,
    ) -> Result<Self, StorageError> {
        let schema = batch.schema().clone();
        let parts = split_batch(&batch, partitions);
        Ok(Self {
            name: name.into(),
            schema,
            partitions: parts,
            stats: RwLock::new(None),
            zones: RwLock::new(None),
        })
    }

    /// Create a table directly from pre-built partitions (they must share a
    /// schema).
    pub fn from_partitions(
        name: impl Into<String>,
        partitions: Vec<RecordBatch>,
    ) -> Result<Self, StorageError> {
        let Some(first) = partitions.first() else {
            return Err(StorageError::Invalid(
                "a table needs at least one (possibly empty) partition".to_string(),
            ));
        };
        let schema = first.schema().clone();
        for p in &partitions {
            if p.schema().as_ref() != schema.as_ref() {
                return Err(StorageError::Invalid(
                    "all partitions of a table must share a schema".to_string(),
                ));
            }
        }
        Ok(Self {
            name: name.into(),
            schema,
            partitions,
            stats: RwLock::new(None),
            zones: RwLock::new(None),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The table's partitions.
    pub fn partitions(&self) -> &[RecordBatch] {
        &self.partitions
    }

    /// Number of partitions (distribution factor `D`).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of rows.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(RecordBatch::num_rows).sum()
    }

    /// Approximate total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.partitions.iter().map(RecordBatch::size_bytes).sum()
    }

    /// All rows concatenated into one batch (used by small dimension tables
    /// and by tests; fact tables are normally consumed partition-by-partition).
    pub fn to_batch(&self) -> Result<RecordBatch, StorageError> {
        RecordBatch::concat(&self.partitions)
    }

    /// Table statistics, computed on first call and cached.
    pub fn stats(&self) -> Arc<TableStats> {
        if let Some(stats) = self.stats.read().as_ref() {
            return stats.clone();
        }
        let mut guard = self.stats.write();
        if let Some(stats) = guard.as_ref() {
            return stats.clone();
        }
        let stats = Arc::new(TableStats::compute(&self.partitions));
        *guard = Some(stats.clone());
        stats
    }

    /// `true` once statistics have been computed (used by tests asserting the
    /// lazy, first-access behaviour).
    pub fn stats_computed(&self) -> bool {
        self.stats.read().is_some()
    }

    /// Per-partition zone maps (min/max per column), computed on first access
    /// and cached. `exec_scan` consults these to skip partitions that cannot
    /// satisfy a filter.
    pub fn zones(&self) -> Arc<Vec<PartitionZones>> {
        if let Some(zones) = self.zones.read().as_ref() {
            return zones.clone();
        }
        let mut guard = self.zones.write();
        if let Some(zones) = guard.as_ref() {
            return zones.clone();
        }
        let zones = Arc::new(
            self.partitions
                .iter()
                .map(PartitionZones::compute)
                .collect::<Vec<_>>(),
        );
        *guard = Some(zones.clone());
        zones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchBuilder;

    fn batch(n: usize) -> RecordBatch {
        BatchBuilder::new()
            .column("id", (0..n as i64).collect::<Vec<_>>())
            .column("grp", (0..n as i64).map(|i| i % 5).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn from_batch_partitions_rows() {
        let t = Table::from_batch("t", batch(100), 8).unwrap();
        assert_eq!(t.num_partitions(), 8);
        assert_eq!(t.num_rows(), 100);
        assert_eq!(t.to_batch().unwrap().num_rows(), 100);
    }

    #[test]
    fn stats_are_lazy_and_cached() {
        let t = Table::from_batch("t", batch(50), 4).unwrap();
        assert!(!t.stats_computed());
        let s1 = t.stats();
        assert!(t.stats_computed());
        let s2 = t.stats();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(s1.distinct_count("grp"), 5);
    }

    #[test]
    fn zones_are_cached_and_reflect_contiguous_split() {
        let t = Table::from_batch("t", batch(100), 4).unwrap();
        let z1 = t.zones();
        let z2 = t.zones();
        assert!(Arc::ptr_eq(&z1, &z2));
        assert_eq!(z1.len(), 4);
        // Contiguous split: partition 0 holds ids 0..25, partition 3 75..100.
        use crate::value::Value;
        assert_eq!(z1[0].column("id").unwrap().max, Value::Int(24));
        assert_eq!(z1[3].column("id").unwrap().min, Value::Int(75));
    }

    #[test]
    fn partitions_must_share_schema() {
        let a = batch(10);
        let b = BatchBuilder::new()
            .column("other", vec![1.0f64])
            .build()
            .unwrap();
        assert!(Table::from_partitions("t", vec![a, b]).is_err());
        assert!(Table::from_partitions("t", vec![]).is_err());
    }
}
