//! Partitioned tables with an online append path.
//!
//! A [`Table`] publishes its data as immutable [`TableSnapshot`]s: the
//! partition list and the zone maps derived from exactly those partitions
//! travel together, so a scan that prunes against a snapshot's zones can
//! never disagree with the rows it reads. [`Table::append`] installs a new
//! snapshot copy-on-write — partitions are `Arc`-shared, only the grown tail
//! partition is rewritten — which makes appends safe to run concurrently
//! with scans, samplers and synopsis builds holding older snapshots.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::batch::RecordBatch;
use crate::error::StorageError;
use crate::index::{ColumnIndexes, PartitionIndex};
use crate::partition::split_batch;
use crate::schema::SchemaRef;
use crate::stats::{PartitionZones, TableStats, TableStatsBuilder};

/// An immutable, internally consistent view of a table: the partitions plus
/// the zone maps computed from exactly those partitions.
///
/// Snapshots are what scans, samplers and synopsis builders operate on; a
/// concurrent [`Table::append`] publishes a *new* snapshot and never mutates
/// one that has been handed out. Zone maps are computed lazily per snapshot
/// (first pruning scan pays) and maintained incrementally across appends:
/// when the parent snapshot had zones, the child widens the tail zone with
/// the appended slice instead of rescanning.
#[derive(Debug)]
pub struct TableSnapshot {
    schema: SchemaRef,
    partitions: Vec<Arc<RecordBatch>>,
    zones: OnceLock<Vec<PartitionZones>>,
    /// Sparse secondary indexes, one per-partition slot vector per indexed
    /// column. Slots are `Some` only for sealed partitions; the unsealed
    /// tail is always `None` and is scanned. Like `zones`, the indexes are
    /// published atomically with the partitions they describe.
    indexes: HashMap<String, ColumnIndexes>,
    version: u64,
    num_rows: usize,
    size_bytes: usize,
}

impl TableSnapshot {
    fn new(schema: SchemaRef, partitions: Vec<Arc<RecordBatch>>, version: u64) -> Self {
        let num_rows = partitions.iter().map(|p| p.num_rows()).sum();
        let size_bytes = partitions.iter().map(|p| p.size_bytes()).sum();
        Self {
            schema,
            partitions,
            zones: OnceLock::new(),
            indexes: HashMap::new(),
            version,
            num_rows,
            size_bytes,
        }
    }

    /// The snapshot's partitions.
    pub fn partitions(&self) -> &[Arc<RecordBatch>] {
        &self.partitions
    }

    /// Zone maps for every partition, computed on first access and cached in
    /// the snapshot. Always consistent with [`partitions`](Self::partitions):
    /// both live in the same immutable snapshot.
    pub fn zones(&self) -> &[PartitionZones] {
        self.zones.get_or_init(|| {
            self.partitions
                .iter()
                .map(|p| PartitionZones::compute(p))
                .collect()
        })
    }

    /// Per-partition secondary index slots for `column`, if an index was
    /// created for it ([`Table::create_index`]). The returned slice is
    /// parallel to [`partitions`](Self::partitions); a `None` slot (the
    /// unsealed tail, or a partition sealed before indexing caught up) must
    /// be scanned instead of probed.
    pub fn index(&self, column: &str) -> Option<&[Option<Arc<PartitionIndex>>]> {
        self.indexes.get(column).map(|v| v.as_slice())
    }

    /// Columns with a secondary index in this snapshot (sorted).
    pub fn indexed_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self.indexes.keys().cloned().collect();
        cols.sort();
        cols
    }

    /// Approximate in-memory size of all secondary indexes, in bytes.
    pub fn index_size_bytes(&self) -> usize {
        self.indexes
            .values()
            .flatten()
            .flatten()
            .map(|idx| idx.size_bytes())
            .sum()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total rows in the snapshot.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Monotonic snapshot version (bumped by every append).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The schema shared by all partitions.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// All rows concatenated into one batch.
    pub fn to_batch(&self) -> Result<RecordBatch, StorageError> {
        if self.partitions.is_empty() {
            return Ok(RecordBatch::empty(self.schema.clone()));
        }
        let refs: Vec<&RecordBatch> = self.partitions.iter().map(|p| p.as_ref()).collect();
        RecordBatch::concat_refs(&refs)
    }

    /// Count of `(dict-encoded, plain-utf8)` string-bearing partitions in
    /// this snapshot, for explain output. Partitions without string columns
    /// count toward neither; a snapshot of a string table normally reports
    /// every sealed partition as dict and at most the unsealed tail as raw.
    pub fn encoding_counts(&self) -> (usize, usize) {
        let mut dict = 0usize;
        let mut raw = 0usize;
        for p in &self.partitions {
            if p.has_dict_columns() {
                dict += 1;
            } else if p.has_plain_utf8() {
                raw += 1;
            }
        }
        (dict, raw)
    }

    /// The rows at global positions `start..` as a sequence of batches
    /// (partition suffixes). Because appends only ever extend the tail, the
    /// global row order of a table is stable: position `k` refers to the same
    /// row in every snapshot that contains it. This is the delta-read used by
    /// incremental synopsis refresh and stats catch-up.
    pub fn rows_from(&self, start: usize) -> Vec<RecordBatch> {
        let mut out = Vec::new();
        let mut offset = 0usize;
        for p in &self.partitions {
            let end = offset + p.num_rows();
            if end > start {
                if offset >= start {
                    out.push(p.as_ref().clone());
                } else {
                    out.push(p.slice(start - offset, end - start));
                }
            }
            offset = end;
        }
        out
    }
}

/// What one [`Table::append`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// Rows appended.
    pub rows: usize,
    /// `true` if the (unsealed) tail partition was extended in place.
    pub extended_tail: bool,
    /// Number of new partitions created for the overflow.
    pub new_partitions: usize,
    /// The snapshot version the append produced.
    pub version: u64,
}

/// Cached statistics plus the streaming builder that produced them, so later
/// appends only fold in the delta rows.
#[derive(Debug)]
struct StatsCache {
    builder: TableStatsBuilder,
    stats: Arc<TableStats>,
    version: u64,
}

/// Write-ahead hook invoked by [`Table::append`] **before** the new snapshot
/// is published.
///
/// A durability layer implements this to log the batch (and make it durable)
/// while the table's append lock is held, giving WAL-before-data ordering: if
/// the sink returns an error the append is aborted and the table is
/// unchanged; if the process crashes after the sink succeeded but before the
/// snapshot swap, replaying the log reapplies the batch — the recovered table
/// is always a prefix of acknowledged appends.
pub trait AppendSink: Send + Sync {
    /// Durably record `batch` as the next append to table `table`.
    fn log_append(&self, table: &str, batch: &RecordBatch) -> Result<(), StorageError>;
}

/// A named, horizontally partitioned table supporting online appends.
///
/// Statistics are computed lazily on first access (mirroring Taster, which
/// collects dataset statistics "during the first access to any table") and
/// maintained **incrementally** thereafter: an append does not invalidate the
/// statistics wholesale, the resident [`TableStatsBuilder`] absorbs exactly
/// the new rows on the next [`stats`](Table::stats) call.
///
/// # Examples
///
/// Appends extend the unsealed tail partition, seal overflow into new
/// partitions, and bump the snapshot version — scans planned against an older
/// snapshot keep reading exactly the rows they planned over:
///
/// ```
/// use taster_storage::batch::BatchBuilder;
/// use taster_storage::Table;
///
/// let seed = BatchBuilder::new()
///     .column("id", (0..100i64).collect::<Vec<_>>())
///     .build()
///     .unwrap();
/// // 4 partitions of 25 rows; partitions seal at 25 rows.
/// let t = Table::from_batch("t", seed, 4).unwrap();
/// let before = t.snapshot();
///
/// let more = BatchBuilder::new()
///     .column("id", (100..160i64).collect::<Vec<_>>())
///     .build()
///     .unwrap();
/// let report = t.append(&more).unwrap();
/// assert_eq!(report.rows, 60);
/// assert_eq!(report.new_partitions, 3); // 60 overflow rows → 3 × 25-row cap
///
/// assert_eq!(t.num_rows(), 160);
/// assert_eq!(before.num_rows(), 100, "old snapshot is untouched");
/// assert!(t.snapshot().version() > before.version());
/// ```
pub struct Table {
    name: String,
    schema: SchemaRef,
    /// Rows at which a partition seals; appends extend the tail partition up
    /// to this bound and then start new partitions.
    seal_rows: usize,
    current: RwLock<Arc<TableSnapshot>>,
    /// Serializes appenders so the heavy work (tail clone, zone computation)
    /// happens *outside* the `current` write lock: readers taking snapshots
    /// only ever block on the final pointer swap.
    append_lock: Mutex<()>,
    stats: RwLock<Option<StatsCache>>,
    /// Optional write-ahead hook consulted (under the append lock) before a
    /// new snapshot is published.
    append_sink: RwLock<Option<Arc<dyn AppendSink>>>,
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("schema", &self.schema)
            .field("seal_rows", &self.seal_rows)
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl Table {
    fn build(
        name: String,
        schema: SchemaRef,
        mut partitions: Vec<Arc<RecordBatch>>,
        seal_rows: usize,
    ) -> Self {
        let seal_rows = seal_rows.max(1);
        // Seal-time dictionary encoding: every partition that is born sealed
        // (non-tail, or tail at its seal bound) gets its string columns
        // dictionary-encoded; the mutable unsealed tail stays Utf8 — the same
        // contract as index-at-seal. Recovered partitions that are already
        // encoded (the codec round-trips dictionaries) are left as-is.
        let last = partitions.len().saturating_sub(1);
        for (i, slot) in partitions.iter_mut().enumerate() {
            let sealed = i < last || slot.num_rows() >= seal_rows;
            if sealed && slot.has_plain_utf8() {
                *slot = Arc::new(slot.dict_encode_strings());
            }
        }
        Self {
            name,
            schema: schema.clone(),
            seal_rows,
            current: RwLock::new(Arc::new(TableSnapshot::new(schema, partitions, 0))),
            append_lock: Mutex::new(()),
            stats: RwLock::new(None),
            append_sink: RwLock::new(None),
        }
    }

    /// Create a table from a single batch, splitting it into `partitions`
    /// chunks (the distribution factor `D`). Partitions seal at the resulting
    /// chunk size, so appends keep roughly the same partition granularity.
    pub fn from_batch(
        name: impl Into<String>,
        batch: RecordBatch,
        partitions: usize,
    ) -> Result<Self, StorageError> {
        let schema = batch.schema().clone();
        let seal_rows = batch.num_rows().div_ceil(partitions.max(1)).max(1);
        let parts = split_batch(&batch, partitions)
            .into_iter()
            .map(Arc::new)
            .collect();
        Ok(Self::build(name.into(), schema, parts, seal_rows))
    }

    /// Create a table directly from pre-built partitions (they must share a
    /// schema). Partitions seal at the size of the largest one.
    pub fn from_partitions(
        name: impl Into<String>,
        partitions: Vec<RecordBatch>,
    ) -> Result<Self, StorageError> {
        let seal = partitions.iter().map(RecordBatch::num_rows).max().unwrap_or(1);
        Self::from_partitions_with_seal(name, partitions, seal)
    }

    /// Like [`from_partitions`](Self::from_partitions) but with an explicit
    /// partition seal size, so a recovered table reproduces the append
    /// behaviour of the table it was checkpointed from (whose tail partition
    /// may have been smaller than its seal bound).
    pub fn from_partitions_with_seal(
        name: impl Into<String>,
        partitions: Vec<RecordBatch>,
        seal_rows: usize,
    ) -> Result<Self, StorageError> {
        let Some(first) = partitions.first() else {
            return Err(StorageError::Invalid(
                "a table needs at least one (possibly empty) partition".to_string(),
            ));
        };
        let schema = first.schema().clone();
        for p in &partitions {
            if p.schema().as_ref() != schema.as_ref() {
                return Err(StorageError::Invalid(
                    "all partitions of a table must share a schema".to_string(),
                ));
            }
        }
        let parts = partitions.into_iter().map(Arc::new).collect();
        Ok(Self::build(name.into(), schema, parts, seal_rows))
    }

    /// Create an empty, append-only table (one empty partition) for
    /// pure-streaming ingestion. `seal_rows` is the partition size appends
    /// fill up to before starting a new partition.
    pub fn empty(name: impl Into<String>, schema: SchemaRef, seal_rows: usize) -> Self {
        let parts = vec![Arc::new(RecordBatch::empty(schema.clone()))];
        Self::build(name.into(), schema, parts, seal_rows)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The current snapshot: partitions and their zone maps, consistent with
    /// each other. Readers that look at partitions *and* zones (e.g. a
    /// pruning scan) must take one snapshot and use both sides of it — two
    /// separate calls could straddle an append.
    pub fn snapshot(&self) -> Arc<TableSnapshot> {
        self.current.read().clone()
    }

    /// The partition seal size (rows) governing the append path.
    pub fn seal_rows(&self) -> usize {
        self.seal_rows
    }

    /// Attach (or replace) the write-ahead [`AppendSink`] consulted by every
    /// subsequent [`append`](Self::append). Pass-through for in-memory
    /// tables; the durability layer installs one when persistence is enabled.
    pub fn set_append_sink(&self, sink: Option<Arc<dyn AppendSink>>) {
        *self.append_sink.write() = sink;
    }

    /// Current snapshot version (0 for a freshly created table; +1 per
    /// append).
    pub fn version(&self) -> u64 {
        self.current.read().version()
    }

    /// Number of partitions (distribution factor `D`) in the current
    /// snapshot.
    pub fn num_partitions(&self) -> usize {
        self.current.read().num_partitions()
    }

    /// Total number of rows in the current snapshot.
    pub fn num_rows(&self) -> usize {
        self.current.read().num_rows()
    }

    /// Approximate total size in bytes of the current snapshot.
    pub fn size_bytes(&self) -> usize {
        self.current.read().size_bytes()
    }

    /// All rows concatenated into one batch (used by small dimension tables
    /// and by tests; fact tables are normally consumed partition-by-partition).
    pub fn to_batch(&self) -> Result<RecordBatch, StorageError> {
        self.snapshot().to_batch()
    }

    /// Append a batch of rows.
    ///
    /// The unsealed tail partition is extended up to
    /// [`seal_rows`](Self::seal_rows); overflow rows seal into new partitions
    /// of at most `seal_rows` rows each. Zone maps are maintained
    /// incrementally — the grown tail's zone widens with the appended slice's
    /// zone, new partitions get fresh zones — and the new (partitions, zones)
    /// pair is published atomically as one snapshot, so a concurrent pruning
    /// scan either sees the old data with the old zones or the new data with
    /// the new zones, never a stale mix.
    pub fn append(&self, batch: &RecordBatch) -> Result<AppendReport, StorageError> {
        if batch.schema().as_ref() != self.schema.as_ref() {
            return Err(StorageError::Invalid(format!(
                "append to table '{}' with a different schema",
                self.name
            )));
        }
        // Appends serialize on their own mutex; the snapshot read below is
        // therefore stable (only appenders replace it), and all the heavy
        // work runs without holding the `current` write lock — readers block
        // only on the final pointer swap.
        let _appender = self.append_lock.lock();
        let old = self.snapshot();
        if batch.num_rows() == 0 {
            return Ok(AppendReport {
                rows: 0,
                extended_tail: false,
                new_partitions: 0,
                version: old.version(),
            });
        }

        // WAL-before-data: make the batch durable before any in-memory state
        // changes. A sink failure aborts the append with the table unchanged;
        // a crash after this point is repaired by log replay.
        let sink = self.append_sink.read().clone();
        if let Some(sink) = sink {
            sink.log_append(&self.name, batch)?;
        }

        let mut partitions = old.partitions.clone();
        // Maintain zones only if the parent snapshot had computed them;
        // otherwise the child recomputes lazily on first pruning scan.
        let mut zones = old.zones.get().cloned();

        let mut offset = 0usize;
        let mut extended_tail = false;
        // `last_mut` (not `last` + indexed writeback) keeps the borrow local
        // and avoids any unwrap on the tail slot.
        if let Some(tail_slot) = partitions.last_mut() {
            if tail_slot.num_rows() < self.seal_rows {
                let take = (self.seal_rows - tail_slot.num_rows()).min(batch.num_rows());
                let slice = batch.slice(0, take);
                let mut grown = tail_slot.as_ref().clone();
                grown.append(&slice)?;
                if let Some(tail_zone) = zones.as_mut().and_then(|z| z.last_mut()) {
                    tail_zone.extend_with(&PartitionZones::compute(&slice));
                }
                *tail_slot = Arc::new(grown);
                offset = take;
                extended_tail = true;
            }
        }
        let mut new_partitions = 0usize;
        while offset < batch.num_rows() {
            let len = self.seal_rows.min(batch.num_rows() - offset);
            let part = batch.slice(offset, len);
            if let Some(zones) = zones.as_mut() {
                zones.push(PartitionZones::compute(&part));
            }
            partitions.push(Arc::new(part));
            offset += len;
            new_partitions += 1;
        }

        // Seal-time dictionary encoding, mirroring the index contract below:
        // any partition that sealed during *this* append re-encodes its
        // string columns before indexes build over it and the snapshot
        // publishes. The new unsealed tail stays Utf8 so later appends can
        // keep extending it in place. Zones were computed from the raw
        // slices above, which is equivalent — encoding never changes values.
        let old_n = old.partitions.len();
        if old_n > 0 {
            let tail = &mut partitions[old_n - 1];
            if tail.num_rows() >= self.seal_rows && tail.has_plain_utf8() {
                *tail = Arc::new(tail.dict_encode_strings());
            }
        }
        for part in &mut partitions[old_n..] {
            if part.num_rows() >= self.seal_rows && part.has_plain_utf8() {
                *part = Arc::new(part.dict_encode_strings());
            }
        }

        // Seal-time index maintenance: sealed partitions are immutable, so
        // their index slots are carried forward `Arc`-shared; any partition
        // that sealed during *this* append (the grown tail reaching
        // `seal_rows`, or overflow partitions of exactly `seal_rows` rows)
        // gets its index built now. The new unsealed tail keeps a `None`
        // slot and is always scanned — appends therefore never invalidate a
        // published index.
        let mut indexes = old.indexes.clone();
        for (col, slots) in indexes.iter_mut() {
            if old_n > 0 && slots.len() == old_n {
                let tail = &partitions[old_n - 1];
                if slots[old_n - 1].is_none() && tail.num_rows() >= self.seal_rows {
                    slots[old_n - 1] = PartitionIndex::build(tail, col).ok().map(Arc::new);
                }
            }
            for part in &partitions[old_n..] {
                slots.push(if part.num_rows() >= self.seal_rows {
                    PartitionIndex::build(part, col).ok().map(Arc::new)
                } else {
                    None
                });
            }
        }

        let mut snap = TableSnapshot::new(self.schema.clone(), partitions, old.version() + 1);
        snap.indexes = indexes;
        if let Some(zones) = zones {
            let _ = snap.zones.set(zones);
        }
        let version = snap.version();
        *self.current.write() = Arc::new(snap);
        Ok(AppendReport {
            rows: batch.num_rows(),
            extended_tail,
            new_partitions,
            version,
        })
    }

    /// Create a sparse secondary index on `column`.
    ///
    /// Indexes are built for every currently *sealed* partition (a partition
    /// holding at least [`seal_rows`](Self::seal_rows) rows, plus every
    /// non-tail partition, which can never grow again); the unsealed tail is
    /// left unindexed and is always scanned. The indexed snapshot is
    /// published atomically, and subsequent [`append`](Self::append)s
    /// maintain the index at seal time: partitions sealed by an append are
    /// indexed inside that append, sealed partitions carry their index
    /// forward `Arc`-shared. Idempotent — indexing an already indexed
    /// column re-publishes without rebuilding sealed slots.
    ///
    /// # Examples
    ///
    /// ```
    /// use taster_storage::batch::BatchBuilder;
    /// use taster_storage::value::Value;
    /// use taster_storage::Table;
    ///
    /// let b = BatchBuilder::new()
    ///     .column("id", (0..100i64).collect::<Vec<_>>())
    ///     .build()
    ///     .unwrap();
    /// let t = Table::from_batch("t", b, 4).unwrap();
    /// t.create_index("id").unwrap();
    /// let snap = t.snapshot();
    /// let slots = snap.index("id").unwrap();
    /// // Partition 1 holds ids 25..50: probing 30 hits exactly one row.
    /// let hits = slots[1].as_ref().unwrap().probe_eq(&Value::Int(30));
    /// assert_eq!(hits, vec![(5, 6)]);
    /// ```
    pub fn create_index(&self, column: &str) -> Result<(), StorageError> {
        // Validate against the schema up front so the append path can treat
        // per-partition build failures as impossible.
        self.schema.index_of(column)?;
        let _appender = self.append_lock.lock();
        let old = self.snapshot();
        if old.indexes.contains_key(column) {
            return Ok(());
        }
        let last = old.partitions.len().saturating_sub(1);
        let slots: ColumnIndexes = old
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let sealed = i < last || p.num_rows() >= self.seal_rows;
                if sealed {
                    PartitionIndex::build(p, column).ok().map(Arc::new)
                } else {
                    None
                }
            })
            .collect();
        let mut snap = TableSnapshot::new(
            self.schema.clone(),
            old.partitions.clone(),
            old.version() + 1,
        );
        snap.indexes = old.indexes.clone();
        snap.indexes.insert(column.to_string(), slots);
        if let Some(zones) = old.zones.get().cloned() {
            let _ = snap.zones.set(zones);
        }
        *self.current.write() = Arc::new(snap);
        Ok(())
    }

    /// Columns with a secondary index in the current snapshot (sorted).
    pub fn indexed_columns(&self) -> Vec<String> {
        self.current.read().indexed_columns()
    }

    /// Table statistics, computed on first call and maintained incrementally:
    /// after appends, only the not-yet-seen suffix of rows is folded into the
    /// resident streaming builder (appends never rewrite existing row
    /// positions, so the builder's `rows_seen` is a valid resume point).
    pub fn stats(&self) -> Arc<TableStats> {
        if let Some(cache) = self.stats.read().as_ref() {
            if cache.version == self.current.read().version() {
                return cache.stats.clone();
            }
        }
        let mut guard = self.stats.write();
        // Re-take the snapshot *under* the write lock: a thread that raced
        // in with an older snapshot must not fold a shorter suffix and move
        // the cache version backwards (which would de-cache fresh stats and
        // force re-materialization on every subsequent call).
        let snap = self.snapshot();
        let cache = guard.get_or_insert_with(|| StatsCache {
            builder: TableStatsBuilder::new(),
            stats: Arc::new(TableStats::compute(&[])),
            version: u64::MAX,
        });
        if cache.version == u64::MAX || cache.version < snap.version() {
            for delta in snap.rows_from(cache.builder.rows_seen()) {
                cache.builder.update(&delta);
            }
            cache.stats = Arc::new(cache.builder.snapshot());
            cache.version = snap.version();
        }
        cache.stats.clone()
    }

    /// `true` once statistics have been computed (used by tests asserting the
    /// lazy, first-access behaviour).
    pub fn stats_computed(&self) -> bool {
        self.stats.read().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchBuilder;
    use crate::value::Value;

    fn batch(range: std::ops::Range<i64>) -> RecordBatch {
        BatchBuilder::new()
            .column("id", range.clone().collect::<Vec<_>>())
            .column("grp", range.map(|i| i % 5).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn from_batch_partitions_rows() {
        let t = Table::from_batch("t", batch(0..100), 8).unwrap();
        assert_eq!(t.num_partitions(), 8);
        assert_eq!(t.num_rows(), 100);
        assert_eq!(t.to_batch().unwrap().num_rows(), 100);
        assert_eq!(t.seal_rows(), 13); // ceil(100 / 8)
        assert_eq!(t.version(), 0);
    }

    #[test]
    fn stats_are_lazy_and_cached() {
        let t = Table::from_batch("t", batch(0..50), 4).unwrap();
        assert!(!t.stats_computed());
        let s1 = t.stats();
        assert!(t.stats_computed());
        let s2 = t.stats();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(s1.distinct_count("grp"), 5);
    }

    #[test]
    fn zones_are_cached_and_reflect_contiguous_split() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        let snap = t.snapshot();
        let z = snap.zones();
        assert_eq!(z.len(), 4);
        // Contiguous split: partition 0 holds ids 0..25, partition 3 75..100.
        assert_eq!(z[0].column("id").unwrap().max, Value::Int(24));
        assert_eq!(z[3].column("id").unwrap().min, Value::Int(75));
        // Second access hits the snapshot-cached zones (same allocation).
        assert!(std::ptr::eq(z.as_ptr(), snap.zones().as_ptr()));
    }

    #[test]
    fn partitions_must_share_schema() {
        let a = batch(0..10);
        let b = BatchBuilder::new()
            .column("other", vec![1.0f64])
            .build()
            .unwrap();
        assert!(Table::from_partitions("t", vec![a, b]).is_err());
        assert!(Table::from_partitions("t", vec![]).is_err());
    }

    #[test]
    fn append_extends_tail_then_seals_new_partitions() {
        // 100 rows over 4 partitions => seal at 25, all partitions full.
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        let r = t.append(&batch(100..110)).unwrap();
        assert_eq!(r.rows, 10);
        assert!(!r.extended_tail, "full tail cannot be extended");
        assert_eq!(r.new_partitions, 1);
        assert_eq!(t.num_rows(), 110);
        assert_eq!(t.num_partitions(), 5);

        // The new tail has 10 of 25 rows: the next append extends it.
        let r = t.append(&batch(110..140)).unwrap();
        assert!(r.extended_tail);
        assert_eq!(r.new_partitions, 1); // 15 rows into the tail, 15 sealed
        assert_eq!(t.num_rows(), 140);
        assert_eq!(t.num_partitions(), 6);
        assert_eq!(t.version(), 2);

        // Row order is append order: global positions are stable.
        let all = t.to_batch().unwrap();
        for i in 0..140 {
            assert_eq!(all.row(i)[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn append_rejects_schema_mismatch_and_ignores_empty() {
        let t = Table::from_batch("t", batch(0..10), 2).unwrap();
        let wrong = BatchBuilder::new()
            .column("x", vec![1.0f64])
            .build()
            .unwrap();
        assert!(t.append(&wrong).is_err());
        let empty = batch(0..10).filter(&[false; 10]);
        let r = t.append(&empty).unwrap();
        assert_eq!(r.rows, 0);
        assert_eq!(r.version, 0, "empty append does not bump the version");
    }

    #[test]
    fn append_updates_zones_incrementally_and_atomically() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        // Force zone computation on the current snapshot.
        assert_eq!(t.snapshot().zones().len(), 4);
        t.append(&batch(100..130)).unwrap();
        let snap = t.snapshot();
        // The child snapshot inherited zones without recomputation (they were
        // installed eagerly by the append): the tail zone covers the new ids.
        assert!(snap.zones.get().is_some(), "append carried zones forward");
        let z = snap.zones();
        assert_eq!(z.len(), snap.num_partitions());
        let tail = z.last().unwrap();
        assert!(tail.column("id").unwrap().contains(&Value::Int(129)));
        // Every row is covered by its partition's zone.
        for (p, pz) in snap.partitions().iter().zip(z) {
            assert_eq!(p.num_rows(), pz.num_rows);
            for i in 0..p.num_rows() {
                let v = p.row(i)[0].clone();
                assert!(pz.column("id").unwrap().contains(&v));
            }
        }
    }

    #[test]
    fn old_snapshots_survive_appends_unchanged() {
        let t = Table::from_batch("t", batch(0..40), 2).unwrap();
        let before = t.snapshot();
        t.append(&batch(40..80)).unwrap();
        assert_eq!(before.num_rows(), 40);
        assert_eq!(before.version(), 0);
        assert_eq!(t.snapshot().num_rows(), 80);
        // Untouched partitions are shared, not copied.
        assert!(Arc::ptr_eq(
            &before.partitions()[0],
            &t.snapshot().partitions()[0]
        ));
    }

    #[test]
    fn stats_catch_up_incrementally_after_append() {
        let t = Table::from_batch("t", batch(0..50), 4).unwrap();
        let s1 = t.stats();
        assert_eq!(s1.row_count, 50);
        t.append(&batch(50..90)).unwrap();
        let s2 = t.stats();
        assert_eq!(s2.row_count, 90);
        assert_eq!(s2.distinct_count("id"), 90);
        // Matches a from-scratch computation over the grown table.
        let scratch =
            TableStats::compute(&[t.to_batch().unwrap()]);
        assert_eq!(s2.distinct_count("grp"), scratch.distinct_count("grp"));
        assert_eq!(
            s2.column("id").unwrap().max,
            scratch.column("id").unwrap().max
        );
    }

    #[test]
    fn rows_from_returns_exactly_the_suffix() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        t.append(&batch(100..130)).unwrap();
        let snap = t.snapshot();
        for start in [0usize, 10, 25, 99, 100, 115, 130] {
            let suffix = snap.rows_from(start);
            let rows: usize = suffix.iter().map(RecordBatch::num_rows).sum();
            assert_eq!(rows, 130 - start, "start={start}");
            if let Some(first) = suffix.first() {
                assert_eq!(first.row(0)[0], Value::Int(start as i64));
            }
        }
        assert!(snap.rows_from(130).is_empty());
    }

    #[test]
    fn from_partitions_with_seal_controls_append_granularity() {
        let parts = vec![batch(0..25), batch(25..40)];
        let t = Table::from_partitions_with_seal("t", parts, 25).unwrap();
        assert_eq!(t.seal_rows(), 25);
        // Tail holds 15 of 25 rows: the next append extends it first.
        let r = t.append(&batch(40..60)).unwrap();
        assert!(r.extended_tail);
        assert_eq!(r.new_partitions, 1); // 10 into the tail, 10 sealed
        assert_eq!(t.num_partitions(), 3);
    }

    #[test]
    fn failing_append_sink_aborts_append_before_publish() {
        struct Failing;
        impl AppendSink for Failing {
            fn log_append(&self, _: &str, _: &RecordBatch) -> Result<(), StorageError> {
                Err(StorageError::Io("disk full".to_string()))
            }
        }
        let t = Table::from_batch("t", batch(0..10), 2).unwrap();
        t.set_append_sink(Some(Arc::new(Failing)));
        let err = t.append(&batch(10..20)).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert_eq!(t.num_rows(), 10, "failed append leaves the table unchanged");
        assert_eq!(t.version(), 0);
        // Detaching the sink restores the in-memory append path.
        t.set_append_sink(None);
        assert!(t.append(&batch(10..20)).is_ok());
        assert_eq!(t.num_rows(), 20);
    }

    #[test]
    fn append_sink_sees_batch_before_snapshot_publishes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting {
            rows: AtomicUsize,
        }
        impl AppendSink for Counting {
            fn log_append(&self, table: &str, batch: &RecordBatch) -> Result<(), StorageError> {
                assert_eq!(table, "t");
                self.rows.fetch_add(batch.num_rows(), Ordering::SeqCst);
                Ok(())
            }
        }
        let sink = Arc::new(Counting {
            rows: AtomicUsize::new(0),
        });
        let t = Table::from_batch("t", batch(0..10), 2).unwrap();
        t.set_append_sink(Some(sink.clone()));
        t.append(&batch(10..30)).unwrap();
        t.append(&batch(30..35)).unwrap();
        assert_eq!(sink.rows.load(Ordering::SeqCst), 25);
        // Empty appends are no-ops and never reach the sink.
        let empty = batch(0..10).filter(&[false; 10]);
        t.append(&empty).unwrap();
        assert_eq!(sink.rows.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn create_index_covers_sealed_partitions_only() {
        // 100 rows over 4 partitions => seal at 25, all partitions sealed.
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        let v0 = t.version();
        t.create_index("id").unwrap();
        assert_eq!(t.indexed_columns(), vec!["id".to_string()]);
        assert_eq!(t.version(), v0 + 1, "index publication is a new snapshot");
        let snap = t.snapshot();
        let slots = snap.index("id").unwrap();
        assert_eq!(slots.len(), 4);
        assert!(slots.iter().all(Option::is_some));
        assert!(snap.index_size_bytes() > 0);
        assert!(snap.index("grp").is_none(), "only requested columns indexed");
        // Probing partition 2 (ids 50..75) for id = 60 hits local row 10.
        let hits = slots[2].as_ref().unwrap().probe_eq(&Value::Int(60));
        assert_eq!(hits, vec![(10, 11)]);
        // Idempotent.
        t.create_index("id").unwrap();
        assert_eq!(t.indexed_columns(), vec!["id".to_string()]);
        // Unknown columns are rejected.
        assert!(t.create_index("nope").is_err());
    }

    #[test]
    fn append_maintains_indexes_at_seal_time() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        t.create_index("id").unwrap();
        // 30 appended rows: 25 seal a new partition, 5 form an unsealed tail.
        t.append(&batch(100..130)).unwrap();
        let snap = t.snapshot();
        let slots = snap.index("id").unwrap();
        assert_eq!(slots.len(), snap.num_partitions());
        assert!(slots[4].is_some(), "partition sealed by the append is indexed");
        assert!(slots[5].is_none(), "unsealed tail is never indexed");
        // Old sealed slots are carried forward, not rebuilt.
        let before = t.snapshot();
        t.append(&batch(130..140)).unwrap();
        let after = t.snapshot();
        let (b, a) = (before.index("id").unwrap(), after.index("id").unwrap());
        for i in 0..4 {
            assert!(Arc::ptr_eq(
                b[i].as_ref().unwrap(),
                a[i].as_ref().unwrap()
            ));
        }
        // The tail grew 5 -> 15 rows, still unsealed.
        assert!(a[5].is_none());
        // Growing the tail to its seal bound builds its index in the append.
        t.append(&batch(140..150)).unwrap();
        let snap = t.snapshot();
        let slots = snap.index("id").unwrap();
        let tail_idx = slots[5].as_ref().expect("tail sealed at 25 rows");
        assert_eq!(tail_idx.num_rows(), 25);
        assert_eq!(tail_idx.probe_eq(&Value::Int(149)), vec![(24, 25)]);
    }

    #[test]
    fn indexes_ride_snapshot_publication() {
        let t = Table::from_batch("t", batch(0..100), 4).unwrap();
        t.create_index("id").unwrap();
        let old = t.snapshot();
        t.append(&batch(100..200)).unwrap();
        // The pre-append snapshot still describes exactly its own rows.
        let slots = old.index("id").unwrap();
        assert_eq!(slots.len(), old.num_partitions());
        assert!(slots[3]
            .as_ref()
            .unwrap()
            .probe_eq(&Value::Int(99))
            .len()
            == 1);
        // And the new snapshot's index covers the new sealed partitions.
        let new = t.snapshot();
        let slots = new.index("id").unwrap();
        assert_eq!(slots.len(), new.num_partitions());
        let covered: usize = slots
            .iter()
            .flatten()
            .map(|i| i.num_rows())
            .sum();
        assert_eq!(covered, 200, "200 rows in sealed partitions are indexed");
    }

    fn str_batch(range: std::ops::Range<i64>) -> RecordBatch {
        const CATS: [&str; 4] = ["apple", "fig", "pear", "quince"];
        BatchBuilder::new()
            .column("id", range.clone().collect::<Vec<_>>())
            .column(
                "cat",
                range
                    .map(|i| CATS[(i % 4) as usize].to_string())
                    .collect::<Vec<_>>(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn string_partitions_dict_encode_at_seal() {
        // 100 rows over 4 partitions: everything is sealed, so everything
        // dictionary-encodes at construction.
        let t = Table::from_batch("t", str_batch(0..100), 4).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.encoding_counts(), (4, 0));
        for p in snap.partitions() {
            assert!(p.column(1).is_dict_encoded());
            assert!(!p.column(0).is_dict_encoded(), "numeric columns untouched");
        }
        // Logical content is unchanged by encoding.
        let all = t.to_batch().unwrap();
        assert_eq!(all.row(1)[1], Value::Str("fig".to_string()));
        assert_eq!(all.num_rows(), 100);
    }

    #[test]
    fn append_keeps_tail_raw_and_encodes_at_seal() {
        let t = Table::from_batch("t", str_batch(0..100), 4).unwrap();
        // 30 appended rows: 25 seal a new partition (encoded), 5 form an
        // unsealed Utf8 tail.
        t.append(&str_batch(100..130)).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.encoding_counts(), (5, 1));
        assert!(snap.partitions()[4].column(1).is_dict_encoded());
        assert!(!snap.partitions()[5].column(1).is_dict_encoded());
        // Growing the tail to its seal bound encodes it inside the append.
        t.append(&str_batch(130..150)).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.encoding_counts(), (6, 0));
        assert!(snap.partitions()[5].column(1).is_dict_encoded());
        // Row order and values survive the mixed raw/encoded history.
        let all = t.to_batch().unwrap();
        for i in 0..150 {
            assert_eq!(all.row(i)[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn index_over_encoded_partition_probes_strings() {
        let t = Table::from_batch("t", str_batch(0..100), 4).unwrap();
        t.create_index("cat").unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.encoding_counts().0, 4);
        let slots = snap.index("cat").unwrap();
        // Partition 0 holds rows 0..25; "apple" appears at local rows 0,4,8...
        let hits = slots[0].as_ref().unwrap().probe_eq(&Value::Str("apple".into()));
        let covered: usize = hits.iter().map(|(lo, hi)| (hi - lo) as usize).sum();
        assert_eq!(covered, 7, "25 rows, every 4th is apple");
    }

    #[test]
    fn empty_table_accepts_streaming_appends() {
        let schema = batch(0..1).schema().clone();
        let t = Table::empty("stream", schema, 16);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.to_batch().unwrap().num_rows(), 0);
        let r = t.append(&batch(0..40)).unwrap();
        assert!(r.extended_tail, "empty tail partition is unsealed");
        assert_eq!(t.num_rows(), 40);
        assert_eq!(t.num_partitions(), 3); // 16 + 16 + 8
        assert_eq!(t.stats().distinct_count("grp"), 5);
    }
}
