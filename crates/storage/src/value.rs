//! Scalar values exchanged between the storage layer and the query engine.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::schema::DataType;

/// A single scalar value.
///
/// `Value` is the dynamically-typed representation used by expressions,
/// predicates and group-by keys. Columnar data is stored in
/// [`crate::column::ColumnData`] and only widened to `Value` at row
/// granularity when necessary (group keys, literals, final results).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Absent value (only produced by outer joins / empty aggregates).
    Null,
}

impl Value {
    /// The [`DataType`] this value belongs to. `Null` has no type.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Utf8),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Null => None,
        }
    }

    /// Interpret the value as an `f64` for arithmetic, if possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interpret the value as an `i64`, if possible.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Interpret the value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret the value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total ordering used for sorting and comparisons in predicates.
    ///
    /// Values of different types compare by type rank so that sorting mixed
    /// columns is still deterministic; numeric types compare numerically
    /// across Int/Float.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            // Cross-type fallback: order by a fixed type rank.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Approximate in-memory footprint of the value, used for quota
    /// accounting of materialized synopses.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
            _ => std::mem::size_of::<Value>(),
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                state.write_u8(2);
                state.write_i64(*v);
            }
            // Hash floats through their ordered bit pattern so that values
            // that compare equal via total_cmp hash identically, and so that
            // Int(2) and Float(2.0) (which compare equal) hash the same.
            Value::Float(v) => {
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    state.write_u8(2);
                    state.write_i64(*v as i64);
                } else {
                    state.write_u8(4);
                    state.write_u64(v.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(u8::from(*b));
            }
            Value::Null => state.write_u8(0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [Value::Str("b".into()),
            Value::Int(1),
            Value::Null,
            Value::Float(0.5),
            Value::Bool(true)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert!(matches!(vals[1], Value::Bool(true)));
    }

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(1.5f64).as_f64(), Some(1.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int64));
    }

    #[test]
    fn size_accounts_for_string_payload() {
        assert!(Value::Str("hello world".into()).size_bytes() > Value::Int(0).size_bytes());
    }
}
