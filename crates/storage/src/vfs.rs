//! Virtual file system: the single seam between the durability layer and the
//! operating system.
//!
//! Every file operation the pager and the write-ahead log perform goes
//! through the [`Vfs`] / [`VfsFile`] traits, which makes the whole durability
//! stack testable under **deterministic fault injection**: [`FaultVfs`] wraps
//! any other implementation and, driven by a seeded [`FaultPlan`], injects
//! torn writes at byte granularity, short reads, fsync failures and
//! crash-point panics at exact operation counts. The same schedule replayed
//! against the same workload injects the same faults — recovery tests are
//! reproducible bit for bit.
//!
//! Implementations:
//!
//! * [`StdVfs`] — real files via `std::fs` (positional reads/writes, no seek
//!   state, safe for concurrent readers),
//! * [`MemVfs`] — an in-memory file system for fast deterministic tests; a
//!   cloned handle shares the same files, and
//! * [`FaultVfs`] — the fault-injecting wrapper.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::StorageError;

/// An open file handle. All operations are positional (no cursor), so one
/// handle can serve concurrent readers; writers are expected to serialize
/// externally (the WAL and pager each own their file behind a lock).
// `len` is a file length, not a collection length — no `is_empty` wanted.
#[allow(clippy::len_without_is_empty)]
pub trait VfsFile: Send + Sync {
    /// Read up to `buf.len()` bytes at `offset`. Returns the number of bytes
    /// actually read — fewer than requested only at end of file (or under an
    /// injected short read).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError>;

    /// Write all of `data` at `offset`, extending the file if needed. A torn
    /// write (injected or real) may persist a prefix of `data` and then
    /// return an error — callers must treat any error as "bytes at and after
    /// `offset` are undefined".
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Durably flush all written data to stable storage.
    fn sync(&self) -> Result<(), StorageError>;

    /// Current file length in bytes.
    fn len(&self) -> Result<u64, StorageError>;

    /// Truncate (or extend with zeros) to exactly `len` bytes.
    fn truncate(&self, len: u64) -> Result<(), StorageError>;
}

/// A file system. Opening a missing file creates it empty.
pub trait Vfs: Send + Sync {
    /// Open (creating if absent) the file at `path`.
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>, StorageError>;

    /// `true` if a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

// ---------------------------------------------------------------------------
// StdVfs: real files
// ---------------------------------------------------------------------------

/// The production [`Vfs`]: real files through `std::fs`, with positional I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

struct StdFile {
    file: std::fs::File,
}

impl VfsFile for StdFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        use std::os::unix::fs::FileExt;
        let mut read = 0usize;
        while read < buf.len() {
            match self.file.read_at(&mut buf[read..], offset + read as u64) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(read)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, offset)?;
        Ok(())
    }

    fn sync(&self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        Ok(())
    }

    fn len(&self) -> Result<u64, StorageError> {
        Ok(self.file.metadata()?.len())
    }

    fn truncate(&self, len: u64) -> Result<(), StorageError> {
        self.file.set_len(len)?;
        Ok(())
    }
}

impl Vfs for StdVfs {
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>, StorageError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Arc::new(StdFile { file }))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// MemVfs: in-memory files for deterministic tests
// ---------------------------------------------------------------------------

/// An in-memory [`Vfs`]. Cloned handles share the same files, which is how a
/// test hands "the same disk" to a writer and a later recovery pass.
#[derive(Debug, Default, Clone)]
pub struct MemVfs {
    files: Arc<Mutex<HashMap<PathBuf, Arc<MemFile>>>>,
}

/// One in-memory file (shared, internally locked).
#[derive(Debug, Default)]
pub struct MemFile {
    data: Mutex<Vec<u8>>,
}

impl MemVfs {
    /// A fresh, empty in-memory file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raw bytes of the file at `path` (empty if absent) — tests use this to
    /// snapshot a WAL and replay truncated prefixes of it.
    pub fn contents(&self, path: &Path) -> Vec<u8> {
        self.files
            .lock()
            .get(path)
            .map(|f| f.data.lock().clone())
            .unwrap_or_default()
    }

    /// Overwrite the file at `path` with `bytes` (creating it if absent).
    pub fn set_contents(&self, path: &Path, bytes: Vec<u8>) {
        let file = self
            .files
            .lock()
            .entry(path.to_path_buf())
            .or_default()
            .clone();
        *file.data.lock() = bytes;
    }

    /// Remove the file at `path`, if present.
    pub fn remove(&self, path: &Path) {
        self.files.lock().remove(path);
    }
}

impl VfsFile for MemFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        let data = self.data.lock();
        let offset = offset as usize;
        if offset >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - offset);
        buf[..n].copy_from_slice(&data[offset..offset + n]);
        Ok(n)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        let mut file = self.data.lock();
        let end = offset as usize + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn sync(&self) -> Result<(), StorageError> {
        Ok(())
    }

    fn len(&self) -> Result<u64, StorageError> {
        Ok(self.data.lock().len() as u64)
    }

    fn truncate(&self, len: u64) -> Result<(), StorageError> {
        self.data.lock().resize(len as usize, 0);
        Ok(())
    }
}

impl Vfs for MemVfs {
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>, StorageError> {
        let file = self
            .files
            .lock()
            .entry(path.to_path_buf())
            .or_default()
            .clone();
        Ok(file)
    }

    fn exists(&self, path: &Path) -> bool {
        self.files.lock().contains_key(path)
    }
}

// ---------------------------------------------------------------------------
// FaultVfs: deterministic fault injection
// ---------------------------------------------------------------------------

/// One injected fault, fired when the shared operation counter reaches
/// `at_op` (operations are counted across *all* files opened through the same
/// [`FaultVfs`], in execution order, so a schedule pins faults to exact
/// points of the workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The write at this operation persists only its first `keep` bytes and
    /// then fails (a torn write at byte granularity).
    TornWrite {
        /// Operation count at which the fault fires.
        at_op: u64,
        /// Bytes of the write that reach the file before the failure.
        keep: usize,
    },
    /// The read at this operation returns at most `max` bytes.
    ShortRead {
        /// Operation count at which the fault fires.
        at_op: u64,
        /// Upper bound on the bytes returned.
        max: usize,
    },
    /// The sync at this operation fails (data may or may not be durable —
    /// exactly the contract of a failed fsync).
    FailSync {
        /// Operation count at which the fault fires.
        at_op: u64,
    },
    /// The operation at this count panics, simulating a process crash at an
    /// exact instruction boundary. Writes scheduled before the crash are
    /// already in the file; nothing after it runs.
    Crash {
        /// Operation count at which the fault fires.
        at_op: u64,
    },
}

impl Fault {
    fn at_op(&self) -> u64 {
        match self {
            Fault::TornWrite { at_op, .. }
            | Fault::ShortRead { at_op, .. }
            | Fault::FailSync { at_op }
            | Fault::Crash { at_op } => *at_op,
        }
    }
}

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with exactly the given faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        Self { faults }
    }

    /// Derive a single pseudo-random fault from `seed`, landing somewhere in
    /// the first `horizon` operations. The same seed always produces the same
    /// fault — test failures name the seed, so any run is replayable.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        // splitmix64: small, deterministic, no external dependency.
        let mut x = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let at_op = next() % horizon.max(1);
        let fault = match next() % 4 {
            0 => Fault::TornWrite {
                at_op,
                keep: (next() % 64) as usize,
            },
            1 => Fault::ShortRead {
                at_op,
                max: (next() % 16) as usize,
            },
            2 => Fault::FailSync { at_op },
            _ => Fault::Crash { at_op },
        };
        Self::new(vec![fault])
    }
}

/// Shared fault state: the operation counter plus the pending schedule.
#[derive(Debug)]
struct FaultState {
    ops: AtomicU64,
    plan: Mutex<FaultPlan>,
}

impl FaultState {
    /// Count one operation and return the fault scheduled for it, if any.
    fn tick(&self) -> Option<Fault> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        let mut plan = self.plan.lock();
        let idx = plan.faults.iter().position(|f| f.at_op() == op)?;
        Some(plan.faults.remove(idx))
    }
}

/// A [`Vfs`] wrapper that injects the faults of a [`FaultPlan`] into an inner
/// implementation. Cloned handles share the operation counter and schedule.
#[derive(Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<FaultState>,
}

impl FaultVfs {
    /// Wrap `inner`, injecting the faults of `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> Self {
        Self {
            inner,
            state: Arc::new(FaultState {
                ops: AtomicU64::new(0),
                plan: Mutex::new(plan),
            }),
        }
    }

    /// Operations performed so far (reads + writes + syncs across all files).
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Replace the remaining fault schedule.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.state.plan.lock() = plan;
    }
}

struct FaultFile {
    inner: Arc<dyn VfsFile>,
    state: Arc<FaultState>,
}

impl VfsFile for FaultFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        match self.state.tick() {
            Some(Fault::ShortRead { max, .. }) => {
                let n = buf.len().min(max);
                self.inner.read_at(offset, &mut buf[..n])
            }
            Some(Fault::Crash { .. }) => panic!("injected crash (read)"),
            _ => self.inner.read_at(offset, buf),
        }
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        match self.state.tick() {
            Some(Fault::TornWrite { keep, .. }) => {
                let keep = keep.min(data.len());
                self.inner.write_at(offset, &data[..keep])?;
                Err(StorageError::Io(format!(
                    "injected torn write: {keep} of {} bytes persisted",
                    data.len()
                )))
            }
            Some(Fault::Crash { .. }) => panic!("injected crash (write)"),
            _ => self.inner.write_at(offset, data),
        }
    }

    fn sync(&self) -> Result<(), StorageError> {
        match self.state.tick() {
            Some(Fault::FailSync { .. }) => {
                Err(StorageError::Io("injected fsync failure".to_string()))
            }
            Some(Fault::Crash { .. }) => panic!("injected crash (sync)"),
            _ => self.inner.sync(),
        }
    }

    fn len(&self) -> Result<u64, StorageError> {
        self.inner.len()
    }

    fn truncate(&self, len: u64) -> Result<(), StorageError> {
        self.inner.truncate(len)
    }
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>, StorageError> {
        Ok(Arc::new(FaultFile {
            inner: self.inner.open(path)?,
            state: self.state.clone(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_round_trips_and_shares_files() {
        let vfs = MemVfs::new();
        let path = Path::new("dir/file.bin");
        let f = vfs.open(path).unwrap();
        f.write_at(0, b"hello").unwrap();
        f.write_at(5, b" world").unwrap();
        assert_eq!(f.len().unwrap(), 11);

        // A second handle (via a cloned vfs) sees the same bytes.
        let f2 = vfs.clone().open(path).unwrap();
        let mut buf = [0u8; 11];
        assert_eq!(f2.read_at(0, &mut buf).unwrap(), 11);
        assert_eq!(&buf, b"hello world");

        // Reads past the end are short, not errors.
        assert_eq!(f2.read_at(100, &mut buf).unwrap(), 0);
        f.truncate(5).unwrap();
        assert_eq!(vfs.contents(path), b"hello");
    }

    #[test]
    fn std_vfs_round_trips_in_temp_dir() {
        let dir = std::env::temp_dir().join(format!("taster-vfs-{}", std::process::id()));
        let path = dir.join("probe.bin");
        let vfs = StdVfs;
        let f = vfs.open(&path).unwrap();
        f.write_at(0, b"abc").unwrap();
        f.sync().unwrap();
        assert!(vfs.exists(&path));
        let mut buf = [0u8; 3];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"abc");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_exact_prefix() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultPlan::new(vec![Fault::TornWrite { at_op: 1, keep: 3 }]),
        );
        let path = Path::new("wal");
        let f = vfs.open(path).unwrap();
        f.write_at(0, b"first").unwrap(); // op 0: clean
        let err = f.write_at(5, b"second").unwrap_err(); // op 1: torn after 3 bytes
        assert!(matches!(err, StorageError::Io(_)));
        assert_eq!(mem.contents(path), b"firstsec");
        // The schedule is consumed: later writes succeed.
        f.write_at(0, b"x").unwrap();
        assert_eq!(vfs.ops(), 3);
    }

    #[test]
    fn short_read_and_sync_failure_fire_once() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(
            Arc::new(mem),
            FaultPlan::new(vec![
                Fault::ShortRead { at_op: 1, max: 2 },
                Fault::FailSync { at_op: 2 },
            ]),
        );
        let f = vfs.open(Path::new("f")).unwrap();
        f.write_at(0, b"0123456789").unwrap(); // op 0
        let mut buf = [0u8; 10];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 2); // op 1: short
        assert!(f.sync().is_err()); // op 2: failed fsync
        assert!(f.sync().is_ok()); // schedule exhausted
    }

    #[test]
    fn crash_fault_panics_at_exact_op() {
        let vfs = FaultVfs::new(
            Arc::new(MemVfs::new()),
            FaultPlan::new(vec![Fault::Crash { at_op: 1 }]),
        );
        let f = vfs.open(Path::new("f")).unwrap();
        f.write_at(0, b"ok").unwrap();
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = f.write_at(2, b"boom");
        }));
        assert!(crashed.is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 1000);
        let b = FaultPlan::seeded(42, 1000);
        assert_eq!(a.faults, b.faults);
        let c = FaultPlan::seeded(43, 1000);
        // Different seeds *may* collide on the fault kind, but the full
        // schedule (kind + op) differing for at least one of a few seeds is
        // overwhelmingly likely; check a weaker but deterministic property:
        assert!(c.faults[0].at_op() < 1000);
    }
}
