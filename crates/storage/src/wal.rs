//! Write-ahead log with CRC-framed records and group commit.
//!
//! # Frame format
//!
//! Every record is one frame, appended sequentially:
//!
//! ```text
//! [len: u32][crc: u32][kind: u8][payload: len-1 bytes]
//! ```
//!
//! `len` counts `kind + payload`; `crc` is CRC-32 over exactly those bytes.
//! Record kinds are opaque to the WAL except for [`COMMIT_KIND`], which marks
//! the **atomicity boundary**: everything appended since the previous commit
//! becomes visible together, or not at all.
//!
//! # Commit protocol (fsync-batched group commit)
//!
//! [`Wal::append`] buffers frames in memory; [`Wal::commit`] writes all
//! buffered frames plus one commit frame with a single `write_at`, then
//! issues **one** `sync`. Any number of logical records therefore share one
//! fsync — the group-commit batching that keeps the per-append overhead
//! bounded. Only after the sync returns does the in-memory tail offset
//! advance; a failed write or sync leaves the file logically unchanged (the
//! torn bytes sit past the last durable commit and are ignored — and
//! physically truncated — by replay).
//!
//! # Replay
//!
//! [`Wal::replay`] scans frames from the start, validating lengths and CRCs.
//! It stops at the first torn or invalid frame and delivers **only the
//! records up to and including the last valid commit frame** — a half-written
//! transaction is invisible. Replaying any prefix of a WAL therefore yields
//! the state at some earlier commit boundary, which is what makes recovery
//! idempotent.

use std::path::Path;
use std::sync::Arc;

use crate::codec::crc32;
use crate::error::StorageError;
use crate::vfs::{Vfs, VfsFile};

/// Frame kind reserved for commit markers.
pub const COMMIT_KIND: u8 = 0xC0;

const FRAME_HEADER: usize = 9; // len(4) + crc(4) + kind(1)
/// Upper bound on one frame's `kind + payload` bytes (64 MiB): replay rejects
/// larger lengths as corruption instead of attempting the allocation.
const MAX_FRAME_LEN: u32 = 64 << 20;

/// One logical record recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Application-defined record kind (never [`COMMIT_KIND`]).
    pub kind: u8,
    /// Record payload.
    pub payload: Vec<u8>,
}

/// What a [`Wal::replay`] pass found.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Records up to and including the last valid commit, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past the last valid commit frame — the point the log
    /// is truncated to before appending resumes.
    pub durable_len: u64,
    /// Frames (including uncommitted ones) that were read before the scan
    /// stopped.
    pub frames_scanned: usize,
    /// `true` if the scan stopped because of a torn or corrupt frame (as
    /// opposed to a clean end of file).
    pub tore: bool,
}

/// An append-only write-ahead log over one [`VfsFile`].
///
/// The `Wal` itself is not internally synchronized — callers own it behind a
/// lock (one writer at a time), which also serializes the group-commit
/// batches.
pub struct Wal {
    file: Arc<dyn VfsFile>,
    /// Offset of the next frame to be written (= bytes durably committed).
    tail: u64,
    /// Frames appended but not yet committed.
    pending: Vec<u8>,
    /// Records in `pending` (for introspection / tests).
    pending_records: usize,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("tail", &self.tail)
            .field("pending_records", &self.pending_records)
            .finish()
    }
}

fn encode_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    let len = 1 + payload.len();
    let mut body = Vec::with_capacity(len);
    body.push(kind);
    body.extend_from_slice(payload);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
}

impl Wal {
    /// Open (creating if absent) the log at `path`, replay it, truncate any
    /// torn tail, and return the log positioned for appending along with the
    /// replayed records.
    pub fn open(vfs: &dyn Vfs, path: &Path) -> Result<(Self, WalReplay), StorageError> {
        let file = vfs.open(path)?;
        let replay = Self::scan(file.as_ref())?;
        // Drop the torn tail so future appends start at a clean boundary.
        if replay.durable_len < file.len()? {
            file.truncate(replay.durable_len)?;
        }
        Ok((
            Self {
                file,
                tail: replay.durable_len,
                pending: Vec::new(),
                pending_records: 0,
            },
            replay,
        ))
    }

    /// Replay the log at `path` without taking write ownership (read-only
    /// recovery; the file is not truncated).
    pub fn replay(vfs: &dyn Vfs, path: &Path) -> Result<WalReplay, StorageError> {
        let file = vfs.open(path)?;
        Self::scan(file.as_ref())
    }

    fn scan(file: &dyn VfsFile) -> Result<WalReplay, StorageError> {
        let len = file.len()?;
        let mut bytes = vec![0u8; len as usize];
        let read = file.read_at(0, &mut bytes)?;
        bytes.truncate(read);

        let mut replay = WalReplay::default();
        let mut offset = 0usize;
        let mut committed_records = 0usize;
        let mut uncommitted: Vec<WalRecord> = Vec::new();
        loop {
            let remaining = bytes.len() - offset;
            if remaining < FRAME_HEADER {
                replay.tore = remaining != 0;
                break;
            }
            let frame_len =
                u32::from_le_bytes([bytes[offset], bytes[offset + 1], bytes[offset + 2], bytes[offset + 3]]);
            let crc =
                u32::from_le_bytes([bytes[offset + 4], bytes[offset + 5], bytes[offset + 6], bytes[offset + 7]]);
            if frame_len == 0 || frame_len > MAX_FRAME_LEN {
                replay.tore = true;
                break;
            }
            let body_start = offset + 8;
            let body_end = body_start + frame_len as usize;
            if body_end > bytes.len() {
                replay.tore = true;
                break;
            }
            let body = &bytes[body_start..body_end];
            if crc32(body) != crc {
                replay.tore = true;
                break;
            }
            replay.frames_scanned += 1;
            offset = body_end;
            if body[0] == COMMIT_KIND {
                replay.records.append(&mut uncommitted);
                committed_records = replay.records.len();
                replay.durable_len = offset as u64;
            } else {
                uncommitted.push(WalRecord {
                    kind: body[0],
                    payload: body[1..].to_vec(),
                });
            }
        }
        replay.records.truncate(committed_records);
        Ok(replay)
    }

    /// Buffer one record for the next commit. Nothing reaches the file until
    /// [`commit`](Self::commit).
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
        if kind == COMMIT_KIND {
            return Err(StorageError::Invalid(
                "record kind 0xC0 is reserved for commit frames".to_string(),
            ));
        }
        encode_frame(&mut self.pending, kind, payload);
        self.pending_records += 1;
        Ok(())
    }

    /// Number of records buffered for the next commit.
    pub fn pending_records(&self) -> usize {
        self.pending_records
    }

    /// Write all buffered records plus a commit frame, then fsync once
    /// (group commit). On success the records are durable; on failure the
    /// buffered batch is dropped and the file's logical content is unchanged
    /// (any torn bytes lie past the last durable commit and will be ignored
    /// and truncated by the next replay).
    pub fn commit(&mut self) -> Result<(), StorageError> {
        if self.pending_records == 0 {
            return Ok(());
        }
        let mut batch = std::mem::take(&mut self.pending);
        self.pending_records = 0;
        encode_frame(&mut batch, COMMIT_KIND, &[]);
        let write = self.file.write_at(self.tail, &batch);
        let sync = write.and_then(|()| self.file.sync());
        match sync {
            Ok(()) => {
                self.tail += batch.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Leave the torn tail in place; replay ignores it. Future
                // commits overwrite it at the same offset.
                Err(e)
            }
        }
    }

    /// Bytes durably committed (the offset replay would report).
    pub fn durable_len(&self) -> u64 {
        self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{Fault, FaultPlan, FaultVfs, MemVfs};

    fn mem_wal(vfs: &MemVfs) -> Wal {
        Wal::open(vfs, Path::new("wal")).unwrap().0
    }

    #[test]
    fn committed_records_replay_in_order() {
        let vfs = MemVfs::new();
        let mut wal = mem_wal(&vfs);
        wal.append(1, b"alpha").unwrap();
        wal.append(2, b"beta").unwrap();
        wal.commit().unwrap();
        wal.append(3, b"gamma").unwrap();
        wal.commit().unwrap();

        let replay = Wal::replay(&vfs, Path::new("wal")).unwrap();
        assert!(!replay.tore);
        assert_eq!(
            replay.records,
            vec![
                WalRecord { kind: 1, payload: b"alpha".to_vec() },
                WalRecord { kind: 2, payload: b"beta".to_vec() },
                WalRecord { kind: 3, payload: b"gamma".to_vec() },
            ]
        );
        assert_eq!(replay.durable_len, wal.durable_len());
    }

    #[test]
    fn uncommitted_records_are_invisible() {
        let vfs = MemVfs::new();
        let mut wal = mem_wal(&vfs);
        wal.append(1, b"committed").unwrap();
        wal.commit().unwrap();
        wal.append(2, b"buffered, never committed").unwrap();
        // No commit: the record never even reaches the file.
        let replay = Wal::replay(&vfs, Path::new("wal")).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].kind, 1);
    }

    #[test]
    fn every_truncation_point_yields_a_commit_prefix() {
        let vfs = MemVfs::new();
        let mut wal = mem_wal(&vfs);
        let mut lens_after_commit = vec![(0u64, 0usize)];
        for batch in 0..5u8 {
            for i in 0..=batch {
                wal.append(batch + 1, &[i; 3]).unwrap();
            }
            wal.commit().unwrap();
            let records_so_far: usize = (1..=batch as usize + 1).sum();
            lens_after_commit.push((wal.durable_len(), records_so_far));
        }
        let full = vfs.contents(Path::new("wal"));

        for cut in 0..=full.len() {
            vfs.set_contents(Path::new("truncated"), full[..cut].to_vec());
            let replay = Wal::replay(&vfs, Path::new("truncated")).unwrap();
            // Expected: the largest commit boundary at or below the cut.
            let &(boundary, records) = lens_after_commit
                .iter()
                .rev()
                .find(|(len, _)| *len <= cut as u64)
                .unwrap();
            assert_eq!(replay.durable_len, boundary, "cut at {cut}");
            assert_eq!(replay.records.len(), records, "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_byte_stops_replay_at_previous_commit() {
        let vfs = MemVfs::new();
        let mut wal = mem_wal(&vfs);
        wal.append(1, b"first").unwrap();
        wal.commit().unwrap();
        let boundary = wal.durable_len();
        wal.append(2, b"second").unwrap();
        wal.commit().unwrap();

        // Flip a byte in the second batch: its commit must become invisible.
        let mut bytes = vfs.contents(Path::new("wal"));
        let victim = boundary as usize + FRAME_HEADER + 2;
        bytes[victim] ^= 0xFF;
        vfs.set_contents(Path::new("wal"), bytes);

        let replay = Wal::replay(&vfs, Path::new("wal")).unwrap();
        assert!(replay.tore);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.durable_len, boundary);
    }

    #[test]
    fn reopen_truncates_torn_tail_and_resumes() {
        let vfs = MemVfs::new();
        let mut wal = mem_wal(&vfs);
        wal.append(1, b"keep").unwrap();
        wal.commit().unwrap();
        let keep_len = wal.durable_len();
        drop(wal);
        // Simulate a torn batch after the commit.
        let mut bytes = vfs.contents(Path::new("wal"));
        bytes.extend_from_slice(&[0xAB; 7]);
        vfs.set_contents(Path::new("wal"), bytes);

        let (mut wal, replay) = Wal::open(&vfs, Path::new("wal")).unwrap();
        assert!(replay.tore);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(vfs.contents(Path::new("wal")).len() as u64, keep_len);
        // Appending after the truncation produces a clean log.
        wal.append(2, b"more").unwrap();
        wal.commit().unwrap();
        let replay = Wal::replay(&vfs, Path::new("wal")).unwrap();
        assert!(!replay.tore);
        assert_eq!(replay.records.len(), 2);
    }

    #[test]
    fn torn_commit_write_keeps_log_consistent() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(Arc::new(mem.clone()), FaultPlan::none());
        let (mut wal, _) = Wal::open(&vfs, Path::new("wal")).unwrap();
        wal.append(1, b"durable").unwrap();
        wal.commit().unwrap();

        // Tear the next commit's write after a few bytes.
        vfs.set_plan(FaultPlan::new(vec![Fault::TornWrite {
            at_op: vfs.ops(),
            keep: 5,
        }]));
        wal.append(2, b"torn away").unwrap();
        assert!(wal.commit().is_err());

        let replay = Wal::replay(&mem, Path::new("wal")).unwrap();
        assert_eq!(replay.records.len(), 1, "torn batch must be invisible");
        assert!(replay.tore);

        // The same WAL object keeps working: the next commit overwrites the
        // torn tail at the durable offset.
        wal.append(3, b"retry").unwrap();
        wal.commit().unwrap();
        let replay = Wal::replay(&mem, Path::new("wal")).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].payload, b"retry");
    }

    #[test]
    fn failed_fsync_is_reported_and_recoverable() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(Arc::new(mem.clone()), FaultPlan::none());
        let (mut wal, _) = Wal::open(&vfs, Path::new("wal")).unwrap();
        wal.append(1, b"a").unwrap();
        wal.commit().unwrap();
        let acknowledged = wal.durable_len();
        // Fail the next sync (the op after the batch write).
        vfs.set_plan(FaultPlan::new(vec![Fault::FailSync {
            at_op: vfs.ops() + 1,
        }]));
        wal.append(2, b"b").unwrap();
        assert!(matches!(wal.commit(), Err(StorageError::Io(_))));
        // The batch was never acknowledged: the WAL's durable offset stays
        // put, and the next commit overwrites the unacknowledged bytes.
        assert_eq!(wal.durable_len(), acknowledged);
        wal.append(3, b"c").unwrap();
        wal.commit().unwrap();
        let replay = Wal::replay(&mem, Path::new("wal")).unwrap();
        let kinds: Vec<u8> = replay.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![1, 3], "unacknowledged batch must not survive");
    }

    #[test]
    fn commit_kind_is_reserved() {
        let vfs = MemVfs::new();
        let mut wal = mem_wal(&vfs);
        assert!(wal.append(COMMIT_KIND, b"nope").is_err());
        assert_eq!(wal.pending_records(), 0);
        wal.commit().unwrap(); // empty commit is a no-op
        assert_eq!(wal.durable_len(), 0);
    }
}
