//! AMS (Alon–Matias–Szegedy) sketch for second frequency moment / join size
//! estimation (paper reference \[6\]).

use serde::{Deserialize, Serialize};
use taster_storage::Value;

use crate::hash::{hash_value, sign_hash};

/// An AMS "tug-of-war" sketch: `depth` rows of `width` counters, each update
/// adds `±count` to one counter per row. The median of the per-row dot
/// products estimates F2 (self-join size) or the join size between two
/// relations sketched with identical seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmsSketch {
    width: usize,
    depth: usize,
    counters: Vec<f64>,
}

impl AmsSketch {
    /// Create a sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize) -> Self {
        let width = width.max(8);
        let depth = depth.max(1) | 1; // keep odd so the median is well-defined
        Self {
            width,
            depth,
            counters: vec![0.0; width * depth],
        }
    }

    /// Sketch width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Add `count` occurrences of `key`.
    pub fn add(&mut self, key: &Value, count: f64) {
        for row in 0..self.depth {
            let col = (hash_value(key, 1000 + row as u64) % self.width as u64) as usize;
            let sign = sign_hash(key, row as u64) as f64;
            self.counters[row * self.width + col] += sign * count;
        }
    }

    /// Insert one occurrence of `key`.
    pub fn insert(&mut self, key: &Value) {
        self.add(key, 1.0);
    }

    /// Estimate the second frequency moment F2 = Σ f(x)² (the self-join size).
    pub fn f2_estimate(&self) -> f64 {
        let mut per_row: Vec<f64> = (0..self.depth)
            .map(|row| {
                (0..self.width)
                    .map(|col| {
                        let c = self.counters[row * self.width + col];
                        c * c
                    })
                    .sum()
            })
            .collect();
        median(&mut per_row)
    }

    /// Estimate the join size `Σ_x f_R(x)·f_S(x)` against another sketch of
    /// identical dimensions.
    pub fn join_size(&self, other: &AmsSketch) -> Option<f64> {
        if self.width != other.width || self.depth != other.depth {
            return None;
        }
        let mut per_row: Vec<f64> = (0..self.depth)
            .map(|row| {
                (0..self.width)
                    .map(|col| {
                        self.counters[row * self.width + col]
                            * other.counters[row * self.width + col]
                    })
                    .sum()
            })
            .collect();
        Some(median(&mut per_row))
    }

    /// Merge another sketch built with identical dimensions.
    pub fn merge(&mut self, other: &AmsSketch) -> bool {
        if self.width != other.width || self.depth != other.depth {
            return false;
        }
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        true
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counters.len() * 8 + 32
    }
}

fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_estimate_tracks_truth() {
        let mut ams = AmsSketch::new(512, 7);
        // 100 keys each with frequency 10 => F2 = 100 * 100 = 10_000
        for _ in 0..10 {
            for i in 0..100i64 {
                ams.insert(&Value::Int(i));
            }
        }
        let est = ams.f2_estimate();
        assert!((5_000.0..20_000.0).contains(&est), "F2 estimate {est}");
    }

    #[test]
    fn join_size_estimate() {
        let mut r = AmsSketch::new(512, 7);
        let mut s = AmsSketch::new(512, 7);
        // R: keys 0..100 with frequency 5. S: keys 0..100 with frequency 2.
        // Join size = 100 * 5 * 2 = 1000.
        for _ in 0..5 {
            for i in 0..100i64 {
                r.insert(&Value::Int(i));
            }
        }
        for _ in 0..2 {
            for i in 0..100i64 {
                s.insert(&Value::Int(i));
            }
        }
        let est = r.join_size(&s).unwrap();
        assert!((400.0..2_500.0).contains(&est), "join size estimate {est}");
        assert!(r.join_size(&AmsSketch::new(64, 3)).is_none());
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = AmsSketch::new(128, 5);
        let mut b = AmsSketch::new(128, 5);
        let mut whole = AmsSketch::new(128, 5);
        for i in 0..1000i64 {
            let v = Value::Int(i % 20);
            if i % 2 == 0 {
                a.insert(&v);
            } else {
                b.insert(&v);
            }
            whole.insert(&v);
        }
        assert!(a.merge(&b));
        let merged = a.f2_estimate();
        let direct = whole.f2_estimate();
        assert!((merged - direct).abs() < 1e-6);
    }
}
