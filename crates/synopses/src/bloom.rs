//! Bloom filter, used for approximating EXISTS sub-queries and membership
//! checks on join keys (Section II of the paper cites \[8\], \[33\]).

use serde::{Deserialize, Serialize};
use taster_storage::Value;

use crate::hash::hash_value;

/// A standard Bloom filter over [`Value`] keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: usize,
    inserted: usize,
}

impl BloomFilter {
    /// Create a filter with an explicit bit count and hash count.
    pub fn new(num_bits: usize, num_hashes: usize) -> Self {
        let num_bits = num_bits.max(64);
        let num_hashes = num_hashes.clamp(1, 16);
        Self {
            bits: vec![0u64; num_bits.div_ceil(64)],
            num_bits,
            num_hashes,
            inserted: 0,
        }
    }

    /// Create a filter sized for `expected_items` at the given false positive
    /// rate, using the standard `m = -n ln p / (ln 2)^2` sizing.
    pub fn with_capacity(expected_items: usize, false_positive_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = false_positive_rate.clamp(1e-9, 0.5);
        let m = (-n * p.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil() as usize;
        let k = ((m as f64 / n) * std::f64::consts::LN_2).round().max(1.0) as usize;
        Self::new(m, k)
    }

    /// Number of items inserted so far.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &Value) {
        for i in 0..self.num_hashes {
            let bit = (hash_value(key, i as u64) % self.num_bits as u64) as usize;
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// `true` if the key *may* have been inserted; `false` means definitely
    /// not inserted.
    pub fn contains(&self, key: &Value) -> bool {
        (0..self.num_hashes).all(|i| {
            let bit = (hash_value(key, i as u64) % self.num_bits as u64) as usize;
            self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Expected false-positive rate given the current fill.
    pub fn estimated_fpp(&self) -> f64 {
        let k = self.num_hashes as f64;
        let n = self.inserted as f64;
        let m = self.num_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Merge another filter with identical geometry (bitwise OR). Returns
    /// `false` on mismatch.
    pub fn merge(&mut self, other: &BloomFilter) -> bool {
        if self.num_bits != other.num_bits || self.num_hashes != other.num_hashes {
            return false;
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        self.inserted += other.inserted;
        true
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8 + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000i64 {
            bf.insert(&Value::Int(i));
        }
        for i in 0..1000i64 {
            assert!(bf.contains(&Value::Int(i)));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut bf = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000i64 {
            bf.insert(&Value::Int(i));
        }
        let fp = (1000..11_000i64)
            .filter(|i| bf.contains(&Value::Int(*i)))
            .count();
        assert!(fp < 500, "false positives too high: {fp}/10000");
        assert!(bf.estimated_fpp() < 0.05);
    }

    #[test]
    fn merge_is_union() {
        let mut a = BloomFilter::new(4096, 4);
        let mut b = BloomFilter::new(4096, 4);
        a.insert(&Value::Str("left".into()));
        b.insert(&Value::Str("right".into()));
        assert!(a.merge(&b));
        assert!(a.contains(&Value::Str("left".into())));
        assert!(a.contains(&Value::Str("right".into())));
        assert_eq!(a.inserted(), 2);
        let c = BloomFilter::new(128, 4);
        assert!(!a.merge(&c));
    }
}
