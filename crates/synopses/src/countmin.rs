//! Count-min sketch (Cormode & Muthukrishnan) with mergeable counters.
//!
//! Taster uses count-min sketches as approximate key→frequency (or key→sum)
//! stores. The sketch is a `depth × width` array of counters with one
//! pairwise-independent hash function per row; `estimate` returns the minimum
//! counter across rows, which overestimates the true value by at most
//! `ε·N` with probability `1-δ` when `width = ⌈e/ε⌉` and `depth = ⌈ln 1/δ⌉`
//! (`N` is the L1 norm of all insertions).

use serde::{Deserialize, Serialize};
use taster_storage::{ByteReader, ByteWriter, StorageError, Value};

use crate::hash::{hash_bytes, hash_value};

/// A count-min sketch over f64 counters (so it can also carry SUM payloads
/// for the sketch-join operator).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    counters: Vec<f64>,
    total: f64,
}

impl CountMinSketch {
    /// Create a sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize) -> Self {
        let width = width.max(1);
        let depth = depth.max(1);
        Self {
            width,
            depth,
            counters: vec![0.0; width * depth],
            total: 0.0,
        }
    }

    /// Create a sketch sized for additive error `epsilon·N` with failure
    /// probability `delta`.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        let epsilon = epsilon.clamp(1e-6, 1.0);
        let delta = delta.clamp(1e-9, 0.5);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil() as usize;
        Self::new(width.max(8), depth.max(2))
    }

    /// Sketch width (columns per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (number of hash rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total mass inserted (the L1 norm `N`).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Additive error bound `ε·N` implied by the current width and mass.
    pub fn error_bound(&self) -> f64 {
        std::f64::consts::E / self.width as f64 * self.total
    }

    /// Add `count` occurrences of `key`.
    pub fn add(&mut self, key: &Value, count: f64) {
        for row in 0..self.depth {
            let col = (hash_value(key, row as u64) % self.width as u64) as usize;
            self.counters[row * self.width + col] += count;
        }
        self.total += count;
    }

    /// Increment `key` by one.
    pub fn insert(&mut self, key: &Value) {
        self.add(key, 1.0);
    }

    /// Add `count` occurrences of a raw byte key (e.g. a row-encoded key from
    /// `taster_storage::row_key`). Byte keys live in their own hash domain:
    /// mix byte-keyed and `Value`-keyed insertions only through the same
    /// encoding on both sides.
    pub fn add_bytes(&mut self, key: &[u8], count: f64) {
        for row in 0..self.depth {
            let col = (hash_bytes(key, row as u64) % self.width as u64) as usize;
            self.counters[row * self.width + col] += count;
        }
        self.total += count;
    }

    /// Point estimate of the total mass added for a raw byte key.
    pub fn estimate_bytes(&self, key: &[u8]) -> f64 {
        let mut min = f64::INFINITY;
        for row in 0..self.depth {
            let col = (hash_bytes(key, row as u64) % self.width as u64) as usize;
            min = min.min(self.counters[row * self.width + col]);
        }
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Point estimate of the total mass added for `key` (never an
    /// underestimate for non-negative updates).
    pub fn estimate(&self, key: &Value) -> f64 {
        let mut min = f64::INFINITY;
        for row in 0..self.depth {
            let col = (hash_value(key, row as u64) % self.width as u64) as usize;
            min = min.min(self.counters[row * self.width + col]);
        }
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Estimate the inner product (join size) between this sketch and another
    /// of identical dimensions: `min_row Σ_col a[row][col]·b[row][col]`.
    pub fn inner_product(&self, other: &CountMinSketch) -> Option<f64> {
        if self.width != other.width || self.depth != other.depth {
            return None;
        }
        let mut best = f64::INFINITY;
        for row in 0..self.depth {
            let mut dot = 0.0;
            for col in 0..self.width {
                dot += self.counters[row * self.width + col]
                    * other.counters[row * self.width + col];
            }
            best = best.min(dot);
        }
        Some(if best.is_finite() { best } else { 0.0 })
    }

    /// Merge another sketch built with identical dimensions (pairwise counter
    /// addition). Returns `false` (and leaves `self` untouched) on a
    /// dimension mismatch.
    pub fn merge(&mut self, other: &CountMinSketch) -> bool {
        if self.width != other.width || self.depth != other.depth {
            return false;
        }
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total += other.total;
        true
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<f64>() + 64
    }

    /// Serialize the sketch into a [`ByteWriter`] (fixed-width little-endian;
    /// counters stored densely). Used by the durability layer to persist
    /// warehouse-resident sketches.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u64(self.width as u64);
        w.put_u64(self.depth as u64);
        w.put_f64(self.total);
        for &c in &self.counters {
            w.put_f64(c);
        }
    }

    /// Deserialize a sketch previously written by
    /// [`encode_into`](Self::encode_into). Corrupt dimensions are rejected
    /// before any counter allocation happens.
    pub fn decode_from(r: &mut ByteReader) -> Result<Self, StorageError> {
        let width = usize::try_from(r.get_u64()?)
            .map_err(|_| StorageError::Corrupt("sketch width overflows usize".to_string()))?;
        let depth = usize::try_from(r.get_u64()?)
            .map_err(|_| StorageError::Corrupt("sketch depth overflows usize".to_string()))?;
        let total = r.get_f64()?;
        let cells = width
            .checked_mul(depth)
            .ok_or_else(|| StorageError::Corrupt("sketch dimensions overflow".to_string()))?;
        if width == 0 || depth == 0 {
            return Err(StorageError::Corrupt(
                "sketch dimensions must be non-zero".to_string(),
            ));
        }
        if r.remaining() < cells.saturating_mul(8) {
            return Err(StorageError::Corrupt(format!(
                "sketch claims {cells} counters but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut counters = Vec::with_capacity(cells);
        for _ in 0..cells {
            counters.push(r.get_f64()?);
        }
        Ok(Self {
            width,
            depth,
            counters,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(64, 4);
        for i in 0..1000i64 {
            cm.add(&Value::Int(i % 50), 1.0);
        }
        for i in 0..50i64 {
            assert!(cm.estimate(&Value::Int(i)) >= 20.0);
        }
        assert_eq!(cm.total(), 1000.0);
    }

    #[test]
    fn error_is_within_bound_for_sized_sketch() {
        let mut cm = CountMinSketch::with_error(0.01, 0.01);
        for i in 0..20_000i64 {
            cm.insert(&Value::Int(i % 200));
        }
        let bound = cm.error_bound();
        for i in 0..200i64 {
            let est = cm.estimate(&Value::Int(i));
            assert!(est - 100.0 <= bound + 1e-9, "estimate {est} exceeds bound {bound}");
        }
    }

    #[test]
    fn byte_keys_never_underestimate_and_merge() {
        let mut a = CountMinSketch::new(128, 4);
        let mut b = CountMinSketch::new(128, 4);
        for i in 0..1000u32 {
            a.add_bytes(&(i % 50).to_le_bytes(), 1.0);
            b.add_bytes(&(i % 50).to_le_bytes(), 2.0);
        }
        for i in 0..50u32 {
            assert!(a.estimate_bytes(&i.to_le_bytes()) >= 20.0);
        }
        assert!(a.merge(&b));
        for i in 0..50u32 {
            assert!(a.estimate_bytes(&i.to_le_bytes()) >= 60.0);
        }
    }

    #[test]
    fn merge_equals_union_build() {
        let mut a = CountMinSketch::new(128, 4);
        let mut b = CountMinSketch::new(128, 4);
        let mut whole = CountMinSketch::new(128, 4);
        for i in 0..500i64 {
            a.insert(&Value::Int(i % 37));
            whole.insert(&Value::Int(i % 37));
        }
        for i in 500..1000i64 {
            b.insert(&Value::Int(i % 37));
            whole.insert(&Value::Int(i % 37));
        }
        assert!(a.merge(&b));
        for i in 0..37i64 {
            assert_eq!(a.estimate(&Value::Int(i)), whole.estimate(&Value::Int(i)));
        }
    }

    #[test]
    fn merge_rejects_mismatched_dimensions() {
        let mut a = CountMinSketch::new(64, 4);
        let b = CountMinSketch::new(32, 4);
        assert!(!a.merge(&b));
    }

    #[test]
    fn inner_product_estimates_join_size() {
        // R has key i repeated i+1 times; S has each key once.
        let mut r = CountMinSketch::new(256, 5);
        let mut s = CountMinSketch::new(256, 5);
        let mut exact = 0.0;
        for i in 0..50i64 {
            for _ in 0..=(i as usize) {
                r.insert(&Value::Int(i));
            }
            s.insert(&Value::Int(i));
            exact += (i + 1) as f64;
        }
        let est = r.inner_product(&s).unwrap();
        assert!(est >= exact);
        assert!(est <= exact * 1.5, "join size estimate too loose: {est} vs {exact}");
        assert!(r.inner_product(&CountMinSketch::new(16, 2)).is_none());
    }

    #[test]
    fn size_bytes_reflects_dimensions() {
        assert!(CountMinSketch::new(1024, 5).size_bytes() > CountMinSketch::new(64, 2).size_bytes());
    }

    #[test]
    fn codec_round_trips_and_rejects_truncation() {
        let mut cm = CountMinSketch::new(64, 4);
        for i in 0..1000i64 {
            cm.add(&Value::Int(i % 50), 1.5);
        }
        let mut w = taster_storage::ByteWriter::new();
        cm.encode_into(&mut w);
        let bytes = w.into_bytes();
        let back =
            CountMinSketch::decode_from(&mut taster_storage::ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.width(), 64);
        assert_eq!(back.depth(), 4);
        assert_eq!(back.total(), cm.total());
        for i in 0..50i64 {
            assert_eq!(back.estimate(&Value::Int(i)), cm.estimate(&Value::Int(i)));
        }
        // Any truncation is a typed error, never a panic or overallocation.
        for cut in 0..bytes.len() {
            assert!(
                CountMinSketch::decode_from(&mut taster_storage::ByteReader::new(&bytes[..cut]))
                    .is_err(),
                "cut={cut}"
            );
        }
    }
}
