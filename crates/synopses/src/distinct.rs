//! Distinct sampler `Γ^D_{p,A,δ}` (Section II of the paper, after Quickr).
//!
//! Given stratification attributes `A`, a minimum per-group row count `δ` and
//! a pass-through probability `p`, the sampler guarantees that at least `δ`
//! rows pass for every distinct combination of values of `A`; additional rows
//! of the same combination pass with probability `p`. Rows passed by the
//! frequency check carry weight 1, rows passed by the probability check carry
//! weight `1/p`.
//!
//! Per-group counts are tracked with a [`SpaceSaving`] heavy-hitters sketch so
//! the operator is single-pass with bounded state. When partitioned over `D`
//! operator instances, each instance raises its local minimum from `δ` to
//! `δ/D + ε` with `ε = δ/D` (the paper's adjustment assuming uniformly
//! distributed data).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use taster_storage::batch::RecordBatch;
use taster_storage::{StorageError, Value};

use crate::heavy_hitters::SpaceSaving;
use crate::sample::WeightedSample;

/// Configuration of a distinct sampler.
#[derive(Debug, Clone)]
pub struct DistinctSamplerConfig {
    /// Stratification attributes `A`.
    pub stratification: Vec<String>,
    /// Minimum rows guaranteed per distinct combination of `A`.
    pub delta: usize,
    /// Pass-through probability for rows beyond the first `delta`.
    pub probability: f64,
    /// Capacity of the per-group frequency sketch.
    pub sketch_capacity: usize,
}

impl DistinctSamplerConfig {
    /// A reasonable default configuration for the given stratification set.
    pub fn new(stratification: Vec<String>, delta: usize, probability: f64) -> Self {
        Self {
            stratification,
            delta: delta.max(1),
            probability: probability.clamp(1e-9, 1.0),
            sketch_capacity: 65_536,
        }
    }
}

/// The distinct (stratified-lite) sampler.
#[derive(Debug, Clone)]
pub struct DistinctSampler {
    config: DistinctSamplerConfig,
    counts: SpaceSaving,
    rng: SmallRng,
    /// Effective per-instance minimum (δ/D + ε when distributed).
    local_delta: usize,
}

impl DistinctSampler {
    /// Create a sampler running as a single instance.
    pub fn new(config: DistinctSamplerConfig, seed: u64) -> Self {
        let local_delta = config.delta;
        Self {
            counts: SpaceSaving::new(config.sketch_capacity),
            rng: SmallRng::seed_from_u64(seed),
            config,
            local_delta,
        }
    }

    /// Create one of `distribution_factor` parallel instances. Each instance
    /// guarantees `δ/D + ε` rows locally with `ε = δ/D`, per the paper.
    pub fn new_distributed(
        config: DistinctSamplerConfig,
        distribution_factor: usize,
        seed: u64,
    ) -> Self {
        let d = distribution_factor.max(1);
        let per_instance = config.delta.div_ceil(d);
        let epsilon = per_instance; // ε = δ/D
        let local_delta = (per_instance + epsilon).max(1);
        Self {
            counts: SpaceSaving::new(config.sketch_capacity),
            rng: SmallRng::seed_from_u64(seed),
            config,
            local_delta,
        }
    }

    /// The sampler configuration.
    pub fn config(&self) -> &DistinctSamplerConfig {
        &self.config
    }

    /// The per-instance minimum row count currently in force.
    pub fn local_delta(&self) -> usize {
        self.local_delta
    }

    /// Sample one batch.
    pub fn sample_batch(&mut self, batch: &RecordBatch) -> Result<WeightedSample, StorageError> {
        let strat_cols: Vec<&taster_storage::ColumnData> = self
            .config
            .stratification
            .iter()
            .map(|name| batch.column_by_name(name))
            .collect::<Result<Vec<_>, _>>()?;

        let mut idx = Vec::new();
        let mut weights = Vec::new();
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = strat_cols.iter().map(|c| c.value(row)).collect();
            let key = Value::Str(composite_key(&key));
            let seen = self.counts.insert(&key);
            if seen <= self.local_delta as u64 {
                idx.push(row);
                weights.push(1.0);
            } else if self.rng.random::<f64>() < self.config.probability {
                idx.push(row);
                weights.push(1.0 / self.config.probability);
            }
        }
        Ok(WeightedSample {
            rows: batch.take(&idx),
            weights,
            stratification: self.config.stratification.clone(),
            probability: self.config.probability,
            source_rows: batch.num_rows(),
        })
    }

    /// Sample a sequence of partitions with this instance (sequential use of
    /// a single instance; for the distributed setting create one instance per
    /// partition via [`DistinctSampler::new_distributed`] and merge samples).
    pub fn sample_partitions(
        &mut self,
        partitions: &[RecordBatch],
    ) -> Result<WeightedSample, StorageError> {
        let mut out: Option<WeightedSample> = None;
        for p in partitions {
            let s = self.sample_batch(p)?;
            match &mut out {
                None => out = Some(s),
                Some(acc) => acc.merge(&s)?,
            }
        }
        Ok(out.unwrap_or_else(|| {
            WeightedSample::empty(std::sync::Arc::new(taster_storage::Schema::empty()))
        }))
    }
}

/// Build a composite string key for a set of stratification values. Using a
/// single string keeps the heavy-hitters sketch key type simple and cheap to
/// hash.
pub fn composite_key(values: &[Value]) -> String {
    let mut s = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push('\u{1f}');
        }
        s.push_str(&v.to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use taster_storage::batch::BatchBuilder;

    /// 5 rare groups with 3 rows each, 1 huge group with the rest.
    fn skewed_batch(n: usize) -> RecordBatch {
        let mut grp = Vec::with_capacity(n);
        let mut val = Vec::with_capacity(n);
        for i in 0..n {
            let g = if i < 15 { (i / 3) as i64 } else { 99 };
            grp.push(g);
            val.push(i as f64);
        }
        BatchBuilder::new()
            .column("grp", grp)
            .column("v", val)
            .build()
            .unwrap()
    }

    #[test]
    fn every_group_is_covered() {
        let b = skewed_batch(50_000);
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 3, 0.01);
        let mut s = DistinctSampler::new(cfg, 1);
        let sample = s.sample_batch(&b).unwrap();

        let grp = sample.rows.column_by_name("grp").unwrap();
        let mut seen: HashMap<i64, usize> = HashMap::new();
        for i in 0..grp.len() {
            *seen.entry(grp.value(i).as_i64().unwrap()).or_insert(0) += 1;
        }
        for g in 0..5i64 {
            assert!(
                seen.get(&g).copied().unwrap_or(0) >= 3,
                "group {g} lost by the distinct sampler"
            );
        }
        // The dominant group must not be fully retained.
        assert!(seen[&99] < 5_000, "dominant group barely reduced");
    }

    #[test]
    fn weights_reflect_pass_reason() {
        let b = skewed_batch(10_000);
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 2, 0.1);
        let mut s = DistinctSampler::new(cfg, 5);
        let sample = s.sample_batch(&b).unwrap();
        let mut saw_one = false;
        let mut saw_scaled = false;
        for &w in &sample.weights {
            if (w - 1.0).abs() < 1e-12 {
                saw_one = true;
            } else {
                assert!((w - 10.0).abs() < 1e-9);
                saw_scaled = true;
            }
        }
        assert!(saw_one && saw_scaled);
    }

    #[test]
    fn count_estimate_is_unbiased_enough() {
        let b = skewed_batch(100_000);
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 5, 0.05);
        let mut s = DistinctSampler::new(cfg, 11);
        let sample = s.sample_batch(&b).unwrap();
        // Sum of weights for the dominant group should approximate its size.
        let grp = sample.rows.column_by_name("grp").unwrap();
        let mut est = 0.0;
        for i in 0..grp.len() {
            if grp.value(i).as_i64() == Some(99) {
                est += sample.weights[i];
            }
        }
        let truth = (100_000 - 15) as f64;
        assert!((est - truth).abs() / truth < 0.15, "estimate {est} vs {truth}");
    }

    #[test]
    fn distributed_instances_raise_local_delta() {
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 8, 0.1);
        let single = DistinctSampler::new(cfg.clone(), 0);
        let distributed = DistinctSampler::new_distributed(cfg, 4, 0);
        assert_eq!(single.local_delta(), 8);
        assert_eq!(distributed.local_delta(), 4); // δ/D + ε = 2 + 2
    }

    #[test]
    fn missing_stratification_column_is_an_error() {
        let b = skewed_batch(10);
        let cfg = DistinctSamplerConfig::new(vec!["nope".into()], 2, 0.5);
        let mut s = DistinctSampler::new(cfg, 0);
        assert!(s.sample_batch(&b).is_err());
    }

    #[test]
    fn composite_key_distinguishes_order_and_values() {
        let a = composite_key(&[Value::Int(1), Value::Int(23)]);
        let b = composite_key(&[Value::Int(12), Value::Int(3)]);
        assert_ne!(a, b);
    }
}
