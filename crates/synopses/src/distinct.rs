//! Distinct sampler `Γ^D_{p,A,δ}` (Section II of the paper, after Quickr).
//!
//! Given stratification attributes `A`, a minimum per-group row count `δ` and
//! a pass-through probability `p`, the sampler guarantees that at least `δ`
//! rows pass for every distinct combination of values of `A`; additional rows
//! of the same combination pass with probability `p`. Rows passed by the
//! frequency check carry weight 1, rows passed by the probability check carry
//! weight `1/p`.
//!
//! Per-group counts are tracked with a [`SpaceSaving`] heavy-hitters sketch so
//! the operator is single-pass with bounded state. The sketch is keyed by the
//! row-encoded byte keys of [`taster_storage::row_key`]: the stratification
//! columns are encoded once per batch into a reusable byte buffer
//! ([`RowKeys`]) and each row's key is a borrowed `&[u8]` slice — no per-row
//! `Vec<Value>` widening, no composite-string allocation, and no
//! `Int(1)`/`Str("1")` type collisions (the byte encoding is type-tagged and
//! injective up to `Value` equality).
//!
//! The δ check compares the sketch's *lower bound* (`count - error`), so the
//! coverage guarantee survives sketch evictions: a rare group readmitted
//! after eviction still gets its δ guaranteed rows (at worst a few extra,
//! never fewer). When partitioned over `D` operator instances, each instance
//! raises its local minimum from `δ` to `δ/D + ε` with `ε = δ/D` (the paper's
//! adjustment assuming uniformly distributed data).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use taster_storage::batch::RecordBatch;
use taster_storage::row_key::{float_key, FloatKey, RowKeys};
use taster_storage::{StorageError, Value};

use crate::heavy_hitters::SpaceSaving;
use crate::sample::WeightedSample;

/// Configuration of a distinct sampler.
#[derive(Debug, Clone)]
pub struct DistinctSamplerConfig {
    /// Stratification attributes `A`.
    pub stratification: Vec<String>,
    /// Minimum rows guaranteed per distinct combination of `A`.
    pub delta: usize,
    /// Pass-through probability for rows beyond the first `delta`.
    pub probability: f64,
    /// Capacity of the per-group frequency sketch.
    pub sketch_capacity: usize,
}

impl DistinctSamplerConfig {
    /// A reasonable default configuration for the given stratification set.
    pub fn new(stratification: Vec<String>, delta: usize, probability: f64) -> Self {
        Self {
            stratification,
            delta: delta.max(1),
            probability: probability.clamp(1e-9, 1.0),
            sketch_capacity: 65_536,
        }
    }
}

/// The distinct (stratified-lite) sampler.
///
/// # Examples
///
/// Every distinct group is guaranteed its first `δ` rows (weight 1); rows
/// beyond that pass with probability `p` and carry weight `1/p`:
///
/// ```
/// use taster_storage::batch::BatchBuilder;
/// use taster_synopses::distinct::{DistinctSampler, DistinctSamplerConfig};
///
/// let batch = BatchBuilder::new()
///     .column("grp", vec![1i64, 1, 1, 1, 2])
///     .column("v", vec![10.0, 11.0, 12.0, 13.0, 14.0])
///     .build()
///     .unwrap();
///
/// // δ = 2 guaranteed rows per group, then pass-through probability ≈ 0.
/// let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 2, 1e-9);
/// let mut sampler = DistinctSampler::new(cfg, 7);
/// let sample = sampler.sample_batch(&batch).unwrap();
///
/// // Group 1 keeps exactly δ = 2 of its 4 rows; group 2's single row is
/// // kept whole. Frequency-check rows carry Horvitz–Thompson weight 1.
/// assert_eq!(sample.len(), 3);
/// assert!(sample.weights.iter().all(|&w| w == 1.0));
/// ```
///
/// The δ guarantee survives sketch eviction because the check compares the
/// sketch's guaranteed *lower bound*, never the inflated raw counter — see
/// the `sketch_capacity < #groups` regression test in this module and the
/// eviction discussion in [`crate::heavy_hitters`].
#[derive(Debug, Clone)]
pub struct DistinctSampler {
    config: DistinctSamplerConfig,
    counts: SpaceSaving<Vec<u8>>,
    /// Reusable per-batch key buffer (allocations amortize across batches).
    keys: RowKeys,
    rng: SmallRng,
    /// Effective per-instance minimum (δ/D + ε when distributed).
    local_delta: usize,
}

impl DistinctSampler {
    /// Create a sampler running as a single instance.
    pub fn new(config: DistinctSamplerConfig, seed: u64) -> Self {
        let local_delta = config.delta;
        Self {
            counts: SpaceSaving::new(config.sketch_capacity),
            keys: RowKeys::new(),
            rng: SmallRng::seed_from_u64(seed),
            config,
            local_delta,
        }
    }

    /// Create one of `distribution_factor` parallel instances. Each instance
    /// guarantees `δ/D + ε` rows locally with `ε = δ/D`, per the paper.
    pub fn new_distributed(
        config: DistinctSamplerConfig,
        distribution_factor: usize,
        seed: u64,
    ) -> Self {
        let d = distribution_factor.max(1);
        let per_instance = config.delta.div_ceil(d);
        let epsilon = per_instance; // ε = δ/D
        let local_delta = (per_instance + epsilon).max(1);
        Self {
            counts: SpaceSaving::new(config.sketch_capacity),
            keys: RowKeys::new(),
            rng: SmallRng::seed_from_u64(seed),
            config,
            local_delta,
        }
    }

    /// The sampler configuration.
    pub fn config(&self) -> &DistinctSamplerConfig {
        &self.config
    }

    /// The per-instance minimum row count currently in force.
    pub fn local_delta(&self) -> usize {
        self.local_delta
    }

    /// Sample one batch.
    pub fn sample_batch(&mut self, batch: &RecordBatch) -> Result<WeightedSample, StorageError> {
        let strat_cols: Vec<&taster_storage::ColumnData> = self
            .config
            .stratification
            .iter()
            .map(|name| batch.column_by_name(name))
            .collect::<Result<Vec<_>, _>>()?;

        // Encode every row's stratification key into one flat byte buffer up
        // front; the per-row loop then only hashes borrowed byte slices.
        self.keys.reencode_columns(&strat_cols, batch.num_rows());

        let mut idx = Vec::new();
        let mut weights = Vec::new();
        for row in 0..batch.num_rows() {
            // Guaranteed lower bound on this group's occurrences (exact until
            // the sketch evicts; see the δ discussion in `heavy_hitters`).
            let seen = self.counts.insert(self.keys.key(row));
            if seen <= self.local_delta as u64 {
                idx.push(row);
                weights.push(1.0);
            } else if self.rng.random::<f64>() < self.config.probability {
                idx.push(row);
                weights.push(1.0 / self.config.probability);
            }
        }
        Ok(WeightedSample {
            rows: batch.take(&idx),
            weights,
            stratification: self.config.stratification.clone(),
            probability: self.config.probability,
            source_rows: batch.num_rows(),
        })
    }

    /// Sample a sequence of partitions with this instance (sequential use of
    /// a single instance; for the distributed setting create one instance per
    /// partition via [`DistinctSampler::new_distributed`] and merge samples).
    ///
    /// Returns `Ok(None)` for zero partitions: with no input there is no
    /// schema to build even an empty sample from, and silently returning a
    /// `Schema::empty()` sample used to poison downstream
    /// [`WeightedSample::merge`] calls against real-schema samples. Callers
    /// decide what an absent sample means.
    pub fn sample_partitions<B: std::borrow::Borrow<RecordBatch>>(
        &mut self,
        partitions: &[B],
    ) -> Result<Option<WeightedSample>, StorageError> {
        let mut out: Option<WeightedSample> = None;
        for p in partitions {
            let s = self.sample_batch(p.borrow())?;
            match &mut out {
                None => out = Some(s),
                Some(acc) => acc.merge(&s)?,
            }
        }
        Ok(out)
    }

    /// Absorb a batch of **appended** rows into an existing sample
    /// (incremental maintenance: the sampler streams over the delta only, no
    /// rebuild over the old rows).
    ///
    /// The sampler is single-pass by construction, so feeding it the appended
    /// rows continues exactly the stream it would have seen had the rows been
    /// present at build time — *when the same sampler instance is kept*. A
    /// **fresh** sampler instance (the refresh path, which has only the
    /// materialized sample, not the build-time sketch state) re-guarantees δ
    /// rows for every group it encounters in the delta: already-covered
    /// groups may gain up to δ extra weight-1 rows, which keeps estimates
    /// unbiased (those rows are retained with probability 1) and keeps the
    /// coverage guarantee — a new group appearing only in the appended rows
    /// gets its δ rows from the delta pass.
    ///
    /// ```
    /// use taster_storage::batch::BatchBuilder;
    /// use taster_synopses::distinct::{DistinctSampler, DistinctSamplerConfig};
    ///
    /// let old = BatchBuilder::new()
    ///     .column("grp", vec![1i64; 100])
    ///     .build()
    ///     .unwrap();
    /// let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 3, 1e-9);
    /// let mut sampler = DistinctSampler::new(cfg.clone(), 7);
    /// let mut sample = sampler.sample_batch(&old).unwrap();
    /// assert_eq!(sample.len(), 3); // δ rows of group 1
    ///
    /// // Appended rows introduce a brand-new group 2: a fresh maintenance
    /// // pass (the refresh path) must cover it with δ rows too.
    /// let delta = BatchBuilder::new()
    ///     .column("grp", vec![2i64; 50])
    ///     .build()
    ///     .unwrap();
    /// DistinctSampler::new(cfg, 8).update(&mut sample, &delta).unwrap();
    /// assert_eq!(sample.len(), 6);
    /// assert_eq!(sample.source_rows, 150);
    /// ```
    pub fn update(
        &mut self,
        sample: &mut WeightedSample,
        batch: &RecordBatch,
    ) -> Result<(), StorageError> {
        let delta = self.sample_batch(batch)?;
        sample.merge(&delta)
    }
}

/// Separator between the values of a composite key.
const KEY_SEP: char = '\u{1f}';
/// Escape prefix protecting `KEY_SEP`/`KEY_ESC` occurrences inside strings.
const KEY_ESC: char = '\u{1b}';

/// Build a composite string key for a set of stratification values.
///
/// Legacy/readability path: the vectorized samplers key their sketches by the
/// row-encoded byte keys of [`taster_storage::row_key`] instead. This
/// function is kept exported for ad-hoc keys and debugging output, and is
/// *injective up to [`Value`] equality*: every value is prefixed with a type
/// tag (so `Value::Null`, `Value::Str("NULL")` and `Value::Int(1)` vs
/// `Value::Str("1")` no longer collide), integral floats normalize to the int
/// form (`Int(2)` and `Float(2.0)` compare equal and share a key), and
/// separator characters inside strings are escaped so a string value cannot
/// fake a column boundary.
pub fn composite_key(values: &[Value]) -> String {
    let mut s = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(KEY_SEP);
        }
        match v {
            Value::Null => s.push('n'),
            Value::Bool(b) => {
                s.push('b');
                s.push(if *b { '1' } else { '0' });
            }
            Value::Int(x) => {
                s.push('i');
                s.push_str(&x.to_string());
            }
            // Float normalization is shared with the byte encoding
            // (`row_key::float_key`): integral floats merge with their int
            // form, -0.0 stays distinct from 0.
            Value::Float(x) => match float_key(*x) {
                FloatKey::Int(i) => {
                    s.push('i');
                    s.push_str(&i.to_string());
                }
                FloatKey::Bits(b) => {
                    s.push('f');
                    s.push_str(&format!("{b:016x}"));
                }
            },
            Value::Str(x) => {
                s.push('s');
                for ch in x.chars() {
                    if ch == KEY_SEP || ch == KEY_ESC {
                        s.push(KEY_ESC);
                    }
                    s.push(ch);
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::partition::split_batch;

    /// 5 rare groups with 3 rows each, 1 huge group with the rest.
    fn skewed_batch(n: usize) -> RecordBatch {
        let mut grp = Vec::with_capacity(n);
        let mut val = Vec::with_capacity(n);
        for i in 0..n {
            let g = if i < 15 { (i / 3) as i64 } else { 99 };
            grp.push(g);
            val.push(i as f64);
        }
        BatchBuilder::new()
            .column("grp", grp)
            .column("v", val)
            .build()
            .unwrap()
    }

    fn group_counts(sample: &WeightedSample) -> HashMap<i64, usize> {
        let grp = sample.rows.column_by_name("grp").unwrap();
        let mut seen: HashMap<i64, usize> = HashMap::new();
        for i in 0..grp.len() {
            *seen.entry(grp.value(i).as_i64().unwrap()).or_insert(0) += 1;
        }
        seen
    }

    #[test]
    fn every_group_is_covered() {
        let b = skewed_batch(50_000);
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 3, 0.01);
        let mut s = DistinctSampler::new(cfg, 1);
        let sample = s.sample_batch(&b).unwrap();

        let seen = group_counts(&sample);
        for g in 0..5i64 {
            assert!(
                seen.get(&g).copied().unwrap_or(0) >= 3,
                "group {g} lost by the distinct sampler"
            );
        }
        // The dominant group must not be fully retained.
        assert!(seen[&99] < 5_000, "dominant group barely reduced");
    }

    /// Regression test for the δ-guarantee violation under sketch eviction:
    /// with `sketch_capacity` smaller than the number of groups, a rare group
    /// arriving after the sketch filled up used to inherit the evicted
    /// counter's count, look "already seen `min_count + 1` times", and get
    /// dropped to the p-probability path — losing the group almost surely at
    /// small p. The lower-bound δ check keeps it covered.
    #[test]
    fn every_group_is_covered_despite_sketch_eviction() {
        let n = 20_000usize;
        let fillers = 8i64; // fill the sketch with count-4 counters first
        let rares = 10i64;
        let mut grp = Vec::with_capacity(n);
        for f in 0..fillers {
            for _ in 0..4 {
                grp.push(1_000 + f);
            }
        }
        for r in 0..rares {
            for _ in 0..3 {
                grp.push(r);
            }
        }
        while grp.len() < n {
            grp.push(99);
        }
        let val: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b = BatchBuilder::new()
            .column("grp", grp)
            .column("v", val)
            .build()
            .unwrap();

        let mut cfg = DistinctSamplerConfig::new(vec!["grp".into()], 3, 0.001);
        cfg.sketch_capacity = 8; // < 8 fillers + 10 rares + 1 dominant groups
        let mut s = DistinctSampler::new(cfg, 42);
        let sample = s.sample_batch(&b).unwrap();

        let seen = group_counts(&sample);
        for g in 0..rares {
            assert!(
                seen.get(&g).copied().unwrap_or(0) >= 3,
                "rare group {g} lost under eviction pressure: {seen:?}"
            );
        }
        // Rows admitted via the frequency check must carry weight 1; the
        // probabilistic remainder of the dominant group must stay sparse.
        assert!(seen.get(&99).copied().unwrap_or(0) < 1_000);
    }

    #[test]
    fn weights_reflect_pass_reason() {
        let b = skewed_batch(10_000);
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 2, 0.1);
        let mut s = DistinctSampler::new(cfg, 5);
        let sample = s.sample_batch(&b).unwrap();
        let mut saw_one = false;
        let mut saw_scaled = false;
        for &w in &sample.weights {
            if (w - 1.0).abs() < 1e-12 {
                saw_one = true;
            } else {
                assert!((w - 10.0).abs() < 1e-9);
                saw_scaled = true;
            }
        }
        assert!(saw_one && saw_scaled);
    }

    #[test]
    fn count_estimate_is_unbiased_enough() {
        let b = skewed_batch(100_000);
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 5, 0.05);
        let mut s = DistinctSampler::new(cfg, 11);
        let sample = s.sample_batch(&b).unwrap();
        // Sum of weights for the dominant group should approximate its size.
        let grp = sample.rows.column_by_name("grp").unwrap();
        let mut est = 0.0;
        for i in 0..grp.len() {
            if grp.value(i).as_i64() == Some(99) {
                est += sample.weights[i];
            }
        }
        let truth = (100_000 - 15) as f64;
        assert!((est - truth).abs() / truth < 0.15, "estimate {est} vs {truth}");
    }

    #[test]
    fn distributed_instances_raise_local_delta() {
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 8, 0.1);
        let single = DistinctSampler::new(cfg.clone(), 0);
        let distributed = DistinctSampler::new_distributed(cfg, 4, 0);
        assert_eq!(single.local_delta(), 8);
        assert_eq!(distributed.local_delta(), 4); // δ/D + ε = 2 + 2
    }

    #[test]
    fn missing_stratification_column_is_an_error() {
        let b = skewed_batch(10);
        let cfg = DistinctSamplerConfig::new(vec!["nope".into()], 2, 0.5);
        let mut s = DistinctSampler::new(cfg, 0);
        assert!(s.sample_batch(&b).is_err());
    }

    #[test]
    fn zero_partitions_yield_explicit_none() {
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 2, 0.5);
        let mut s = DistinctSampler::new(cfg, 0);
        assert!(s.sample_partitions::<RecordBatch>(&[]).unwrap().is_none());
    }

    #[test]
    fn partitioned_samples_carry_the_real_schema_and_merge() {
        let b = skewed_batch(20_000);
        let parts = split_batch(&b, 4);
        let cfg = DistinctSamplerConfig::new(vec!["grp".into()], 3, 0.05);
        let mut s = DistinctSampler::new(cfg.clone(), 9);
        let merged = s.sample_partitions(&parts).unwrap().expect("non-empty");
        assert_eq!(merged.rows.schema().as_ref(), b.schema().as_ref());
        assert_eq!(merged.source_rows, 20_000);
        // A partitioned sample merges cleanly with another real-schema sample
        // (the old Schema::empty() placeholder made this error).
        let mut other = DistinctSampler::new(cfg, 10)
            .sample_batch(&b)
            .unwrap();
        other.merge(&merged).unwrap();
        assert_eq!(other.source_rows, 40_000);
    }

    #[test]
    fn composite_key_distinguishes_order_and_values() {
        let a = composite_key(&[Value::Int(1), Value::Int(23)]);
        let b = composite_key(&[Value::Int(12), Value::Int(3)]);
        assert_ne!(a, b);
    }

    /// Regression test for the old composite-key ambiguities: untagged
    /// stringification collided `Null` with the literal string "NULL",
    /// `Int(1)` with `Str("1")`, and a string containing the separator with a
    /// genuine column boundary.
    #[test]
    fn composite_key_is_type_tagged_and_escaped() {
        assert_ne!(
            composite_key(&[Value::Null]),
            composite_key(&[Value::Str("NULL".into())])
        );
        assert_ne!(
            composite_key(&[Value::Int(1)]),
            composite_key(&[Value::Str("1".into())])
        );
        assert_ne!(
            composite_key(&[Value::Bool(true)]),
            composite_key(&[Value::Str("true".into())])
        );
        // A separator embedded in a string cannot fake a column boundary.
        assert_ne!(
            composite_key(&[Value::Str("a\u{1f}sb".into())]),
            composite_key(&[Value::Str("a".into()), Value::Str("b".into())])
        );
        // Int/Float normalization mirrors Value equality.
        assert_eq!(
            composite_key(&[Value::Int(2)]),
            composite_key(&[Value::Float(2.0)])
        );
        assert_ne!(
            composite_key(&[Value::Float(2.5)]),
            composite_key(&[Value::Int(2)])
        );
    }

    /// The byte-keyed sketch must group rows exactly as the old per-row
    /// `Vec<Value>` keys did: same sampler decisions for a mixed-type
    /// stratification.
    #[test]
    fn multi_column_stratification_groups_like_value_keys() {
        let n = 5_000usize;
        let a: Vec<i64> = (0..n as i64).map(|i| i % 7).collect();
        let s: Vec<String> = (0..n).map(|i| format!("g{}", i % 5)).collect();
        let b = BatchBuilder::new()
            .column("a", a.clone())
            .column("s", s.clone())
            .column("v", (0..n).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        let cfg = DistinctSamplerConfig::new(vec!["a".into(), "s".into()], 4, 1e-9);
        let mut smp = DistinctSampler::new(cfg, 3);
        let sample = smp.sample_batch(&b).unwrap();
        // With p ≈ 0, exactly δ rows pass per (a, s) group: 35 groups × 4.
        assert_eq!(sample.len(), 35 * 4);
        let mut per_group: HashMap<(i64, String), usize> = HashMap::new();
        let ac = sample.rows.column_by_name("a").unwrap();
        let sc = sample.rows.column_by_name("s").unwrap();
        for i in 0..sample.len() {
            let k = (
                ac.value(i).as_i64().unwrap(),
                sc.value(i).as_str().unwrap().to_string(),
            );
            *per_group.entry(k).or_insert(0) += 1;
        }
        assert_eq!(per_group.len(), 35);
        assert!(per_group.values().all(|&c| c == 4));
    }
}
