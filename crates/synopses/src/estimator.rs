//! Horvitz–Thompson estimation and single-pass per-group error bounds
//! (Section IV-B of the paper).
//!
//! Aggregates over weighted samples are estimated with the HT estimator:
//! `SUM ≈ Σ w_i·t_i`, `COUNT ≈ Σ w_i`, `AVG = SUM/COUNT`. Confidence
//! intervals come from the CLT. A naive HT variance computation is quadratic;
//! following the paper (and Quickr), the per-group standard error only needs
//! the tuples sharing that group's stratification/grouping key, so the
//! estimator below maintains per-group running moments in a hash table and
//! finishes in a single pass.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use taster_storage::Value;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateKind {
    /// COUNT(*) (or COUNT(col) — nulls do not exist in this storage layer).
    Count,
    /// SUM(col).
    Sum,
    /// AVG(col).
    Avg,
    /// MIN(col) — exact over the sample, no scaling (reported without error).
    Min,
    /// MAX(col) — exact over the sample, no scaling (reported without error).
    Max,
}

/// A finished per-group estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateEstimate {
    /// Point estimate.
    pub value: f64,
    /// Estimated standard error of the point estimate (0 for exact results).
    pub std_error: f64,
    /// Number of sample tuples contributing to this group.
    pub sample_rows: usize,
}

impl AggregateEstimate {
    /// Half-width of the CLT confidence interval at the given confidence
    /// level (e.g. 0.95).
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        z_score(confidence) * self.std_error
    }

    /// Relative error (CI half-width / |estimate|) at the given confidence.
    pub fn relative_error(&self, confidence: f64) -> f64 {
        if self.value.abs() < f64::EPSILON {
            return if self.std_error == 0.0 { 0.0 } else { f64::INFINITY };
        }
        self.ci_half_width(confidence) / self.value.abs()
    }
}

/// Approximate inverse normal CDF for the usual confidence levels, falling
/// back to a rational approximation elsewhere (Acklam's method would be
/// overkill; the piecewise table below covers AQP use).
pub fn z_score(confidence: f64) -> f64 {
    let c = confidence.clamp(0.5, 0.9999);
    // Common levels first to keep results bit-stable in tests.
    if (c - 0.90).abs() < 1e-9 {
        return 1.6449;
    }
    if (c - 0.95).abs() < 1e-9 {
        return 1.9600;
    }
    if (c - 0.99).abs() < 1e-9 {
        return 2.5758;
    }
    // Beasley-Springer-Moro style approximation of Φ⁻¹((1+c)/2).
    let p = (1.0 + c) / 2.0;
    let t = (-2.0 * (1.0 - p).ln()).sqrt();
    t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t)
}

/// One group's running moments: everything the HT estimator and its CLT
/// error bound need, accumulated in a single pass and mergeable across
/// partitions/morsels.
#[derive(Debug, Clone)]
pub struct GroupMoments {
    n: usize,
    sum_w: f64,
    sum_wt: f64,
    sum_wt2: f64,
    sum_w2t2: f64,
    sum_w2: f64,
    min: f64,
    max: f64,
}

impl Default for GroupMoments {
    fn default() -> Self {
        Self {
            n: 0,
            sum_w: 0.0,
            sum_wt: 0.0,
            sum_wt2: 0.0,
            sum_w2t2: 0.0,
            sum_w2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl GroupMoments {
    /// Fold one `(value, weight)` observation into the moments.
    #[inline]
    pub fn observe(&mut self, value: f64, weight: f64) {
        self.n += 1;
        self.sum_w += weight;
        self.sum_wt += weight * value;
        self.sum_wt2 += weight * value * value;
        self.sum_w2t2 += weight * weight * value * value;
        self.sum_w2 += weight * weight;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another group's moments into this one (partitioned execution).
    pub fn combine(&mut self, other: &GroupMoments) {
        self.n += other.n;
        self.sum_w += other.sum_w;
        self.sum_wt += other.sum_wt;
        self.sum_wt2 += other.sum_wt2;
        self.sum_w2t2 += other.sum_w2t2;
        self.sum_w2 += other.sum_w2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of sample tuples observed.
    pub fn sample_rows(&self) -> usize {
        self.n
    }
}

/// Backwards-compatible private alias used throughout this module.
type GroupState = GroupMoments;

/// Single-pass per-group Horvitz–Thompson estimator.
///
/// Feed `(group_key, value, weight)` triples with [`GroupedEstimator::add`],
/// then call [`GroupedEstimator::finish`] to obtain per-group estimates for
/// the configured aggregate.
#[derive(Debug, Clone)]
pub struct GroupedEstimator {
    kind: AggregateKind,
    groups: HashMap<Vec<Value>, GroupState>,
}

impl GroupedEstimator {
    /// Create an estimator for one aggregate function.
    pub fn new(kind: AggregateKind) -> Self {
        Self {
            kind,
            groups: HashMap::new(),
        }
    }

    /// The aggregate being estimated.
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// Number of groups seen so far.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Add one sampled tuple: its group key, the aggregation input value and
    /// its HT weight.
    pub fn add(&mut self, group: Vec<Value>, value: f64, weight: f64) {
        self.groups.entry(group).or_default().observe(value, weight);
    }

    /// Merge another estimator over the same aggregate (partitioned
    /// execution).
    pub fn merge(&mut self, other: &GroupedEstimator) {
        debug_assert_eq!(self.kind, other.kind);
        for (k, o) in &other.groups {
            self.groups.entry(k.clone()).or_default().combine(o);
        }
    }

    /// Merge pre-accumulated moments for one group (the dense morsel path
    /// hands its per-group state over through this).
    pub fn insert_moments(&mut self, group: Vec<Value>, moments: GroupMoments) {
        self.groups.entry(group).or_default().combine(&moments);
    }

    /// Produce the per-group estimates.
    pub fn finish(&self) -> HashMap<Vec<Value>, AggregateEstimate> {
        self.groups
            .iter()
            .map(|(k, st)| (k.clone(), finish_group(self.kind, st)))
            .collect()
    }
}

/// Horvitz–Thompson accumulator indexed by dense group ids instead of keys.
///
/// The vectorized aggregation path assigns every row a dense group id via a
/// row-key hash table, then accumulates moments into a flat `Vec` — no
/// hashing or key cloning per (row, aggregate) pair. [`into_keyed`] converts
/// the result into an ordinary [`GroupedEstimator`] (one key materialization
/// per *group*), which is how per-morsel partials are merged.
///
/// [`into_keyed`]: DenseGroupedEstimator::into_keyed
#[derive(Debug, Clone)]
pub struct DenseGroupedEstimator {
    kind: AggregateKind,
    states: Vec<GroupMoments>,
}

impl DenseGroupedEstimator {
    /// Create an estimator for one aggregate function.
    pub fn new(kind: AggregateKind) -> Self {
        Self {
            kind,
            states: Vec::new(),
        }
    }

    /// The aggregate being estimated.
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// Number of groups seen so far.
    pub fn num_groups(&self) -> usize {
        self.states.len()
    }

    /// Add one tuple under the given dense group id. Ids must be assigned
    /// contiguously from 0 (as [`taster_storage::RowKeyMap`] does).
    #[inline]
    pub fn add(&mut self, group_id: u32, value: f64, weight: f64) {
        let idx = group_id as usize;
        if idx >= self.states.len() {
            self.states.resize_with(idx + 1, GroupMoments::default);
        }
        self.states[idx].observe(value, weight);
    }

    /// Convert into a keyed estimator, pairing dense ids with the group keys
    /// produced by `keys` (in id order).
    pub fn into_keyed<I>(self, keys: I) -> GroupedEstimator
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut out = GroupedEstimator::new(self.kind);
        for (moments, key) in self.states.into_iter().zip(keys) {
            out.insert_moments(key, moments);
        }
        out
    }
}

fn finish_group(kind: AggregateKind, st: &GroupState) -> AggregateEstimate {
    let n = st.n.max(1) as f64;
    match kind {
        AggregateKind::Count => {
            // HT estimate of the group's population count is Σw; its variance
            // for Bernoulli(p) sampling is Σ w_i (w_i - 1) ≈ Σw² - Σw.
            let est = st.sum_w;
            let var = (st.sum_w2 - st.sum_w).max(0.0);
            AggregateEstimate {
                value: est,
                std_error: var.sqrt(),
                sample_rows: st.n,
            }
        }
        AggregateKind::Sum => {
            let est = st.sum_wt;
            // Var(Σ w t) ≈ Σ w_i(w_i-1) t_i² for independent Bernoulli draws.
            let var = (st.sum_w2t2 - st.sum_wt2).max(0.0);
            AggregateEstimate {
                value: est,
                std_error: var.sqrt(),
                sample_rows: st.n,
            }
        }
        AggregateKind::Avg => {
            let count = st.sum_w.max(f64::EPSILON);
            let mean = st.sum_wt / count;
            // Weighted sample variance of the values around the weighted mean.
            let var_t = (st.sum_wt2 / count - mean * mean).max(0.0);
            // CLT on the (effective) sample size.
            let effective_n = if st.sum_w2 > 0.0 {
                (st.sum_w * st.sum_w / st.sum_w2).max(1.0)
            } else {
                n
            };
            AggregateEstimate {
                value: mean,
                std_error: (var_t / effective_n).sqrt(),
                sample_rows: st.n,
            }
        }
        AggregateKind::Min => AggregateEstimate {
            value: st.min,
            std_error: 0.0,
            sample_rows: st.n,
        },
        AggregateKind::Max => AggregateEstimate {
            value: st.max,
            std_error: 0.0,
            sample_rows: st.n,
        },
    }
}

/// Derive the Bernoulli sampling probability needed so that a group with the
/// given row count and value coefficient-of-variation meets a relative-error
/// target at a confidence level, and so that at least `min_rows` rows are
/// expected per group.
///
/// This is the sizing rule the planner uses to configure samplers
/// (Section IV-A "Choosing and configuring the synopses"): from the CLT,
/// `relative_error ≈ z · cv / √n`, so `n ≥ (z·cv / ε)²`.
pub fn required_probability(
    group_rows: usize,
    coefficient_of_variation: f64,
    relative_error: f64,
    confidence: f64,
    min_rows: usize,
) -> f64 {
    let group_rows = group_rows.max(1) as f64;
    let cv = coefficient_of_variation.max(0.1);
    let eps = relative_error.clamp(1e-4, 1.0);
    let z = z_score(confidence);
    let needed = ((z * cv / eps).powi(2)).max(min_rows as f64);
    (needed / group_rows).clamp(1e-6, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn exact_when_weights_are_one() {
        let mut est = GroupedEstimator::new(AggregateKind::Sum);
        for i in 0..100 {
            est.add(vec![Value::Int(i % 2)], i as f64, 1.0);
        }
        let out = est.finish();
        let g0 = &out[&vec![Value::Int(0)]];
        let truth: f64 = (0..100).filter(|i| i % 2 == 0).map(|i| i as f64).sum();
        assert!((g0.value - truth).abs() < 1e-9);
        assert_eq!(g0.std_error, 0.0);
    }

    #[test]
    fn ht_sum_is_unbiased_under_bernoulli_sampling() {
        let mut rng = SmallRng::seed_from_u64(17);
        let p = 0.05;
        let truth: f64 = (0..200_000).map(|i| (i % 1000) as f64).sum();
        let mut est = GroupedEstimator::new(AggregateKind::Sum);
        for i in 0..200_000 {
            if rng.random::<f64>() < p {
                est.add(vec![], (i % 1000) as f64, 1.0 / p);
            }
        }
        let out = est.finish();
        let g = &out[&vec![]];
        let rel = (g.value - truth).abs() / truth;
        assert!(rel < 0.05, "relative error {rel}");
        // Truth should be inside a 4-sigma interval essentially always.
        assert!((g.value - truth).abs() < 4.0 * g.std_error);
    }

    #[test]
    fn avg_estimate_and_error_shrink_with_sample_size() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut small = GroupedEstimator::new(AggregateKind::Avg);
        let mut large = GroupedEstimator::new(AggregateKind::Avg);
        for _ in 0..100 {
            small.add(vec![], rng.random::<f64>() * 100.0, 10.0);
        }
        for _ in 0..10_000 {
            large.add(vec![], rng.random::<f64>() * 100.0, 10.0);
        }
        let s = &small.finish()[&vec![]];
        let l = &large.finish()[&vec![]];
        assert!(s.std_error > l.std_error);
        assert!((l.value - 50.0).abs() < 3.0);
    }

    #[test]
    fn count_estimate_scales_weights() {
        let mut est = GroupedEstimator::new(AggregateKind::Count);
        for _ in 0..500 {
            est.add(vec![Value::Str("g".into())], 1.0, 20.0);
        }
        let out = est.finish();
        let g = &out[&vec![Value::Str("g".into())]];
        assert!((g.value - 10_000.0).abs() < 1e-9);
        assert!(g.std_error > 0.0);
        assert_eq!(g.sample_rows, 500);
    }

    #[test]
    fn min_max_are_taken_from_sample_without_error() {
        let mut est = GroupedEstimator::new(AggregateKind::Min);
        est.add(vec![], 5.0, 3.0);
        est.add(vec![], 2.0, 3.0);
        let out = est.finish();
        assert_eq!(out[&vec![]].value, 2.0);
        assert_eq!(out[&vec![]].std_error, 0.0);

        let mut est = GroupedEstimator::new(AggregateKind::Max);
        est.add(vec![], 5.0, 3.0);
        est.add(vec![], 9.0, 3.0);
        assert_eq!(est.finish()[&vec![]].value, 9.0);
    }

    /// Split a stream of (group, value, weight) tuples across `parts`
    /// estimators, merge them, and check the result is exact against one
    /// estimator fed the whole stream.
    fn check_merge_exact(kind: AggregateKind, weights: impl Fn(usize) -> f64, parts: usize) {
        let mut partials: Vec<GroupedEstimator> =
            (0..parts).map(|_| GroupedEstimator::new(kind)).collect();
        let mut whole = GroupedEstimator::new(kind);
        for i in 0..3_000 {
            let (g, v, w) = (vec![Value::Int(i as i64 % 7)], (i % 113) as f64 * 0.5, weights(i));
            partials[i % parts].add(g.clone(), v, w);
            whole.add(g, v, w);
        }
        let mut merged = GroupedEstimator::new(kind);
        for p in &partials {
            merged.merge(p);
        }
        let got = merged.finish();
        let want = whole.finish();
        assert_eq!(got.len(), want.len(), "{kind:?}: group count");
        for (k, w) in &want {
            let g = &got[k];
            assert!(
                (g.value - w.value).abs() <= 1e-9 * w.value.abs().max(1.0),
                "{kind:?}: value {} vs {}",
                g.value,
                w.value
            );
            assert!(
                (g.std_error - w.std_error).abs() <= 1e-9 * w.std_error.abs().max(1.0),
                "{kind:?}: std_error {} vs {}",
                g.std_error,
                w.std_error
            );
            assert_eq!(g.sample_rows, w.sample_rows, "{kind:?}: sample_rows");
        }
    }

    #[test]
    fn merge_is_exact_for_unweighted_sum_count_avg() {
        for kind in [AggregateKind::Sum, AggregateKind::Count, AggregateKind::Avg] {
            for parts in [2, 3, 8] {
                check_merge_exact(kind, |_| 1.0, parts);
            }
        }
    }

    #[test]
    fn merge_is_exact_for_weighted_sum_count_avg() {
        // Heterogeneous HT weights, as produced by a distinct sampler mixing
        // weight-1 (delta) rows with weight-1/p rows.
        for kind in [AggregateKind::Sum, AggregateKind::Count, AggregateKind::Avg] {
            for parts in [2, 5] {
                check_merge_exact(kind, |i| if i % 3 == 0 { 1.0 } else { 10.0 / 3.0 }, parts);
            }
        }
    }

    #[test]
    fn merge_handles_disjoint_and_overlapping_groups() {
        let mut a = GroupedEstimator::new(AggregateKind::Sum);
        let mut b = GroupedEstimator::new(AggregateKind::Sum);
        a.add(vec![Value::Int(1)], 10.0, 1.0);
        a.add(vec![Value::Int(2)], 20.0, 1.0);
        b.add(vec![Value::Int(2)], 5.0, 1.0);
        b.add(vec![Value::Int(3)], 7.0, 1.0);
        a.merge(&b);
        let out = a.finish();
        assert_eq!(out.len(), 3);
        assert_eq!(out[&vec![Value::Int(1)]].value, 10.0);
        assert_eq!(out[&vec![Value::Int(2)]].value, 25.0);
        assert_eq!(out[&vec![Value::Int(3)]].value, 7.0);
    }

    #[test]
    fn dense_estimator_matches_keyed_estimator() {
        let mut dense = DenseGroupedEstimator::new(AggregateKind::Avg);
        let mut keyed = GroupedEstimator::new(AggregateKind::Avg);
        for i in 0..500usize {
            let gid = (i % 4) as u32;
            let (v, w) = (i as f64, 1.0 + (i % 2) as f64);
            dense.add(gid, v, w);
            keyed.add(vec![Value::Int(gid as i64)], v, w);
        }
        assert_eq!(dense.num_groups(), 4);
        let converted = dense.into_keyed((0..4).map(|g| vec![Value::Int(g as i64)]));
        let got = converted.finish();
        let want = keyed.finish();
        for (k, w) in &want {
            assert_eq!(got[k], *w);
        }
    }

    #[test]
    fn merge_equals_single_estimator() {
        let mut a = GroupedEstimator::new(AggregateKind::Sum);
        let mut b = GroupedEstimator::new(AggregateKind::Sum);
        let mut whole = GroupedEstimator::new(AggregateKind::Sum);
        for i in 0..1000 {
            let (g, v, w) = (vec![Value::Int(i % 3)], i as f64, 2.0);
            if i % 2 == 0 {
                a.add(g.clone(), v, w);
            } else {
                b.add(g.clone(), v, w);
            }
            whole.add(g, v, w);
        }
        a.merge(&b);
        let am = a.finish();
        let wm = whole.finish();
        for (k, v) in &wm {
            assert!((am[k].value - v.value).abs() < 1e-9);
            assert!((am[k].std_error - v.std_error).abs() < 1e-9);
        }
    }

    #[test]
    fn z_scores_are_monotone() {
        assert!(z_score(0.99) > z_score(0.95));
        assert!(z_score(0.95) > z_score(0.90));
        assert!((z_score(0.95) - 1.96).abs() < 0.01);
    }

    #[test]
    fn required_probability_behaviour() {
        // Tighter error targets need larger probability.
        let loose = required_probability(100_000, 1.0, 0.10, 0.95, 30);
        let tight = required_probability(100_000, 1.0, 0.01, 0.95, 30);
        assert!(tight > loose);
        // Small groups need probability ~1.
        assert!(required_probability(50, 1.0, 0.1, 0.95, 100) >= 1.0 - 1e-9);
        // Result is always a valid probability.
        for &(rows, cv, err) in &[(10usize, 0.5, 0.2), (1_000_000, 3.0, 0.01)] {
            let p = required_probability(rows, cv, err, 0.95, 10);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn relative_error_and_ci() {
        let e = AggregateEstimate {
            value: 100.0,
            std_error: 5.0,
            sample_rows: 50,
        };
        assert!((e.ci_half_width(0.95) - 9.8).abs() < 0.01);
        assert!((e.relative_error(0.95) - 0.098).abs() < 0.001);
        let zero = AggregateEstimate {
            value: 0.0,
            std_error: 0.0,
            sample_rows: 0,
        };
        assert_eq!(zero.relative_error(0.95), 0.0);
    }
}
