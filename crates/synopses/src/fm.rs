//! Flajolet–Martin sketch for distinct-count estimation (paper reference
//! \[17\]), with stochastic averaging across multiple buckets.

use serde::{Deserialize, Serialize};
use taster_storage::Value;

use crate::hash::hash_value;

/// An FM (PCSA-style) distinct-count sketch.
///
/// Each of `num_buckets` buckets keeps a bitmap of observed trailing-zero
/// counts; the distinct count is estimated from the average position of the
/// lowest unset bit, with the classic 0.77351 correction factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FmSketch {
    bitmaps: Vec<u64>,
    seed: u64,
}

const PHI: f64 = 0.77351;

impl FmSketch {
    /// Create a sketch with the given number of buckets (rounded up to a
    /// power of two, minimum 16).
    pub fn new(num_buckets: usize) -> Self {
        let n = num_buckets.max(16).next_power_of_two();
        Self {
            bitmaps: vec![0u64; n],
            seed: 0x5eed_f00d,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.bitmaps.len()
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &Value) {
        let h = hash_value(key, self.seed);
        let bucket = (h as usize) & (self.bitmaps.len() - 1);
        let rest = h >> self.bitmaps.len().trailing_zeros();
        let r = rest.trailing_ones().min(63);
        self.bitmaps[bucket] |= 1u64 << r;
    }

    /// Estimated number of distinct keys inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.bitmaps.len() as f64;
        let mean_r: f64 = self
            .bitmaps
            .iter()
            .map(|&b| b.trailing_ones() as f64)
            .sum::<f64>()
            / m;
        m / PHI * 2f64.powf(mean_r)
    }

    /// Merge another sketch of identical geometry (bitwise OR). Returns
    /// `false` on mismatch.
    pub fn merge(&mut self, other: &FmSketch) -> bool {
        if self.bitmaps.len() != other.bitmaps.len() || self.seed != other.seed {
            return false;
        }
        for (a, b) in self.bitmaps.iter_mut().zip(&other.bitmaps) {
            *a |= b;
        }
        true
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bitmaps.len() * 8 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_is_in_the_right_ballpark() {
        let mut fm = FmSketch::new(256);
        let truth = 20_000i64;
        for i in 0..truth {
            fm.insert(&Value::Int(i));
        }
        let est = fm.estimate();
        let ratio = est / truth as f64;
        assert!((0.5..2.0).contains(&ratio), "estimate {est} vs truth {truth}");
    }

    #[test]
    fn duplicates_do_not_inflate_the_estimate() {
        let mut fm = FmSketch::new(128);
        for _ in 0..100 {
            for i in 0..500i64 {
                fm.insert(&Value::Int(i));
            }
        }
        let est = fm.estimate();
        assert!(est < 2_000.0, "duplicates inflated the estimate: {est}");
    }

    #[test]
    fn merge_matches_union() {
        let mut a = FmSketch::new(128);
        let mut b = FmSketch::new(128);
        let mut whole = FmSketch::new(128);
        for i in 0..5_000i64 {
            a.insert(&Value::Int(i));
            whole.insert(&Value::Int(i));
        }
        for i in 5_000..10_000i64 {
            b.insert(&Value::Int(i));
            whole.insert(&Value::Int(i));
        }
        assert!(a.merge(&b));
        assert_eq!(a.estimate(), whole.estimate());
        assert!(!a.merge(&FmSketch::new(64)));
    }
}
