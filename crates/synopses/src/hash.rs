//! Seeded hash functions for the sketches.
//!
//! The count-min, Bloom, FM and AMS sketches all need families of pairwise
//! independent hash functions that map arbitrary keys to machine words. We
//! use a seeded 64-bit FNV-1a pass over the key bytes followed by a
//! SplitMix64 finalizer; different `seed`s give effectively independent
//! functions, and the construction is deterministic so sketches built on
//! different partitions (or different machines) are mergeable.

use taster_storage::Value;

/// Hash `key` under the hash function identified by `seed`.
pub fn hash_value(key: &Value, seed: u64) -> u64 {
    let mut h = fnv1a_seeded(seed);
    match key {
        Value::Int(v) => {
            h = fnv1a_step(h, &v.to_le_bytes());
        }
        Value::Float(v) => {
            // Hash integral floats like ints so Int(2) and Float(2.0) collide
            // intentionally (they compare equal in the storage layer).
            if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                h = fnv1a_step(h, &(*v as i64).to_le_bytes());
            } else {
                h = fnv1a_step(h, &v.to_bits().to_le_bytes());
            }
        }
        Value::Str(s) => {
            h = fnv1a_step(h, s.as_bytes());
        }
        Value::Bool(b) => {
            h = fnv1a_step(h, &[u8::from(*b)]);
        }
        Value::Null => {
            h = fnv1a_step(h, &[0xff]);
        }
    }
    splitmix64(h)
}

/// Hash an arbitrary byte key under the hash function identified by `seed`.
///
/// Used by the bytes-keyed sketch paths (e.g. [`crate::SketchJoin`] keyed by
/// row-encoded keys): same FNV-1a + SplitMix64 construction as
/// [`hash_value`], so sketches built on different partitions stay mergeable.
pub fn hash_bytes(key: &[u8], seed: u64) -> u64 {
    splitmix64(fnv1a_step(fnv1a_seeded(seed), key))
}

/// Hash a composite key (multiple values) under `seed`.
pub fn hash_values(keys: &[Value], seed: u64) -> u64 {
    let mut h = fnv1a_seeded(seed ^ 0x9e37_79b9_7f4a_7c15);
    for key in keys {
        h = fnv1a_step(h, &hash_value(key, seed).to_le_bytes());
    }
    splitmix64(h)
}

/// A {+1, -1} hash used by the AMS sketch, derived from the low bit of an
/// independent hash function.
pub fn sign_hash(key: &Value, seed: u64) -> i64 {
    if hash_value(key, seed ^ 0xabcd_ef12_3456_7890) & 1 == 0 {
        1
    } else {
        -1
    }
}

fn fnv1a_seeded(seed: u64) -> u64 {
    0xcbf2_9ce4_8422_2325 ^ splitmix64(seed)
}

fn fnv1a_step(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer; good avalanche behaviour for cheap hashes.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let v = Value::Str("hello".into());
        assert_eq!(hash_value(&v, 1), hash_value(&v, 1));
        assert_ne!(hash_value(&v, 1), hash_value(&v, 2));
    }

    #[test]
    fn int_and_integral_float_collide_by_design() {
        assert_eq!(hash_value(&Value::Int(42), 7), hash_value(&Value::Float(42.0), 7));
        assert_ne!(hash_value(&Value::Float(42.5), 7), hash_value(&Value::Int(42), 7));
    }

    #[test]
    fn byte_hash_is_deterministic_per_seed() {
        assert_eq!(hash_bytes(b"key", 1), hash_bytes(b"key", 1));
        assert_ne!(hash_bytes(b"key", 1), hash_bytes(b"key", 2));
        assert_ne!(hash_bytes(b"key", 1), hash_bytes(b"kez", 1));
    }

    #[test]
    fn composite_keys_depend_on_order() {
        let a = [Value::Int(1), Value::Int(2)];
        let b = [Value::Int(2), Value::Int(1)];
        assert_ne!(hash_values(&a, 3), hash_values(&b, 3));
    }

    #[test]
    fn sign_hash_is_plus_minus_one_and_roughly_balanced() {
        let mut sum = 0i64;
        for i in 0..10_000 {
            let s = sign_hash(&Value::Int(i), 11);
            assert!(s == 1 || s == -1);
            sum += s;
        }
        assert!(sum.abs() < 600, "sign hash is badly biased: {sum}");
    }

    #[test]
    fn hash_spreads_over_buckets() {
        let buckets = 64usize;
        let mut counts = vec![0usize; buckets];
        for i in 0..6400 {
            let h = hash_value(&Value::Int(i), 5) as usize % buckets;
            counts[h] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 3 * min.max(1), "poor spread: min={min} max={max}");
    }
}
