//! SpaceSaving heavy-hitters sketch.
//!
//! The distinct sampler needs to know, in a single pass and with small state,
//! how many rows it has already passed for each stratification key. The paper
//! notes that "distinct sampling is implemented efficiently by using a
//! heavy-hitters sketch that requires space logarithmic to the number of
//! rows" ([12]). We use the SpaceSaving algorithm: a fixed number of monitored
//! keys with counts and over-estimation errors; unmonitored keys evict the
//! minimum-count entry and inherit its count as error.
//!
//! The sketch is generic over its key type: [`Value`] keys serve the
//! ad-hoc/legacy paths, while the vectorized samplers key it by the
//! row-encoded byte keys of `taster_storage::row_key` (`SpaceSaving<Vec<u8>>`
//! probed with `&[u8]` slices, no per-row allocation for monitored keys).
//!
//! ## Lower-bound semantics
//!
//! [`SpaceSaving::insert`] returns the *guaranteed lower bound* on the key's
//! frequency (`count - error`), not the raw counter. After an eviction the raw
//! counter includes the evicted entry's count as inherited error, so a
//! genuinely new key would otherwise look like it had already been seen
//! `min_count + 1` times — which made the distinct sampler skip the δ rows it
//! must guarantee to rare groups. Comparing against the lower bound keeps the
//! coverage guarantee: the bound never exceeds the true frequency, so a group
//! is only moved to the probabilistic path once it has *provably* passed δ
//! rows.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

use serde::{Deserialize, Serialize};
use taster_storage::Value;

/// Key types a [`SpaceSaving`] sketch can monitor.
pub trait SketchKey: Hash + Eq + Ord + Clone {
    /// Approximate in-memory footprint of the key in bytes.
    fn key_size_bytes(&self) -> usize;
}

impl SketchKey for Value {
    fn key_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl SketchKey for Vec<u8> {
    fn key_size_bytes(&self) -> usize {
        self.len() + std::mem::size_of::<Vec<u8>>()
    }
}

/// A SpaceSaving sketch tracking approximate frequencies of the most frequent
/// keys with bounded memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving<K: SketchKey = Value> {
    capacity: usize,
    counts: HashMap<K, Counter>,
    total: u64,
    /// Monotonic admission counter; gives evictions a deterministic,
    /// integer-compare tie-break independent of HashMap iteration order.
    next_seq: u64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Counter {
    count: u64,
    error: u64,
    /// Admission order of this entry (older = smaller).
    seq: u64,
}

impl<K: SketchKey> SpaceSaving<K> {
    /// Create a sketch that monitors at most `capacity` keys. Frequencies are
    /// overestimated by at most `total_insertions / capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            counts: HashMap::new(),
            total: 0,
            next_seq: 0,
        }
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Number of insertions so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum overestimation of any reported frequency.
    pub fn error_bound(&self) -> u64 {
        self.total / self.capacity as u64
    }

    /// Record one occurrence of `key` and return the *guaranteed lower bound*
    /// on its number of occurrences so far, including this one
    /// (`count - error`; exact while the key has never been evicted).
    ///
    /// Borrowed key forms are accepted (`&[u8]` for `SpaceSaving<Vec<u8>>`),
    /// so the caller only pays an owned-key allocation when the key enters
    /// the monitored set.
    pub fn insert<Q>(&mut self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(key) {
            c.count += 1;
            return c.count - c.error;
        }
        if self.counts.len() < self.capacity {
            let seq = self.next_seq();
            self.counts
                .insert(key.to_owned(), Counter { count: 1, error: 0, seq });
            return 1;
        }
        // Evict the minimum-count entry; the newcomer inherits its count as
        // potential error (classic SpaceSaving replacement). Ties break on
        // the admission sequence number (oldest wins) so eviction is
        // deterministic across runs despite HashMap iteration order, at the
        // cost of one integer compare rather than a key compare.
        let (evict_key, min) = self
            .counts
            .iter()
            .min_by_key(|(_, c)| (c.count, c.seq))
            .map(|(k, c)| (k.clone(), *c))
            .expect("non-empty by construction");
        self.counts.remove::<K>(&evict_key);
        let seq = self.next_seq();
        self.counts.insert(
            key.to_owned(),
            Counter {
                count: min.count + 1,
                error: min.count,
                seq,
            },
        );
        // Lower bound of a just-admitted key: this one occurrence.
        1
    }

    /// Approximate frequency of `key` (0 if not currently monitored). Never
    /// an underestimate for monitored keys.
    pub fn estimate<Q>(&self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.counts.get(key).map_or(0, |c| c.count)
    }

    /// Guaranteed lower bound on the frequency of `key`.
    pub fn lower_bound<Q>(&self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.counts.get(key).map_or(0, |c| c.count - c.error)
    }

    /// Keys whose guaranteed frequency exceeds `threshold`.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut out: Vec<(K, u64)> = self
            .counts
            .iter()
            .filter(|(_, c)| c.count - c.error >= threshold)
            .map(|(k, c)| (k.clone(), c.count))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Merge another sketch (approximate: counts for shared keys are added,
    /// then the result is trimmed back to capacity).
    pub fn merge(&mut self, other: &SpaceSaving<K>) {
        for (k, c) in &other.counts {
            // Existing entries always carry seq < next_seq, so seeing
            // next_seq back from the entry means or_insert admitted the key
            // and its fresh seq must be consumed.
            let seq = self.next_seq;
            let entry = self.counts.entry(k.clone()).or_insert(Counter {
                count: 0,
                error: 0,
                seq,
            });
            if entry.seq == seq {
                self.next_seq += 1;
            }
            entry.count += c.count;
            entry.error += c.error;
        }
        self.total += other.total;
        if self.counts.len() > self.capacity {
            let mut entries: Vec<(K, Counter)> = self.counts.drain().collect();
            entries.sort_by(|a, b| {
                b.1.count
                    .cmp(&a.1.count)
                    .then_with(|| a.0.cmp(&b.0))
            });
            entries.truncate(self.capacity);
            self.counts = entries.into_iter().collect();
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counts
            .keys()
            .map(|k| k.key_size_bytes() + 16)
            .sum::<usize>()
            + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(100);
        for i in 0..50i64 {
            for _ in 0..=i {
                ss.insert(&Value::Int(i));
            }
        }
        for i in 0..50i64 {
            assert_eq!(ss.estimate(&Value::Int(i)), (i + 1) as u64);
            assert_eq!(ss.lower_bound(&Value::Int(i)), (i + 1) as u64);
        }
    }

    #[test]
    fn heavy_hitters_survive_eviction_pressure() {
        let mut ss = SpaceSaving::new(20);
        // One very frequent key amid a long tail of unique keys.
        for i in 0..5000i64 {
            ss.insert(&Value::Int(i));
            if i % 2 == 0 {
                ss.insert(&Value::Str("hot".into()));
            }
        }
        let est = ss.estimate(&Value::Str("hot".into()));
        assert!(est >= 2500, "hot key lost: {est}");
        let hh = ss.heavy_hitters(1000);
        assert!(hh.iter().any(|(k, _)| k == &Value::Str("hot".into())));
    }

    #[test]
    fn insert_returns_running_count() {
        let mut ss = SpaceSaving::new(4);
        assert_eq!(ss.insert(&Value::Int(1)), 1);
        assert_eq!(ss.insert(&Value::Int(1)), 2);
        assert_eq!(ss.insert(&Value::Int(1)), 3);
    }

    #[test]
    fn insert_returns_lower_bound_after_eviction() {
        let mut ss = SpaceSaving::new(2);
        for _ in 0..5 {
            ss.insert(&Value::Int(1));
        }
        for _ in 0..3 {
            ss.insert(&Value::Int(2));
        }
        // Sketch is full; Int(3) evicts Int(2) (min count 3) and inherits its
        // count as error. The δ check must see "1 occurrence guaranteed", not
        // the inflated raw counter of 4.
        assert_eq!(ss.insert(&Value::Int(3)), 1);
        assert_eq!(ss.estimate(&Value::Int(3)), 4, "raw counter overestimates");
        assert_eq!(ss.lower_bound(&Value::Int(3)), 1);
        // Subsequent occurrences raise the lower bound one at a time.
        assert_eq!(ss.insert(&Value::Int(3)), 2);
        assert_eq!(ss.insert(&Value::Int(3)), 3);
    }

    #[test]
    fn bytes_keyed_sketch_accepts_borrowed_slices() {
        let mut ss: SpaceSaving<Vec<u8>> = SpaceSaving::new(8);
        assert_eq!(ss.insert(b"alpha".as_slice()), 1);
        assert_eq!(ss.insert(b"alpha".as_slice()), 2);
        assert_eq!(ss.insert(b"beta".as_slice()), 1);
        assert_eq!(ss.estimate(b"alpha".as_slice()), 2);
        assert_eq!(ss.lower_bound(b"beta".as_slice()), 1);
        assert_eq!(ss.estimate(b"gamma".as_slice()), 0);
        assert!(ss.size_bytes() > 0);
        let hh = ss.heavy_hitters(2);
        assert_eq!(hh, vec![(b"alpha".to_vec(), 2)]);
    }

    #[test]
    fn eviction_is_deterministic() {
        // With many equal-count entries, the evicted key is a deterministic
        // function of the inserted data, not of HashMap iteration order.
        let runs: Vec<Vec<(Value, u64)>> = (0..3)
            .map(|_| {
                let mut ss = SpaceSaving::new(4);
                for i in 0..64i64 {
                    ss.insert(&Value::Int(i % 9));
                }
                ss.heavy_hitters(0)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn merge_combines_totals() {
        let mut a = SpaceSaving::new(10);
        let mut b = SpaceSaving::new(10);
        for _ in 0..30 {
            a.insert(&Value::Int(1));
            b.insert(&Value::Int(1));
            b.insert(&Value::Int(2));
        }
        a.merge(&b);
        assert_eq!(a.total(), 90);
        assert_eq!(a.estimate(&Value::Int(1)), 60);
        assert_eq!(a.estimate(&Value::Int(2)), 30);
    }

    #[test]
    fn error_bound_shrinks_with_capacity() {
        let mut small = SpaceSaving::new(10);
        let mut big = SpaceSaving::new(1000);
        for i in 0..10_000i64 {
            small.insert(&Value::Int(i));
            big.insert(&Value::Int(i));
        }
        assert!(big.error_bound() < small.error_bound());
    }
}
