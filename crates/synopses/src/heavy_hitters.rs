//! SpaceSaving heavy-hitters sketch with O(1) Stream-Summary eviction.
//!
//! The distinct sampler needs to know, in a single pass and with small state,
//! how many rows it has already passed for each stratification key. The paper
//! notes that "distinct sampling is implemented efficiently by using a
//! heavy-hitters sketch that requires space logarithmic to the number of
//! rows" (\[12\]). We use the SpaceSaving algorithm (Metwally et al.): a fixed
//! number of monitored keys with counts and over-estimation errors;
//! unmonitored keys evict the minimum-count entry and inherit its count as
//! error.
//!
//! The sketch is generic over its key type ([`SketchKey`]): [`Value`] keys
//! serve the ad-hoc/legacy paths, while the vectorized samplers key it by the
//! row-encoded byte keys of `taster_storage::row_key` (`SpaceSaving<Vec<u8>>`
//! probed with `&[u8]` slices, no per-row allocation for monitored keys).
//!
//! ## Lower-bound semantics
//!
//! [`SpaceSaving::insert`] returns the *guaranteed lower bound* on the key's
//! frequency (`count - error`), not the raw counter. After an eviction the raw
//! counter includes the evicted entry's count as inherited error, so a
//! genuinely new key would otherwise look like it had already been seen
//! `min_count + 1` times — which made the distinct sampler skip the δ rows it
//! must guarantee to rare groups. Comparing against the lower bound keeps the
//! coverage guarantee: the bound never exceeds the true frequency, so a group
//! is only moved to the probabilistic path once it has *provably* passed δ
//! rows.
//!
//! ## Stream-Summary structure
//!
//! Finding the eviction victim used to scan every monitored counter
//! (`O(capacity)` per eviction — ~1.3 s per 100k inserts at capacity 4096
//! under heavy eviction, and linearly worse at larger capacities, exactly in
//! the `#groups ≫ capacity` regime the coverage guarantee targets). The
//! sketch now maintains Metwally's *Stream-Summary*:
//!
//! * counters live in a slab (`nodes`), addressed by the existing byte-key
//!   hash table (`HashMap<K, u32>` — key → slot);
//! * each distinct count value has a *bucket*; buckets form a doubly-linked
//!   list in ascending count order, so the minimum-count bucket is always the
//!   list head;
//! * the counters of a bucket form an intrusive doubly-linked sibling list.
//!
//! A hit unlinks the counter from its bucket and appends it to the
//! neighbouring `count + 1` bucket (created on demand) — O(1). An eviction
//! pops the head of the minimum bucket, reuses its slot for the newcomer and
//! appends it to the `min_count + 1` bucket — O(1).
//!
//! ### Deterministic ties
//!
//! Eviction ties break on the admission sequence number (`seq`, oldest wins),
//! mirroring PR 2's `(count, seq)` min-scan so eviction order is a
//! deterministic function of the inserted data, never of hash iteration
//! order. Sibling lists keep ascending-`seq` order *lazily*: appends of
//! freshly admitted counters (maximal `seq`) preserve order for free, while a
//! hit that moves an old counter up may break it — the bucket is then flagged
//! and re-sorted once, the first time an eviction actually needs its minimum
//! (`ensure_sorted`). A bucket can only *receive* counters while it is not
//! the minimum bucket, so each bucket is sorted at most once per tenure as
//! eviction source and pure eviction streams (all-new keys) never sort at
//! all. [`MinScanSpaceSaving`] keeps the O(capacity) scan as an executable
//! reference: the parity tests below drive both implementations with random
//! streams and require bit-identical `(key, lower bound)` sequences.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

use serde::{Deserialize, Serialize};
use taster_storage::Value;

/// Key types a [`SpaceSaving`] sketch can monitor.
///
/// The `Ord` bound is what makes [`SpaceSaving::heavy_hitters`] output and
/// [`SpaceSaving::merge`] truncation deterministic; `Hash + Eq + Clone` serve
/// the monitored-key table.
pub trait SketchKey: Hash + Eq + Ord + Clone {
    /// Approximate in-memory footprint of the key in bytes.
    fn key_size_bytes(&self) -> usize;
}

impl SketchKey for Value {
    fn key_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl SketchKey for Vec<u8> {
    fn key_size_bytes(&self) -> usize {
        self.len() + std::mem::size_of::<Vec<u8>>()
    }
}

/// Sentinel for "no node / no bucket" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// A monitored counter: the key, its SpaceSaving state and its position in
/// the Stream-Summary (owning bucket plus sibling links).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node<K> {
    key: K,
    count: u64,
    error: u64,
    /// Admission order of this entry (older = smaller); eviction tie-break.
    seq: u64,
    /// Bucket this node currently belongs to.
    bucket: u32,
    /// Previous sibling in the bucket (NIL at the head).
    prev: u32,
    /// Next sibling in the bucket (NIL at the tail).
    next: u32,
}

/// One distinct count value: a doubly-linked list of the counters holding
/// that count, linked to the neighbouring count buckets.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Bucket {
    count: u64,
    head: u32,
    tail: u32,
    /// Bucket with the next-smaller count (NIL at the minimum).
    prev: u32,
    /// Bucket with the next-larger count (NIL at the maximum).
    next: u32,
    /// Whether the sibling list is in ascending-`seq` order. Appending a
    /// freshly admitted node keeps it; moving an old node up may clear it;
    /// `ensure_sorted` restores it before an eviction pops the head.
    sorted: bool,
}

/// A SpaceSaving sketch tracking approximate frequencies of the most frequent
/// keys with bounded memory and amortized O(1) updates (hit or evict).
///
/// # Examples
///
/// Eviction inherits the victim's count as *error*, and [`SpaceSaving::insert`]
/// reports the guaranteed lower bound, not the inflated raw counter:
///
/// ```
/// use taster_synopses::SpaceSaving;
/// use taster_storage::Value;
///
/// let mut ss = SpaceSaving::new(2); // monitor at most 2 keys
/// for _ in 0..5 { ss.insert(&Value::Int(1)); }
/// for _ in 0..3 { ss.insert(&Value::Int(2)); }
///
/// // The sketch is full: Int(3) evicts Int(2) (the minimum, count 3) and
/// // inherits its count as potential error.
/// assert_eq!(ss.insert(&Value::Int(3)), 1); // provably seen once
/// assert_eq!(ss.estimate(&Value::Int(3)), 4); // raw counter overestimates
/// assert_eq!(ss.lower_bound(&Value::Int(3)), 1);
/// // Each further occurrence raises the guaranteed bound by one.
/// assert_eq!(ss.insert(&Value::Int(3)), 2);
/// ```
///
/// Byte-keyed sketches accept borrowed `&[u8]` probes, so monitored keys cost
/// no per-row allocation:
///
/// ```
/// use taster_synopses::SpaceSaving;
///
/// let mut ss: SpaceSaving<Vec<u8>> = SpaceSaving::new(8);
/// assert_eq!(ss.insert(b"alpha".as_slice()), 1);
/// assert_eq!(ss.insert(b"alpha".as_slice()), 2);
/// assert_eq!(ss.estimate(b"alpha".as_slice()), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving<K: SketchKey = Value> {
    capacity: usize,
    /// Key → node slot. Slots are stable: an evicted node's slot is reused
    /// in place by the newcomer, so `nodes` never shrinks or reorders.
    index: HashMap<K, u32>,
    nodes: Vec<Node<K>>,
    buckets: Vec<Bucket>,
    /// Freed bucket slots available for reuse.
    free_buckets: Vec<u32>,
    /// Head of the bucket list: the minimum-count bucket (NIL while empty).
    min_bucket: u32,
    total: u64,
    /// Monotonic admission counter; gives evictions a deterministic,
    /// integer-compare tie-break independent of HashMap iteration order.
    next_seq: u64,
}

impl<K: SketchKey> SpaceSaving<K> {
    /// Create a sketch that monitors at most `capacity` keys. Frequencies are
    /// overestimated by at most `total_insertions / capacity`.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            index: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            min_bucket: NIL,
            total: 0,
            next_seq: 0,
        }
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Number of insertions so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum overestimation of any reported frequency.
    pub fn error_bound(&self) -> u64 {
        self.total / self.capacity as u64
    }

    /// Allocate a bucket for `count` between `prev` and `next` (either may be
    /// NIL) and splice it into the bucket list.
    fn bucket_alloc(&mut self, count: u64, prev: u32, next: u32) -> u32 {
        let bi = match self.free_buckets.pop() {
            Some(bi) => bi,
            None => {
                self.buckets.push(Bucket {
                    count: 0,
                    head: NIL,
                    tail: NIL,
                    prev: NIL,
                    next: NIL,
                    sorted: true,
                });
                (self.buckets.len() - 1) as u32
            }
        };
        self.buckets[bi as usize] = Bucket {
            count,
            head: NIL,
            tail: NIL,
            prev,
            next,
            sorted: true,
        };
        if prev != NIL {
            self.buckets[prev as usize].next = bi;
        } else {
            self.min_bucket = bi;
        }
        if next != NIL {
            self.buckets[next as usize].prev = bi;
        }
        bi
    }

    /// Unlink an (empty) bucket from the bucket list and free its slot.
    fn bucket_unlink(&mut self, bi: u32) {
        let Bucket { prev, next, .. } = self.buckets[bi as usize];
        if prev != NIL {
            self.buckets[prev as usize].next = next;
        } else {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next as usize].prev = prev;
        }
        self.free_buckets.push(bi);
    }

    /// Detach node `ni` from its bucket's sibling list (the bucket itself is
    /// left in place even if it became empty; callers unlink it afterwards).
    fn sibling_remove(&mut self, ni: u32) {
        let n = &self.nodes[ni as usize];
        let (prev, next, bi) = (n.prev, n.next, n.bucket);
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.buckets[bi as usize].head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.buckets[bi as usize].tail = prev;
        }
        let n = &mut self.nodes[ni as usize];
        n.prev = NIL;
        n.next = NIL;
    }

    /// Append node `ni` at the tail of bucket `bi`, maintaining the `sorted`
    /// flag (an append only preserves ascending-`seq` order when the new
    /// node's seq exceeds the current tail's — always true for freshly
    /// admitted nodes, not necessarily for hits moving old nodes up).
    fn sibling_append(&mut self, bi: u32, ni: u32) {
        let tail = self.buckets[bi as usize].tail;
        if tail == NIL {
            self.buckets[bi as usize].head = ni;
        } else {
            if self.buckets[bi as usize].sorted
                && self.nodes[tail as usize].seq > self.nodes[ni as usize].seq
            {
                self.buckets[bi as usize].sorted = false;
            }
            self.nodes[tail as usize].next = ni;
        }
        self.buckets[bi as usize].tail = ni;
        let n = &mut self.nodes[ni as usize];
        n.prev = tail;
        n.next = NIL;
        n.bucket = bi;
    }

    /// Restore ascending-`seq` order in bucket `bi`'s sibling list. Amortized
    /// against the out-of-order appends that broke it; a bucket that is the
    /// eviction source only ever loses nodes, so it is sorted at most once.
    fn ensure_sorted(&mut self, bi: u32) {
        if self.buckets[bi as usize].sorted {
            return;
        }
        let mut order: Vec<u32> = Vec::new();
        let mut cur = self.buckets[bi as usize].head;
        while cur != NIL {
            order.push(cur);
            cur = self.nodes[cur as usize].next;
        }
        order.sort_by_key(|&ni| self.nodes[ni as usize].seq);
        for w in order.windows(2) {
            self.nodes[w[0] as usize].next = w[1];
            self.nodes[w[1] as usize].prev = w[0];
        }
        let b = &mut self.buckets[bi as usize];
        b.head = order[0];
        b.tail = *order.last().expect("unsorted bucket is non-empty");
        b.sorted = true;
        self.nodes[b.head as usize].prev = NIL;
        self.nodes[b.tail as usize].next = NIL;
    }

    /// Move node `ni` from its `count` bucket to the `count + 1` bucket
    /// (created on demand right after the current one) — the O(1) hit path.
    fn increment(&mut self, ni: u32) {
        let bi = self.nodes[ni as usize].bucket;
        let new_count = self.nodes[ni as usize].count + 1;
        self.nodes[ni as usize].count = new_count;
        self.sibling_remove(ni);
        let next_bi = self.buckets[bi as usize].next;
        let target = if next_bi != NIL && self.buckets[next_bi as usize].count == new_count {
            next_bi
        } else {
            self.bucket_alloc(new_count, bi, next_bi)
        };
        self.sibling_append(target, ni);
        if self.buckets[bi as usize].head == NIL {
            self.bucket_unlink(bi);
        }
    }

    /// Record one occurrence of `key` and return the *guaranteed lower bound*
    /// on its number of occurrences so far, including this one
    /// (`count - error`; exact while the key has never been evicted).
    ///
    /// Amortized O(1) for both outcomes: a *hit* moves the counter to the
    /// neighbouring count bucket; an *eviction* pops the head of the
    /// minimum-count bucket (ties broken towards the oldest admission) and
    /// reuses its slot for the newcomer, which inherits the victim's count as
    /// error — the classic SpaceSaving replacement.
    ///
    /// Borrowed key forms are accepted (`&[u8]` for `SpaceSaving<Vec<u8>>`),
    /// so the caller only pays an owned-key allocation when the key enters
    /// the monitored set.
    pub fn insert<Q>(&mut self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        self.total += 1;
        if let Some(&ni) = self.index.get(key) {
            self.increment(ni);
            let n = &self.nodes[ni as usize];
            return n.count - n.error;
        }
        if self.nodes.len() < self.capacity {
            // Admission while under capacity: a fresh count-1 counter. The
            // count-1 bucket is the minimum bucket when it exists (counts
            // only grow), and appends carry a fresh maximal seq, so sibling
            // order is preserved for free.
            let seq = self.next_seq();
            let ni = self.nodes.len() as u32;
            self.nodes.push(Node {
                key: key.to_owned(),
                count: 1,
                error: 0,
                seq,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            let target = if self.min_bucket != NIL && self.buckets[self.min_bucket as usize].count == 1
            {
                self.min_bucket
            } else {
                self.bucket_alloc(1, NIL, self.min_bucket)
            };
            self.sibling_append(target, ni);
            self.index.insert(key.to_owned(), ni);
            return 1;
        }
        // Evict the minimum-count entry (oldest seq on ties) and reuse its
        // slot for the newcomer, which inherits the victim's count as
        // potential error.
        let mb = self.min_bucket;
        self.ensure_sorted(mb);
        let vi = self.buckets[mb as usize].head;
        self.sibling_remove(vi);
        let min_count = self.nodes[vi as usize].count;
        {
            // Split borrow: drop the victim's index entry while its key still
            // lives in the node slot.
            let Self {
                ref mut index,
                ref nodes,
                ..
            } = *self;
            index.remove(nodes[vi as usize].key.borrow());
        }
        let seq = self.next_seq();
        {
            let n = &mut self.nodes[vi as usize];
            n.key = key.to_owned();
            n.count = min_count + 1;
            n.error = min_count;
            n.seq = seq;
        }
        let next_b = self.buckets[mb as usize].next;
        let target = if next_b != NIL && self.buckets[next_b as usize].count == min_count + 1 {
            next_b
        } else {
            self.bucket_alloc(min_count + 1, mb, next_b)
        };
        self.sibling_append(target, vi);
        if self.buckets[mb as usize].head == NIL {
            self.bucket_unlink(mb);
        }
        self.index.insert(key.to_owned(), vi);
        // Lower bound of a just-admitted key: this one occurrence.
        1
    }

    /// Approximate frequency of `key` (0 if not currently monitored). Never
    /// an underestimate for monitored keys.
    pub fn estimate<Q>(&self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.index
            .get(key)
            .map_or(0, |&ni| self.nodes[ni as usize].count)
    }

    /// Guaranteed lower bound on the frequency of `key`.
    pub fn lower_bound<Q>(&self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.index.get(key).map_or(0, |&ni| {
            let n = &self.nodes[ni as usize];
            n.count - n.error
        })
    }

    /// Keys whose guaranteed frequency (`count - error`) reaches `threshold`,
    /// with their raw counts, ordered by descending count then ascending key.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut out: Vec<(K, u64)> = self
            .nodes
            .iter()
            .filter(|n| n.count - n.error >= threshold)
            .map(|n| (n.key.clone(), n.count))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Merge another sketch (approximate: counts and errors for shared keys
    /// are added, new keys are admitted with fresh sequence numbers in the
    /// other sketch's admission order, then the result is trimmed back to
    /// capacity keeping the largest counts, ties broken by key order).
    pub fn merge(&mut self, other: &SpaceSaving<K>) {
        let mut entries: Vec<(K, u64, u64, u64)> = self
            .nodes
            .iter()
            .map(|n| (n.key.clone(), n.count, n.error, n.seq))
            .collect();
        for n in &other.nodes {
            // `index` maps keys to slots, and `entries` was collected in slot
            // order, so the slot doubles as the entry position.
            if let Some(&i) = self.index.get(&n.key) {
                entries[i as usize].1 += n.count;
                entries[i as usize].2 += n.error;
            } else {
                let seq = self.next_seq();
                entries.push((n.key.clone(), n.count, n.error, seq));
            }
        }
        self.total += other.total;
        if entries.len() > self.capacity {
            entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            entries.truncate(self.capacity);
        }
        self.rebuild(entries);
    }

    /// Rebuild the Stream-Summary from scratch out of `(key, count, error,
    /// seq)` entries. Appending in ascending `(count, seq)` order constructs
    /// the bucket list sorted by count with every sibling list sorted by seq.
    fn rebuild(&mut self, mut entries: Vec<(K, u64, u64, u64)>) {
        entries.sort_by_key(|e| (e.1, e.3));
        self.index.clear();
        self.nodes.clear();
        self.buckets.clear();
        self.free_buckets.clear();
        self.min_bucket = NIL;
        let mut last_bucket = NIL;
        for (key, count, error, seq) in entries {
            let ni = self.nodes.len() as u32;
            self.nodes.push(Node {
                key: key.clone(),
                count,
                error,
                seq,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            if last_bucket == NIL || self.buckets[last_bucket as usize].count != count {
                last_bucket = self.bucket_alloc(count, last_bucket, NIL);
            }
            self.sibling_append(last_bucket, ni);
            self.index.insert(key, ni);
        }
    }

    /// Approximate in-memory footprint in bytes. Monitored keys are stored
    /// twice (hash-table key and counter slot); the constant covers the
    /// per-counter Stream-Summary links and bucket overhead.
    pub fn size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| 2 * n.key.key_size_bytes() + 48)
            .sum::<usize>()
            + self.buckets.len() * std::mem::size_of::<Bucket>()
            + 64
    }
}

/// The PR 2 SpaceSaving implementation: a flat `HashMap<K, (count, error,
/// seq)>` whose eviction scans every monitored counter for the `(count, seq)`
/// minimum — O(capacity) per eviction.
///
/// Kept as the executable *reference semantics* for [`SpaceSaving`]: the
/// parity tests drive both implementations with random streams and require
/// bit-identical `(key, lower bound)` sequences, and the capacity-sweep bench
/// (`crates/bench/benches/sampler_join.rs`) records how far the Stream-Summary
/// pulls ahead as capacity grows. Not for production use.
#[derive(Debug, Clone)]
pub struct MinScanSpaceSaving<K: SketchKey = Value> {
    capacity: usize,
    counts: HashMap<K, ScanCounter>,
    total: u64,
    next_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct ScanCounter {
    count: u64,
    error: u64,
    seq: u64,
}

impl<K: SketchKey> MinScanSpaceSaving<K> {
    /// Create a reference sketch monitoring at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            counts: HashMap::new(),
            total: 0,
            next_seq: 0,
        }
    }

    /// Number of insertions so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Record one occurrence of `key`; same contract as
    /// [`SpaceSaving::insert`], implemented with the O(capacity) min-scan.
    pub fn insert<Q>(&mut self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(key) {
            c.count += 1;
            return c.count - c.error;
        }
        if self.counts.len() < self.capacity {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.counts
                .insert(key.to_owned(), ScanCounter { count: 1, error: 0, seq });
            return 1;
        }
        let (evict_key, min) = self
            .counts
            .iter()
            .min_by_key(|(_, c)| (c.count, c.seq))
            .map(|(k, c)| (k.clone(), *c))
            .expect("non-empty by construction");
        self.counts.remove::<K>(&evict_key);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counts.insert(
            key.to_owned(),
            ScanCounter {
                count: min.count + 1,
                error: min.count,
                seq,
            },
        );
        1
    }

    /// Approximate frequency of `key` (0 if not currently monitored).
    pub fn estimate<Q>(&self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.counts.get(key).map_or(0, |c| c.count)
    }

    /// Guaranteed lower bound on the frequency of `key`.
    pub fn lower_bound<Q>(&self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.counts.get(key).map_or(0, |c| c.count - c.error)
    }

    /// Keys whose guaranteed frequency reaches `threshold`; same ordering
    /// contract as [`SpaceSaving::heavy_hitters`].
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut out: Vec<(K, u64)> = self
            .counts
            .iter()
            .filter(|(_, c)| c.count - c.error >= threshold)
            .map(|(k, c)| (k.clone(), c.count))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(100);
        for i in 0..50i64 {
            for _ in 0..=i {
                ss.insert(&Value::Int(i));
            }
        }
        for i in 0..50i64 {
            assert_eq!(ss.estimate(&Value::Int(i)), (i + 1) as u64);
            assert_eq!(ss.lower_bound(&Value::Int(i)), (i + 1) as u64);
        }
    }

    #[test]
    fn heavy_hitters_survive_eviction_pressure() {
        let mut ss = SpaceSaving::new(20);
        // One very frequent key amid a long tail of unique keys.
        for i in 0..5000i64 {
            ss.insert(&Value::Int(i));
            if i % 2 == 0 {
                ss.insert(&Value::Str("hot".into()));
            }
        }
        let est = ss.estimate(&Value::Str("hot".into()));
        assert!(est >= 2500, "hot key lost: {est}");
        let hh = ss.heavy_hitters(1000);
        assert!(hh.iter().any(|(k, _)| k == &Value::Str("hot".into())));
    }

    #[test]
    fn insert_returns_running_count() {
        let mut ss = SpaceSaving::new(4);
        assert_eq!(ss.insert(&Value::Int(1)), 1);
        assert_eq!(ss.insert(&Value::Int(1)), 2);
        assert_eq!(ss.insert(&Value::Int(1)), 3);
    }

    #[test]
    fn insert_returns_lower_bound_after_eviction() {
        let mut ss = SpaceSaving::new(2);
        for _ in 0..5 {
            ss.insert(&Value::Int(1));
        }
        for _ in 0..3 {
            ss.insert(&Value::Int(2));
        }
        // Sketch is full; Int(3) evicts Int(2) (min count 3) and inherits its
        // count as error. The δ check must see "1 occurrence guaranteed", not
        // the inflated raw counter of 4.
        assert_eq!(ss.insert(&Value::Int(3)), 1);
        assert_eq!(ss.estimate(&Value::Int(3)), 4, "raw counter overestimates");
        assert_eq!(ss.lower_bound(&Value::Int(3)), 1);
        // Subsequent occurrences raise the lower bound one at a time.
        assert_eq!(ss.insert(&Value::Int(3)), 2);
        assert_eq!(ss.insert(&Value::Int(3)), 3);
    }

    #[test]
    fn bytes_keyed_sketch_accepts_borrowed_slices() {
        let mut ss: SpaceSaving<Vec<u8>> = SpaceSaving::new(8);
        assert_eq!(ss.insert(b"alpha".as_slice()), 1);
        assert_eq!(ss.insert(b"alpha".as_slice()), 2);
        assert_eq!(ss.insert(b"beta".as_slice()), 1);
        assert_eq!(ss.estimate(b"alpha".as_slice()), 2);
        assert_eq!(ss.lower_bound(b"beta".as_slice()), 1);
        assert_eq!(ss.estimate(b"gamma".as_slice()), 0);
        assert!(ss.size_bytes() > 0);
        let hh = ss.heavy_hitters(2);
        assert_eq!(hh, vec![(b"alpha".to_vec(), 2)]);
    }

    #[test]
    fn eviction_is_deterministic() {
        // With many equal-count entries, the evicted key is a deterministic
        // function of the inserted data, not of HashMap iteration order.
        let runs: Vec<Vec<(Value, u64)>> = (0..3)
            .map(|_| {
                let mut ss = SpaceSaving::new(4);
                for i in 0..64i64 {
                    ss.insert(&Value::Int(i % 9));
                }
                ss.heavy_hitters(0)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn merge_combines_totals() {
        let mut a = SpaceSaving::new(10);
        let mut b = SpaceSaving::new(10);
        for _ in 0..30 {
            a.insert(&Value::Int(1));
            b.insert(&Value::Int(1));
            b.insert(&Value::Int(2));
        }
        a.merge(&b);
        assert_eq!(a.total(), 90);
        assert_eq!(a.estimate(&Value::Int(1)), 60);
        assert_eq!(a.estimate(&Value::Int(2)), 30);
    }

    #[test]
    fn merge_trims_to_capacity_and_keeps_working() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        for i in 0..4i64 {
            for _ in 0..=i {
                a.insert(&Value::Int(i));
                b.insert(&Value::Int(10 + i));
            }
        }
        a.merge(&b);
        let hh = a.heavy_hitters(0);
        assert_eq!(hh.len(), 4, "trimmed back to capacity: {hh:?}");
        // The largest counts survive the trim.
        assert_eq!(hh[0].1, 4);
        // The merged sketch still evicts correctly afterwards.
        for i in 100..200i64 {
            a.insert(&Value::Int(i));
        }
        assert_eq!(a.heavy_hitters(0).len(), 4);
    }

    #[test]
    fn error_bound_shrinks_with_capacity() {
        let mut small = SpaceSaving::new(10);
        let mut big = SpaceSaving::new(1000);
        for i in 0..10_000i64 {
            small.insert(&Value::Int(i));
            big.insert(&Value::Int(i));
        }
        assert!(big.error_bound() < small.error_bound());
    }

    #[test]
    fn capacity_one_degenerate_case() {
        let mut ss = SpaceSaving::new(0); // clamps to 1
        assert_eq!(ss.insert(&Value::Int(1)), 1);
        assert_eq!(ss.insert(&Value::Int(2)), 1);
        assert_eq!(ss.insert(&Value::Int(2)), 2);
        assert_eq!(ss.insert(&Value::Int(3)), 1);
        assert_eq!(ss.estimate(&Value::Int(3)), 4);
        assert_eq!(ss.heavy_hitters(0).len(), 1);
    }

    /// Drive the Stream-Summary and the min-scan reference with the same
    /// stream and require bit-identical observable behaviour: the
    /// `(key, lower bound)` sequence returned by `insert`, every monitored
    /// key's estimate/lower bound, and the full `heavy_hitters` ordering
    /// (which exposes the eviction decisions).
    fn assert_parity(capacity: usize, stream: &[i64]) {
        let mut fast = SpaceSaving::new(capacity);
        let mut reference = MinScanSpaceSaving::new(capacity);
        let domain = {
            let mut d: Vec<i64> = stream.to_vec();
            d.sort_unstable();
            d.dedup();
            d
        };
        for (i, &k) in stream.iter().enumerate() {
            let key = Value::Int(k);
            assert_eq!(
                fast.insert(&key),
                reference.insert(&key),
                "lower bound diverged at op {i} (key {k}, capacity {capacity})"
            );
            // Periodically compare the full monitored state, which pins down
            // the eviction order, not just the returned bounds.
            if i % 97 == 0 {
                assert_eq!(
                    fast.heavy_hitters(0),
                    reference.heavy_hitters(0),
                    "monitored set diverged at op {i} (capacity {capacity})"
                );
            }
        }
        assert_eq!(fast.total(), reference.total());
        for &k in &domain {
            let key = Value::Int(k);
            assert_eq!(fast.estimate(&key), reference.estimate(&key));
            assert_eq!(fast.lower_bound(&key), reference.lower_bound(&key));
        }
        assert_eq!(fast.heavy_hitters(0), reference.heavy_hitters(0));
        assert_eq!(fast.heavy_hitters(2), reference.heavy_hitters(2));
    }

    #[test]
    fn parity_with_min_scan_reference_on_random_streams() {
        let mut rng = SmallRng::seed_from_u64(0xA11CE);
        for &capacity in &[1usize, 2, 3, 8, 32] {
            for round in 0..4 {
                let domain = (capacity as i64) * (1 << round) + 1;
                let stream: Vec<i64> = (0..3_000)
                    .map(|_| rng.random_range(0..domain as usize) as i64)
                    .collect();
                assert_parity(capacity, &stream);
            }
        }
    }

    #[test]
    fn parity_on_skewed_and_adversarial_streams() {
        // All-distinct stream: pure eviction pressure.
        let distinct: Vec<i64> = (0..2_000).collect();
        assert_parity(16, &distinct);
        // Zipf-ish skew: a few hot keys, a long random tail.
        let mut rng = SmallRng::seed_from_u64(7);
        let skewed: Vec<i64> = (0..4_000)
            .map(|i| {
                if i % 3 == 0 {
                    (i % 5) as i64
                } else {
                    1_000 + rng.random_range(0..500) as i64
                }
            })
            .collect();
        assert_parity(24, &skewed);
        // Saw-tooth: revisit evicted keys so hits land on inherited-error
        // counters and buckets interleave admissions with increments.
        let saw: Vec<i64> = (0..5_000).map(|i| (i % 60) as i64).collect();
        assert_parity(13, &saw);
    }

    #[test]
    fn parity_after_merge() {
        let mut fast_a = SpaceSaving::new(8);
        let mut fast_b = SpaceSaving::new(8);
        for i in 0..200i64 {
            fast_a.insert(&Value::Int(i % 11));
            fast_b.insert(&Value::Int(i % 17));
        }
        fast_a.merge(&fast_b);
        // The merged sketch must keep satisfying the SpaceSaving invariants
        // under further eviction pressure: counts never underestimate and the
        // structure stays internally consistent.
        let before = fast_a.total();
        for i in 0..300i64 {
            let lb = fast_a.insert(&Value::Int(1_000 + i));
            assert_eq!(lb, 1);
        }
        assert_eq!(fast_a.total(), before + 300);
        assert_eq!(fast_a.heavy_hitters(0).len(), 8);
    }
}
