//! SpaceSaving heavy-hitters sketch.
//!
//! The distinct sampler needs to know, in a single pass and with small state,
//! how many rows it has already passed for each stratification key. The paper
//! notes that "distinct sampling is implemented efficiently by using a
//! heavy-hitters sketch that requires space logarithmic to the number of
//! rows" ([12]). We use the SpaceSaving algorithm: a fixed number of monitored
//! keys with counts and over-estimation errors; unmonitored keys evict the
//! minimum-count entry and inherit its count as error.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use taster_storage::Value;

/// A SpaceSaving sketch tracking approximate frequencies of the most frequent
/// keys with bounded memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: usize,
    counts: HashMap<Value, Counter>,
    total: u64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Counter {
    count: u64,
    error: u64,
}

impl SpaceSaving {
    /// Create a sketch that monitors at most `capacity` keys. Frequencies are
    /// overestimated by at most `total_insertions / capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Number of insertions so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum overestimation of any reported frequency.
    pub fn error_bound(&self) -> u64 {
        self.total / self.capacity as u64
    }

    /// Record one occurrence of `key` and return the (approximate) number of
    /// occurrences seen so far including this one.
    pub fn insert(&mut self, key: &Value) -> u64 {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(key) {
            c.count += 1;
            return c.count;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(key.clone(), Counter { count: 1, error: 0 });
            return 1;
        }
        // Evict the minimum-count entry; the newcomer inherits its count as
        // potential error (classic SpaceSaving replacement).
        let (evict_key, min) = self
            .counts
            .iter()
            .min_by_key(|(_, c)| c.count)
            .map(|(k, c)| (k.clone(), *c))
            .expect("non-empty by construction");
        self.counts.remove(&evict_key);
        let new_count = min.count + 1;
        self.counts.insert(
            key.clone(),
            Counter {
                count: new_count,
                error: min.count,
            },
        );
        new_count
    }

    /// Approximate frequency of `key` (0 if not currently monitored).
    pub fn estimate(&self, key: &Value) -> u64 {
        self.counts.get(key).map_or(0, |c| c.count)
    }

    /// Guaranteed lower bound on the frequency of `key`.
    pub fn lower_bound(&self, key: &Value) -> u64 {
        self.counts.get(key).map_or(0, |c| c.count - c.error)
    }

    /// Keys whose guaranteed frequency exceeds `threshold`.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(Value, u64)> {
        let mut out: Vec<(Value, u64)> = self
            .counts
            .iter()
            .filter(|(_, c)| c.count - c.error >= threshold)
            .map(|(k, c)| (k.clone(), c.count))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Merge another sketch (approximate: counts for shared keys are added,
    /// then the result is trimmed back to capacity).
    pub fn merge(&mut self, other: &SpaceSaving) {
        for (k, c) in &other.counts {
            let entry = self.counts.entry(k.clone()).or_insert(Counter {
                count: 0,
                error: 0,
            });
            entry.count += c.count;
            entry.error += c.error;
        }
        self.total += other.total;
        if self.counts.len() > self.capacity {
            let mut entries: Vec<(Value, Counter)> =
                self.counts.drain().collect();
            entries.sort_by_key(|e| std::cmp::Reverse(e.1.count));
            entries.truncate(self.capacity);
            self.counts = entries.into_iter().collect();
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counts.keys().map(|k| k.size_bytes() + 16)
            .sum::<usize>()
            + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(100);
        for i in 0..50i64 {
            for _ in 0..=i {
                ss.insert(&Value::Int(i));
            }
        }
        for i in 0..50i64 {
            assert_eq!(ss.estimate(&Value::Int(i)), (i + 1) as u64);
            assert_eq!(ss.lower_bound(&Value::Int(i)), (i + 1) as u64);
        }
    }

    #[test]
    fn heavy_hitters_survive_eviction_pressure() {
        let mut ss = SpaceSaving::new(20);
        // One very frequent key amid a long tail of unique keys.
        for i in 0..5000i64 {
            ss.insert(&Value::Int(i));
            if i % 2 == 0 {
                ss.insert(&Value::Str("hot".into()));
            }
        }
        let est = ss.estimate(&Value::Str("hot".into()));
        assert!(est >= 2500, "hot key lost: {est}");
        let hh = ss.heavy_hitters(1000);
        assert!(hh.iter().any(|(k, _)| k == &Value::Str("hot".into())));
    }

    #[test]
    fn insert_returns_running_count() {
        let mut ss = SpaceSaving::new(4);
        assert_eq!(ss.insert(&Value::Int(1)), 1);
        assert_eq!(ss.insert(&Value::Int(1)), 2);
        assert_eq!(ss.insert(&Value::Int(1)), 3);
    }

    #[test]
    fn merge_combines_totals() {
        let mut a = SpaceSaving::new(10);
        let mut b = SpaceSaving::new(10);
        for _ in 0..30 {
            a.insert(&Value::Int(1));
            b.insert(&Value::Int(1));
            b.insert(&Value::Int(2));
        }
        a.merge(&b);
        assert_eq!(a.total(), 90);
        assert_eq!(a.estimate(&Value::Int(1)), 60);
        assert_eq!(a.estimate(&Value::Int(2)), 30);
    }

    #[test]
    fn error_bound_shrinks_with_capacity() {
        let mut small = SpaceSaving::new(10);
        let mut big = SpaceSaving::new(1000);
        for i in 0..10_000i64 {
            small.insert(&Value::Int(i));
            big.insert(&Value::Int(i));
        }
        assert!(big.error_bound() < small.error_bound());
    }
}
