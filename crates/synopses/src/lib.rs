//! Synopses (samples and sketches) and their error estimators.
//!
//! This crate implements every approximation primitive Taster relies on
//! (Section II of the paper), plus the offline sampling strategies used by
//! the comparators:
//!
//! * [`uniform::UniformSampler`] — the pipelineable, partitionable uniform
//!   sampler `Γ^U_p`,
//! * [`distinct::DistinctSampler`] — the distinct sampler `Γ^D_{p,A,δ}` that
//!   passes at least `δ` rows per distinct combination of the stratification
//!   attributes, backed by a heavy-hitters sketch,
//! * [`stratified::StratifiedSampler`] — classic blocking stratified sampling
//!   (used by the BlinkDB-style offline baseline),
//! * [`variational::VariationalSample`] — VerdictDB-style scramble +
//!   variational subsampling, used for the user-hints experiment (Fig. 7),
//! * [`countmin::CountMinSketch`] and [`sketch_join::SketchJoin`] — the
//!   count-min sketch and the sketch-join operator built on it,
//! * [`bloom::BloomFilter`], [`fm::FmSketch`], [`ams::AmsSketch`] — the
//!   auxiliary sketches the paper cites for EXISTS, distinct counts and join
//!   size estimation,
//! * [`heavy_hitters::SpaceSaving`] — the heavy-hitters sketch that makes the
//!   distinct sampler single-pass with logarithmic state; generic over its
//!   key type (`Value` or row-encoded bytes) and reporting guaranteed
//!   lower-bound frequencies from `insert` so δ guarantees survive eviction,
//! * [`estimator`] — Horvitz–Thompson estimation with single-pass per-group
//!   CLT confidence intervals (Section IV-B).
//!
//! Every synopsis is *partitionable* (it exposes `merge`) and *pipelineable*
//! (single pass over its input), the two requirements the paper states as
//! imperative for high performance.
//!
//! ## Key encoding
//!
//! Group/join identity is defined once for the whole system: the vectorized
//! paths key their per-group state by the row-encoded byte keys of
//! `taster_storage::row_key` (type-tagged, injective up to `Value` equality,
//! encoded once per batch), while ad-hoc paths use `Value` keys directly. The
//! generic sketches ([`SpaceSaving`] via [`SketchKey`], `CountMinSketch` via
//! its `*_bytes` methods) accept both.

#![warn(missing_docs)]

pub mod ams;
pub mod bloom;
pub mod countmin;
pub mod distinct;
pub mod estimator;
pub mod fm;
pub mod hash;
pub mod heavy_hitters;
pub mod sample;
pub mod sketch_join;
pub mod stratified;
pub mod uniform;
pub mod variational;

pub use ams::AmsSketch;
pub use bloom::BloomFilter;
pub use countmin::CountMinSketch;
pub use distinct::DistinctSampler;
pub use estimator::{AggregateEstimate, DenseGroupedEstimator, GroupMoments, GroupedEstimator};
pub use fm::FmSketch;
pub use heavy_hitters::{MinScanSpaceSaving, SketchKey, SpaceSaving};
pub use sample::WeightedSample;
pub use sketch_join::SketchJoin;
pub use stratified::{StratifiedReservoir, StratifiedSampler};
pub use uniform::UniformSampler;
pub use variational::VariationalSample;

/// Name of the weight column samplers append to their output, holding the
/// Horvitz–Thompson weight 1/p (or 1 for rows kept by the frequency check of
/// the distinct sampler).
pub const WEIGHT_COLUMN: &str = "__weight";
