//! Weighted samples: the materialized output of any sampler.

use taster_storage::batch::RecordBatch;
use taster_storage::codec::{decode_batch, encode_batch};
use taster_storage::schema::{DataType, Field};
use taster_storage::{ByteReader, ByteWriter, ColumnData, StorageError};

use crate::WEIGHT_COLUMN;

/// A weighted sample of some relation (base table or subplan result).
///
/// Every retained row carries a Horvitz–Thompson weight: aggregates computed
/// over the sample multiply each contribution by its weight to obtain an
/// unbiased estimate of the aggregate over the full relation.
#[derive(Debug, Clone)]
pub struct WeightedSample {
    /// The sampled rows (original schema, without the weight column).
    pub rows: RecordBatch,
    /// Per-row HT weights, aligned with `rows`.
    pub weights: Vec<f64>,
    /// Stratification attributes the sample guarantees coverage for (empty
    /// for plain uniform samples).
    pub stratification: Vec<String>,
    /// The pass-through probability used for the probabilistic part of the
    /// sampler.
    pub probability: f64,
    /// Number of rows in the relation the sample was drawn from.
    pub source_rows: usize,
}

impl WeightedSample {
    /// An empty sample over the given schema.
    pub fn empty(schema: taster_storage::schema::SchemaRef) -> Self {
        Self {
            rows: RecordBatch::empty(schema),
            weights: Vec::new(),
            stratification: Vec::new(),
            probability: 1.0,
            source_rows: 0,
        }
    }

    /// Number of retained rows.
    pub fn len(&self) -> usize {
        self.rows.num_rows()
    }

    /// `true` if the sample holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Effective sampling fraction (retained / source rows).
    pub fn fraction(&self) -> f64 {
        if self.source_rows == 0 {
            0.0
        } else {
            self.len() as f64 / self.source_rows as f64
        }
    }

    /// The sample as a batch with the `__weight` column appended, ready to be
    /// fed into a weight-aware aggregation operator.
    pub fn to_weighted_batch(&self) -> Result<RecordBatch, StorageError> {
        self.rows.with_column(
            Field::new(WEIGHT_COLUMN, DataType::Float64),
            ColumnData::Float64(self.weights.clone()),
        )
    }

    /// Merge another sample produced by a sampler instance with the same
    /// configuration over a different partition of the same relation.
    pub fn merge(&mut self, other: &WeightedSample) -> Result<(), StorageError> {
        self.rows.append(&other.rows)?;
        self.weights.extend_from_slice(&other.weights);
        self.source_rows += other.source_rows;
        Ok(())
    }

    /// Approximate in-memory footprint in bytes (rows + weights).
    pub fn size_bytes(&self) -> usize {
        self.rows.size_bytes() + self.weights.len() * 8
    }

    /// Sum of weights — an unbiased estimate of the source row count, useful
    /// as a sanity check of sampler correctness.
    pub fn estimated_source_rows(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Rescale every weight so the weight-sum targets `live_rows` instead of
    /// whatever the sample currently estimates — the tombstone correction for
    /// samples whose source relation has seen deletes since they were drawn.
    ///
    /// The correction is a single multiplicative factor, so it is *idempotent*
    /// (the factor is recomputed from the current weight-sum; re-applying with
    /// the same `live_rows` is a no-op) and composes with append-delta merges.
    /// COUNT/SUM estimates become exactly unbiased when deletes are
    /// independent of the sampled attributes; under adversarial deletes the
    /// relative bias of any aggregate is bounded by the deleted fraction,
    /// which is why the tuner still schedules a rebuild once that fraction
    /// crosses the staleness bound.
    pub fn correct_for_deletions(&mut self, live_rows: usize) {
        let est = self.estimated_source_rows();
        if est <= 0.0 {
            return;
        }
        let scale = live_rows as f64 / est;
        for w in &mut self.weights {
            *w *= scale;
        }
    }

    /// Serialize into a [`ByteWriter`] (durability-layer payload format).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        encode_batch(w, &self.rows);
        w.put_u64(self.weights.len() as u64);
        for &wt in &self.weights {
            w.put_f64(wt);
        }
        w.put_u32(self.stratification.len() as u32);
        for s in &self.stratification {
            w.put_str(s);
        }
        w.put_f64(self.probability);
        w.put_u64(self.source_rows as u64);
    }

    /// Deserialize a sample written by [`encode_into`](Self::encode_into).
    /// Weight/row misalignment is rejected as corruption.
    pub fn decode_from(r: &mut ByteReader) -> Result<Self, StorageError> {
        let rows = decode_batch(r)?;
        let num_weights = usize::try_from(r.get_u64()?)
            .map_err(|_| StorageError::Corrupt("weight count overflows usize".to_string()))?;
        if num_weights != rows.num_rows() {
            return Err(StorageError::Corrupt(format!(
                "sample has {} rows but {num_weights} weights",
                rows.num_rows()
            )));
        }
        if r.remaining() < num_weights.saturating_mul(8) {
            return Err(StorageError::Corrupt(
                "sample weights truncated".to_string(),
            ));
        }
        let mut weights = Vec::with_capacity(num_weights);
        for _ in 0..num_weights {
            weights.push(r.get_f64()?);
        }
        let num_strata = r.get_u32()? as usize;
        let mut stratification = Vec::with_capacity(num_strata.min(1024));
        for _ in 0..num_strata {
            stratification.push(r.get_str()?);
        }
        let probability = r.get_f64()?;
        let source_rows = usize::try_from(r.get_u64()?)
            .map_err(|_| StorageError::Corrupt("source_rows overflows usize".to_string()))?;
        Ok(Self {
            rows,
            weights,
            stratification,
            probability,
            source_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;

    fn sample() -> WeightedSample {
        let rows = BatchBuilder::new()
            .column("id", vec![1i64, 2, 3])
            .column("v", vec![10.0f64, 20.0, 30.0])
            .build()
            .unwrap();
        WeightedSample {
            rows,
            weights: vec![2.0, 2.0, 2.0],
            stratification: vec![],
            probability: 0.5,
            source_rows: 6,
        }
    }

    #[test]
    fn weighted_batch_has_weight_column() {
        let s = sample();
        let b = s.to_weighted_batch().unwrap();
        assert!(b.schema().contains(WEIGHT_COLUMN));
        assert_eq!(b.num_rows(), 3);
        assert_eq!(s.fraction(), 0.5);
    }

    #[test]
    fn merge_concatenates_and_tracks_source() {
        let mut a = sample();
        let b = sample();
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a.source_rows, 12);
        assert!((a.estimated_source_rows() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn codec_round_trips_all_fields() {
        let mut s = sample();
        s.stratification = vec!["grp".to_string()];
        let mut w = ByteWriter::new();
        s.encode_into(&mut w);
        let bytes = w.into_bytes();
        let back = WeightedSample::decode_from(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.weights, s.weights);
        assert_eq!(back.stratification, s.stratification);
        assert_eq!(back.probability, s.probability);
        assert_eq!(back.source_rows, s.source_rows);
        assert_eq!(back.rows.row(2), s.rows.row(2));
        // Every truncation point errors instead of panicking.
        for cut in 0..bytes.len() {
            assert!(
                WeightedSample::decode_from(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn deletion_correction_retargets_weight_sum_and_is_idempotent() {
        let mut s = sample(); // weight-sum 6 over 6 source rows
        s.correct_for_deletions(3);
        assert!((s.estimated_source_rows() - 3.0).abs() < 1e-9);
        assert!(s.weights.iter().all(|&w| (w - 1.0).abs() < 1e-9));
        // Re-applying with the same live count changes nothing.
        s.correct_for_deletions(3);
        assert!((s.estimated_source_rows() - 3.0).abs() < 1e-9);
        // A later, larger live count (appends landed) rescales upward.
        s.correct_for_deletions(9);
        assert!((s.estimated_source_rows() - 9.0).abs() < 1e-9);
        // Empty samples are untouched (no weights to scale).
        let mut e = WeightedSample::empty(sample().rows.schema().clone());
        e.correct_for_deletions(10);
        assert!(e.is_empty());
    }

    #[test]
    fn empty_sample_behaves() {
        let s = WeightedSample::empty(sample().rows.schema().clone());
        assert!(s.is_empty());
        assert_eq!(s.fraction(), 0.0);
        assert_eq!(s.estimated_source_rows(), 0.0);
    }
}
