//! Sketch-join (Section II of the paper).
//!
//! "The Sketch-Join operator builds a sketch on the relation over which the
//! aggregation takes place and uses as key the join key and as a value the
//! executed aggregation for the tuple. This sketch is subsequently used in a
//! similar fashion as a hash index in the hash-join algorithm."
//!
//! [`SketchJoin`] summarizes one side of a join with two count-min sketches,
//! one carrying per-key COUNTs and one carrying per-key SUMs of the
//! aggregation column. Probing with a join key returns the approximate
//! contribution of that key, so an aggregate-over-join can be answered by a
//! single scan of the *other* relation (or of a sample of it), without
//! materializing the join.

use serde::{Deserialize, Serialize};
use taster_storage::batch::RecordBatch;
use taster_storage::row_key::RowKeys;
use taster_storage::{ByteReader, ByteWriter, StorageError, Value};

use crate::countmin::CountMinSketch;

/// A sketch summarizing `(join_key → COUNT, SUM(agg_column))` of one relation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchJoin {
    /// Join key columns on the summarized relation.
    pub key_columns: Vec<String>,
    /// The aggregation input column carried as the sketch value (None for
    /// pure COUNT(*) queries).
    pub value_column: Option<String>,
    count_sketch: CountMinSketch,
    sum_sketch: CountMinSketch,
    rows_summarized: usize,
}

/// The result of probing a [`SketchJoin`] with one key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchProbe {
    /// Approximate number of matching rows on the summarized side.
    pub count: f64,
    /// Approximate SUM of the value column over the matching rows.
    pub sum: f64,
}

impl SketchJoin {
    /// Create an empty sketch-join for the given key/value columns and
    /// count-min error parameters.
    pub fn new(
        key_columns: Vec<String>,
        value_column: Option<String>,
        epsilon: f64,
        delta: f64,
    ) -> Self {
        Self {
            key_columns,
            value_column,
            count_sketch: CountMinSketch::with_error(epsilon, delta),
            sum_sketch: CountMinSketch::with_error(epsilon, delta),
            rows_summarized: 0,
        }
    }

    /// Number of rows folded into the sketch.
    pub fn rows_summarized(&self) -> usize {
        self.rows_summarized
    }

    /// Override the coverage watermark. Used after a rebuild from the *live*
    /// rows of a table with tombstones: the sketch folded in fewer rows than
    /// the table physically holds, but append catch-up resumes from physical
    /// positions, so the watermark must record the physical row count the
    /// rebuild covered.
    pub fn set_rows_summarized(&mut self, rows: usize) {
        self.rows_summarized = rows;
    }

    /// Fold one batch of the summarized relation into the sketch.
    ///
    /// This is also the **incremental maintenance** path: count-min sketches
    /// are order-insensitive linear summaries, so folding appended rows into
    /// an existing sketch lands on *exactly* the sketch a from-scratch build
    /// over the concatenated stream would produce.
    ///
    /// ```
    /// use taster_storage::batch::BatchBuilder;
    /// use taster_storage::Value;
    /// use taster_synopses::SketchJoin;
    ///
    /// let chunk = |lo: i64, hi: i64| {
    ///     BatchBuilder::new()
    ///         .column("k", (lo..hi).map(|i| i % 10).collect::<Vec<_>>())
    ///         .column("v", (lo..hi).map(|i| i as f64).collect::<Vec<_>>())
    ///         .build()
    ///         .unwrap()
    /// };
    ///
    /// // Build over the first 1000 rows, then absorb an appended chunk.
    /// let mut incremental =
    ///     SketchJoin::build(&[chunk(0, 1000)], vec!["k".into()], Some("v".into()), 0.01, 0.01)
    ///         .unwrap();
    /// incremental.add_batch(&chunk(1000, 1500)).unwrap();
    ///
    /// // From-scratch build over the concatenated stream: identical probes.
    /// let scratch =
    ///     SketchJoin::build(&[chunk(0, 1500)], vec!["k".into()], Some("v".into()), 0.01, 0.01)
    ///         .unwrap();
    /// assert_eq!(incremental.probe(&[Value::Int(7)]), scratch.probe(&[Value::Int(7)]));
    /// assert_eq!(incremental.rows_summarized(), 1500);
    /// ```
    pub fn add_batch(&mut self, batch: &RecordBatch) -> Result<(), StorageError> {
        let key_cols: Vec<&taster_storage::ColumnData> = self
            .key_columns
            .iter()
            .map(|name| batch.column_by_name(name))
            .collect::<Result<Vec<_>, _>>()?;
        let value_col = match &self.value_column {
            Some(name) => Some(batch.column_by_name(name)?),
            None => None,
        };
        // Row-encoded byte keys, computed once per batch: no per-row
        // Vec<Value> widening or composite-string allocation, and the
        // type-tagged encoding cannot collide across key types.
        let keys = RowKeys::encode_columns(&key_cols, batch.num_rows());
        for row in 0..batch.num_rows() {
            let key = keys.key(row);
            self.count_sketch.add_bytes(key, 1.0);
            if let Some(col) = value_col {
                let v = col.value_f64(row).unwrap_or(0.0);
                self.sum_sketch.add_bytes(key, v);
            }
        }
        self.rows_summarized += batch.num_rows();
        Ok(())
    }

    /// Build a sketch-join over all partitions of a relation (owned or
    /// `Arc`-shared).
    pub fn build<B: std::borrow::Borrow<RecordBatch>>(
        partitions: &[B],
        key_columns: Vec<String>,
        value_column: Option<String>,
        epsilon: f64,
        delta: f64,
    ) -> Result<Self, StorageError> {
        let mut sj = Self::new(key_columns, value_column, epsilon, delta);
        for p in partitions {
            sj.add_batch(p.borrow())?;
        }
        Ok(sj)
    }

    /// Probe the sketch with a join key (the values of the key columns on the
    /// *other* side of the join, in the same order). The probe key goes
    /// through the same row encoding as the build side, so `Int(2)` probes
    /// match `Float(2.0)` build keys exactly as `Value` equality dictates.
    pub fn probe(&self, key_values: &[Value]) -> SketchProbe {
        let key = RowKeys::encode_values(key_values);
        SketchProbe {
            count: self.count_sketch.estimate_bytes(&key),
            sum: self.sum_sketch.estimate_bytes(&key),
        }
    }

    /// Merge another sketch-join built with identical configuration (e.g. on
    /// a different partition). Returns `false` on mismatch.
    pub fn merge(&mut self, other: &SketchJoin) -> bool {
        if self.key_columns != other.key_columns || self.value_column != other.value_column {
            return false;
        }
        if !self.count_sketch.merge(&other.count_sketch) {
            return false;
        }
        if !self.sum_sketch.merge(&other.sum_sketch) {
            return false;
        }
        self.rows_summarized += other.rows_summarized;
        true
    }

    /// Approximate in-memory footprint in bytes: "a few MB as opposed to
    /// possibly several GB for a sample of a large table".
    pub fn size_bytes(&self) -> usize {
        self.count_sketch.size_bytes() + self.sum_sketch.size_bytes() + 64
    }

    /// Additive error bounds `(count_bound, sum_bound)` implied by the
    /// underlying count-min sketches (ε·N for the respective L1 masses).
    pub fn error_bounds(&self) -> (f64, f64) {
        (
            self.count_sketch.error_bound(),
            self.sum_sketch.error_bound(),
        )
    }

    /// Serialize into a [`ByteWriter`] (durability-layer payload format).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u32(self.key_columns.len() as u32);
        for k in &self.key_columns {
            w.put_str(k);
        }
        match &self.value_column {
            Some(v) => {
                w.put_bool(true);
                w.put_str(v);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.rows_summarized as u64);
        self.count_sketch.encode_into(w);
        self.sum_sketch.encode_into(w);
    }

    /// Deserialize a sketch-join written by [`encode_into`](Self::encode_into).
    pub fn decode_from(r: &mut ByteReader) -> Result<Self, StorageError> {
        let num_keys = r.get_u32()? as usize;
        let mut key_columns = Vec::with_capacity(num_keys.min(1024));
        for _ in 0..num_keys {
            key_columns.push(r.get_str()?);
        }
        let value_column = if r.get_bool()? {
            Some(r.get_str()?)
        } else {
            None
        };
        let rows_summarized = usize::try_from(r.get_u64()?)
            .map_err(|_| StorageError::Corrupt("rows_summarized overflows usize".to_string()))?;
        let count_sketch = CountMinSketch::decode_from(r)?;
        let sum_sketch = CountMinSketch::decode_from(r)?;
        Ok(Self {
            key_columns,
            value_column,
            count_sketch,
            sum_sketch,
            rows_summarized,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::partition::split_batch;

    /// Orders table: order i belongs to customer i % 50 and has price i % 10.
    fn orders(n: usize) -> RecordBatch {
        BatchBuilder::new()
            .column("custkey", (0..n as i64).map(|i| i % 50).collect::<Vec<_>>())
            .column("price", (0..n).map(|i| (i % 10) as f64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn probe_count_and_sum_match_truth_closely() {
        let b = orders(50_000);
        let sj = SketchJoin::build(
            &[b],
            vec!["custkey".into()],
            Some("price".into()),
            0.001,
            0.01,
        )
        .unwrap();
        // Exact per-customer truth computed directly from the generator.
        let (mut true_count, mut true_sum) = (0.0f64, 0.0f64);
        for i in 0..50_000usize {
            if (i as i64) % 50 == 7 {
                true_count += 1.0;
                true_sum += (i % 10) as f64;
            }
        }
        let probe = sj.probe(&[Value::Int(7)]);
        assert!(
            (probe.count - true_count).abs() / true_count < 0.05,
            "count {} vs {}",
            probe.count,
            true_count
        );
        assert!(
            (probe.sum - true_sum).abs() / true_sum < 0.05,
            "sum {} vs {}",
            probe.sum,
            true_sum
        );
        assert_eq!(sj.rows_summarized(), 50_000);
    }

    #[test]
    fn partitioned_build_merges_to_the_same_sketch() {
        let b = orders(20_000);
        let parts = split_batch(&b, 8);
        let mut merged: Option<SketchJoin> = None;
        for p in &parts {
            let sj = SketchJoin::build(
                std::slice::from_ref(p),
                vec!["custkey".into()],
                Some("price".into()),
                0.001,
                0.01,
            )
            .unwrap();
            match &mut merged {
                None => merged = Some(sj),
                Some(acc) => assert!(acc.merge(&sj)),
            }
        }
        let whole = SketchJoin::build(
            &[b],
            vec!["custkey".into()],
            Some("price".into()),
            0.001,
            0.01,
        )
        .unwrap();
        let merged = merged.unwrap();
        for k in 0..50i64 {
            let a = merged.probe(&[Value::Int(k)]);
            let b = whole.probe(&[Value::Int(k)]);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn merge_rejects_mismatched_configuration() {
        let b = orders(100);
        let mut a = SketchJoin::build(std::slice::from_ref(&b), vec!["custkey".into()], None, 0.01, 0.01)
            .unwrap();
        let c = SketchJoin::build(&[b], vec!["price".into()], None, 0.01, 0.01).unwrap();
        assert!(!a.merge(&c));
    }

    #[test]
    fn missing_columns_error() {
        let b = orders(10);
        assert!(SketchJoin::build(std::slice::from_ref(&b), vec!["nope".into()], None, 0.01, 0.01).is_err());
        assert!(
            SketchJoin::build(&[b], vec!["custkey".into()], Some("nope".into()), 0.01, 0.01)
                .is_err()
        );
    }

    #[test]
    fn codec_round_trips_probes_exactly() {
        let b = orders(20_000);
        let sj = SketchJoin::build(
            &[b],
            vec!["custkey".into()],
            Some("price".into()),
            0.001,
            0.01,
        )
        .unwrap();
        let mut w = taster_storage::ByteWriter::new();
        sj.encode_into(&mut w);
        let bytes = w.into_bytes();
        let back =
            SketchJoin::decode_from(&mut taster_storage::ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.rows_summarized(), sj.rows_summarized());
        assert_eq!(back.key_columns, sj.key_columns);
        assert_eq!(back.value_column, sj.value_column);
        for k in 0..50i64 {
            assert_eq!(back.probe(&[Value::Int(k)]), sj.probe(&[Value::Int(k)]));
        }
        // Truncated payloads decode to errors, not panics.
        let cut = bytes.len() / 2;
        assert!(
            SketchJoin::decode_from(&mut taster_storage::ByteReader::new(&bytes[..cut])).is_err()
        );
    }

    #[test]
    fn sketch_is_much_smaller_than_the_data() {
        let b = orders(200_000);
        let sj = SketchJoin::build(
            std::slice::from_ref(&b),
            vec!["custkey".into()],
            Some("price".into()),
            0.001,
            0.01,
        )
        .unwrap();
        assert!(sj.size_bytes() * 10 < b.size_bytes());
    }
}
